//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides exactly what the workspace uses: [`Rng::gen`], [`Rng::gen_range`]
//! (over `Range`/`RangeInclusive` of the primitive integer types),
//! [`Rng::gen_bool`], [`rngs::StdRng`] and [`SeedableRng::seed_from_u64`].
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed, which the simulator and the workload generators rely on
//! for reproducible runs. The streams differ from the real `StdRng`
//! (ChaCha12), which is fine: no test encodes concrete draws.

use std::ops::{Range, RangeInclusive};

/// A source of randomness; the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type (`rng.gen()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`rng.gen_range(lo..hi)` or
    /// `rng.gen_range(lo..=hi)`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators; the subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-30..=30);
            assert!((-30..=30).contains(&w));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
