//! Offline stand-in for `serde_derive`.
//!
//! The real crate expands `#[derive(Serialize, Deserialize)]` through
//! syn/quote; neither is available in the offline build container, so this
//! shim parses the item's token stream by hand and emits an impl of the shim
//! `serde::Serialize` trait (conversion into a `serde::Value` tree) built as
//! a source string.
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * unit / tuple / named-field structs (no generics),
//! * enums with unit, tuple and named-field variants (no generics),
//! * the `#[serde(transparent)]` container attribute,
//! * arbitrary other attributes (doc comments, `#[default]`) are skipped.
//!
//! `#[derive(Deserialize)]` expands to nothing: the workspace derives it for
//! wire-format parity but never deserializes (see the `serde` shim docs).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (see crate docs for supported shapes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand_serialize(input) {
        Ok(s) => s.parse().expect("serde_derive shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Accepted for parity with the real crate; expands to nothing because the
/// workspace never deserializes (see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn expand_serialize(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_transparent(g) {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let body = match kind.as_str() {
        "struct" => expand_struct(&name, &tokens[i..], transparent)?,
        "enum" => expand_enum(&name, &tokens[i..])?,
        other => return Err(format!("cannot derive Serialize for `{other}` items")),
    };
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}"
    ))
}

fn expand_struct(name: &str, rest: &[TokenTree], transparent: bool) -> Result<String, String> {
    match rest.first() {
        // Named fields.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g)?;
            if transparent {
                if fields.len() != 1 {
                    return Err(format!(
                        "#[serde(transparent)] on `{name}` requires exactly one field"
                    ));
                }
                return Ok(format!("::serde::Serialize::to_value(&self.{})", fields[0]));
            }
            let entries = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            Ok(format!("::serde::Value::Object(vec![{entries}])"))
        }
        // Tuple struct.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g);
            if n == 0 {
                Ok("::serde::Value::Null".to_string())
            } else if n == 1 || transparent {
                // Newtype structs serialize as their inner value, matching
                // real serde's externally-visible JSON.
                Ok("::serde::Serialize::to_value(&self.0)".to_string())
            } else {
                let items = (0..n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                Ok(format!("::serde::Value::Array(vec![{items}])"))
            }
        }
        // Unit struct.
        _ => Ok("::serde::Value::Null".to_string()),
    }
}

fn expand_enum(name: &str, rest: &[TokenTree]) -> Result<String, String> {
    let body = match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut arms = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        // Variant attributes (doc comments, #[default], #[serde(..)], ...).
        while matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            j += 2;
        }
        let variant = match toks.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "expected variant name in `{name}`, found {other:?}"
                ))
            }
        };
        j += 1;
        let arm = match toks.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                j += 1;
                let binders = (0..n).map(|k| format!("__f{k}")).collect::<Vec<_>>();
                let inner = if n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    format!(
                        "::serde::Value::Array(vec![{}])",
                        binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                format!(
                    "{name}::{variant}({binds}) => ::serde::Value::Object(vec![(String::from({variant:?}), {inner})]),",
                    binds = binders.join(", ")
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                j += 1;
                let entries = fields
                    .iter()
                    .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value({f}))"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{name}::{variant} {{ {binds} }} => ::serde::Value::Object(vec![(String::from({variant:?}), ::serde::Value::Object(vec![{entries}]))]),",
                    binds = fields.join(", ")
                )
            }
            _ => format!("{name}::{variant} => ::serde::Value::Str(String::from({variant:?})),"),
        };
        arms.push(arm);
        // Skip an optional discriminant and advance to the next variant.
        while j < toks.len() {
            if matches!(&toks[j], TokenTree::Punct(p) if p.as_char() == ',') {
                j += 1;
                break;
            }
            j += 1;
        }
    }
    Ok(format!(
        "match self {{\n            {}\n        }}",
        arms.join("\n            ")
    ))
}

fn attr_is_serde_transparent(attr: &Group) -> bool {
    if attr.delimiter() != Delimiter::Bracket {
        return false;
    }
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Parses `{ a: T, pub b: U, ... }`, returning the field names.
fn parse_named_fields(body: &Group) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        while matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            j += 2;
        }
        if matches!(toks.get(j), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            j += 1;
            if let Some(TokenTree::Group(g)) = toks.get(j) {
                if g.delimiter() == Delimiter::Parenthesis {
                    j += 1;
                }
            }
        }
        let name = match toks.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        fields.push(name);
        j += 1; // field name
        j += 1; // ':'
        j = skip_type(&toks, j);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant body `(T, U, ...)`.
fn count_tuple_fields(body: &Group) -> usize {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut n = 0;
    let mut j = 0;
    while j < toks.len() {
        while matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            j += 2;
        }
        if matches!(toks.get(j), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            j += 1;
            if let Some(TokenTree::Group(g)) = toks.get(j) {
                if g.delimiter() == Delimiter::Parenthesis {
                    j += 1;
                }
            }
        }
        if j >= toks.len() {
            break;
        }
        n += 1;
        j = skip_type(&toks, j);
    }
    n
}

/// Advances past one type (tracking `<`/`>` nesting), stopping after the
/// top-level `,` that terminates it.
fn skip_type(toks: &[TokenTree], mut j: usize) -> usize {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle == 0 {
                    return j + 1;
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' && !prev_dash {
                    angle -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        j += 1;
    }
    j
}
