//! Offline stand-in for the `serde` crate.
//!
//! The build container for this repository has no access to a crates
//! registry, so the workspace vendors a minimal, API-compatible subset of the
//! dependencies the code actually exercises (see `shims/README.md`). This
//! shim models serialization as conversion into a JSON-like [`Value`] tree:
//!
//! * [`Serialize`] — implemented by `#[derive(Serialize)]` (re-exported from
//!   the companion `serde_derive` proc-macro crate) and by hand for the std
//!   types the workspace serializes.
//! * [`Deserialize`] — a marker trait; the workspace derives it on its wire
//!   types for parity with the real crate but never drives deserialization,
//!   so the derive expands to nothing.
//!
//! `serde_json::to_string_pretty` renders the [`Value`] tree. Swapping the
//! real serde back in requires no source changes — only pointing the
//! workspace dependency at crates.io.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like tree produced by [`Serialize::to_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
///
/// The real serde drives a `Serializer` visitor; this shim materializes the
/// tree instead, which is all `serde_json::to_string_pretty` needs.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The workspace derives this for wire-format parity but never deserializes;
/// the derive macro therefore emits no impl, and the trait has no methods.
pub trait Deserializable {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!("hi".to_value(), Value::Str("hi".to_string()));
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
    }
}
