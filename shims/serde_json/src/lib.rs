//! Offline stand-in for `serde_json` (see the `serde` shim docs).
//!
//! Renders the [`serde::Value`] tree produced by the shim `Serialize` trait
//! as JSON text. Only the entry points the workspace uses are provided.

use serde::{Serialize, Value};
use std::fmt;

/// Error type for parity with the real crate. The shim serializer is
/// infallible, so this is never constructed.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent,
/// matching the real crate's default).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Mirror serde_json: floats always carry a decimal point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                push_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_values() {
        let v = vec![1u64, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn escapes_strings() {
        let s = "a\"b\\c\n".to_string();
        assert_eq!(to_string(&s).unwrap(), "\"a\\\"b\\\\c\\n\"");
    }
}
