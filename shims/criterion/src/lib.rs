//! Offline stand-in for `criterion`.
//!
//! Supports the subset the workspace's `fig11`–`fig17` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis
//! it runs each benchmark `sample_size` times after one warm-up iteration
//! and prints the mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Benchmarks `f` on `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Finishes the group (printing happens eagerly; provided for API parity).
    pub fn finish(self) {}
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, measuring wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!("{group}/{id}: {mean:?}/iter over {} iters", self.iters);
    }
}

/// Collects benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(runs, 4); // one warm-up + three samples
    }
}
