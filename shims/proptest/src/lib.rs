//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators the workspace's property tests use —
//! ranges, tuples, [`collection::vec`], [`prop_map`](Strategy::prop_map),
//! [`prop_oneof!`], [`any`] — over a deterministic xoshiro256++ generator.
//! Each test case draws from a case-indexed seed, so runs are reproducible.
//!
//! Differences from the real crate, acceptable for this workspace:
//!
//! * no shrinking — a failing case reports the panic directly;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`;
//! * the default case count is 64 (the workspace configures its own counts
//!   via [`ProptestConfig::with_cases`]).

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving strategy sampling (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn deterministic(case: u64) -> Self {
        let mut state = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy choosing uniformly among alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T` (`any::<i64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length falls in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::deterministic(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// Asserts a property holds (no shrinking in the shim; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };

    pub mod prop {
        //! Mirror of the `prop` module re-export in the real prelude.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in -5i64..=5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-5..=5).contains(&w));
        }

        #[test]
        fn mapped_tuples_compose(pair in (0u64..4, 0u64..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(pair <= 33);
        }

        #[test]
        fn oneof_and_vec(items in prop::collection::vec(prop_oneof![0u64..1, 5u64..6], 1..8)) {
            prop_assert!(!items.is_empty() && items.len() < 8);
            for item in items {
                prop_assert!(item == 0 || item == 5);
            }
        }
    }

    #[test]
    fn any_draws_vary() {
        let mut rng = TestRng::deterministic(0);
        let a = <i64 as Arbitrary>::arbitrary(&mut rng);
        let b = <i64 as Arbitrary>::arbitrary(&mut rng);
        assert_ne!(a, b);
    }
}
