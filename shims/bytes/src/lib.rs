//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] as an `Arc<[u8]>`: cheap clones, immutable contents,
//! `Deref` to `[u8]`. The real crate's zero-copy slicing machinery is not
//! reproduced; the workspace only stores and reads whole buffers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.0
                .iter()
                .map(|b| serde::Value::UInt(*b as u64))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from(vec![9; 16]);
        let b = a.clone();
        assert_eq!(a, b);
    }
}
