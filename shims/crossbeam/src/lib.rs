//! Offline stand-in for `crossbeam`.
//!
//! Only [`queue::SegQueue`] is provided — the one type the workspace uses
//! (as the work-stealing queue feeding executor workers). The shim backs it
//! with a mutexed `VecDeque`, which is slower under heavy contention than
//! the real lock-free segmented queue but has identical semantics.

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue with the `crossbeam::queue::SegQueue` API.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` onto the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops from the front of the queue, or `None` if empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = std::sync::Arc::new(SegQueue::new());
            let drained = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            std::thread::scope(|s| {
                for t in 0..4 {
                    let q = q.clone();
                    s.spawn(move || {
                        for i in 0..500 {
                            q.push(t * 1000 + i);
                        }
                    });
                }
                for _ in 0..4 {
                    let q = q.clone();
                    let drained = drained.clone();
                    s.spawn(move || loop {
                        if q.pop().is_some() {
                            if drained.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 == 2000
                            {
                                break;
                            }
                        } else if drained.load(std::sync::atomic::Ordering::SeqCst) == 2000 {
                            break;
                        } else {
                            std::thread::yield_now();
                        }
                    });
                }
            });
            assert_eq!(drained.load(std::sync::atomic::Ordering::SeqCst), 2000);
        }
    }
}
