//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind `parking_lot`'s
//! non-poisoning API: `lock()` / `read()` / `write()` return guards directly,
//! and a lock held by a panicking thread is recovered instead of poisoning.
//! Slower than the real crate under contention, but semantically equivalent
//! for the workspace's use.

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex with the `parking_lot` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
