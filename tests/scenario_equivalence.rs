//! API-redesign equivalence: SmallBank driven through the `Workload` trait
//! must be indistinguishable from the legacy hardwired path.
//!
//! Before the scenario-first redesign, the cluster harness constructed a
//! `SmallBankWorkload` itself, mutating the config in place (`n_shards` to
//! the committee size, the cluster seed folded into the workload seed).
//! These tests replay that exact legacy wiring next to the boxed
//! `Box<dyn Workload>` path on a deterministic synchronous cluster (FIFO
//! delivery, zero latency, no wall clock in the schedule) and require the
//! FNV-1a commit-order digest, the commit counters and the final storage
//! state to be identical — proving the redesign changed no committed
//! behavior for SmallBank.

use std::collections::VecDeque;
use thunderbolt::prelude::*;

const CLUSTER_SEED: u64 = 7;
const REPLICAS: u32 = 4;
const TX_COUNT: usize = 400;

fn base_workload_config() -> SmallBankConfig {
    SmallBankConfig {
        accounts: 64,
        cross_shard_fraction: 0.2,
        seed: 99,
        ..SmallBankConfig::default()
    }
}

fn cluster_config() -> ClusterConfig {
    // Multi-worker preplay is deterministic (the concurrent executor
    // finalizes its serialized order as batch order regardless of worker
    // count), so this test still isolates the *workload path* as the only
    // possible source of divergence.
    ScenarioBuilder::new(REPLICAS)
        .executors(4, 64)
        .seed(CLUSTER_SEED)
        .tune(|system| {
            system.ce = system.ce.without_synthetic_cost();
            system.validators = 2;
        })
        .config()
        .clone()
}

/// Synchronous, wall-clock-free message driver: both runs see the exact
/// same message schedule, so any divergence can only come from the
/// transaction stream itself.
fn run_synchronously(replicas: &mut [Replica], rounds_budget: usize) {
    let mut inbox: VecDeque<(ReplicaId, ReplicaId, Message)> = VecDeque::new();
    let now = SimTime::ZERO;
    let n = replicas.len();
    let enqueue = |inbox: &mut VecDeque<(ReplicaId, ReplicaId, Message)>,
                   from: ReplicaId,
                   outbound: Outbound| {
        match outbound.dest {
            Destination::Broadcast => {
                for to in 0..n {
                    inbox.push_back((from, ReplicaId::new(to as u32), outbound.msg.clone()));
                }
            }
            Destination::To(to) => inbox.push_back((from, to, outbound.msg)),
        }
    };
    for replica in replicas.iter_mut() {
        for outbound in replica.start(now) {
            enqueue(&mut inbox, replica.id(), outbound);
        }
    }
    let mut steps = 0usize;
    let budget = rounds_budget * n * n * 20;
    while let Some((from, to, msg)) = inbox.pop_front() {
        steps += 1;
        if steps > budget {
            break;
        }
        let replica = &mut replicas[to.as_inner() as usize];
        if replica.current_round().as_u64() >= rounds_budget as u64 {
            continue;
        }
        for outbound in replica.handle(from, msg, now) {
            enqueue(&mut inbox, replica.id(), outbound);
        }
    }
}

/// Runs the deterministic cluster on a pre-generated transaction stream.
fn run_cluster(initial_state: Vec<(Key, Value)>, txs: Vec<Transaction>) -> Vec<Replica> {
    let cfg = cluster_config();
    let mut replicas: Vec<Replica> = (0..REPLICAS)
        .map(|i| {
            let mut replica = Replica::new(ReplicaId::new(i), cfg.clone());
            replica.load_state(initial_state.iter().cloned());
            replica
        })
        .collect();
    // Route each transaction to the replica serving its home shard
    // (replica i serves shard i in DAG 0) — the same routing rule the
    // cluster harness applies.
    for tx in txs {
        let home = tx.home_shard().as_inner() as usize;
        replicas[home].enqueue(tx);
    }
    run_synchronously(&mut replicas, 10);
    replicas
}

/// The legacy hardwired generator: the exact config mutation the pre-trait
/// `ClusterSimulation::new` performed before constructing `SmallBankWorkload`.
fn legacy_generator() -> SmallBankWorkload {
    let mut config = base_workload_config();
    config.n_shards = REPLICAS;
    config.seed = config.seed.wrapping_add(CLUSTER_SEED);
    SmallBankWorkload::new(config)
}

/// The redesigned path: the same base config boxed through the trait and
/// configured by the harness's single entry point.
fn trait_generator() -> Box<dyn Workload> {
    let mut workload: Box<dyn Workload> = base_workload_config().into();
    workload.configure_for_cluster(REPLICAS, CLUSTER_SEED);
    workload
}

#[test]
fn trait_path_generates_the_identical_transaction_stream() {
    let mut legacy = legacy_generator();
    let mut boxed = trait_generator();
    let legacy_state: Vec<(Key, Value)> = legacy.initial_state().collect();
    assert_eq!(legacy_state, boxed.initial_state());
    for i in 0..2_000 {
        let a = legacy.next_transaction(SimTime::ZERO);
        let b = boxed.next_transaction(SimTime::ZERO);
        assert_eq!(a, b, "stream diverged at transaction {i}");
    }
}

#[test]
fn trait_path_commits_the_identical_digest_and_state() {
    let mut legacy = legacy_generator();
    let legacy_replicas = run_cluster(
        legacy.initial_state().collect(),
        (0..TX_COUNT)
            .map(|_| legacy.next_transaction(SimTime::ZERO))
            .collect(),
    );

    let mut boxed = trait_generator();
    let initial_state = boxed.initial_state();
    let txs = boxed.batch(TX_COUNT, SimTime::ZERO);
    let trait_replicas = run_cluster(initial_state, txs);

    for (legacy, traited) in legacy_replicas.iter().zip(trait_replicas.iter()) {
        assert!(
            legacy.metrics().committed_txs > 0,
            "replica {} committed nothing — the comparison would be vacuous",
            legacy.id()
        );
        assert_eq!(
            legacy.metrics().committed_txs,
            traited.metrics().committed_txs,
            "replica {} committed different amounts",
            legacy.id()
        );
        assert_eq!(
            legacy.metrics().single_shard_txs,
            traited.metrics().single_shard_txs
        );
        assert_eq!(
            legacy.metrics().cross_shard_txs,
            traited.metrics().cross_shard_txs
        );
        assert_eq!(
            legacy.metrics().commit_order_digest,
            traited.metrics().commit_order_digest,
            "replica {} committed a different order through the trait path",
            legacy.id()
        );
        // Final storage stats: same number of live keys, same total balance.
        let legacy_stats = legacy.store().stats();
        let trait_stats = traited.store().stats();
        assert_eq!(legacy_stats.keys, trait_stats.keys);
        assert_eq!(legacy_stats.int_sum, trait_stats.int_sum);
        let diff = legacy
            .store()
            .snapshot()
            .diff_values(&traited.store().snapshot());
        assert!(
            diff.is_empty(),
            "replica {} state diverged on {diff:?}",
            legacy.id()
        );
    }
}
