//! The chaos campaign as a tier-1 integration test: every adversarial
//! scenario of the default campaign — Byzantine proposers, a healing
//! asymmetric partition, WAN tails, crashes, censorship under
//! reconfiguration, a soak — runs at smoke scale and must satisfy its
//! machine-checked safety/liveness invariants.
//!
//! `campaign_report` (tb-bench) runs the same campaign for CI's
//! `chaos-smoke` job; this test keeps `cargo test` self-sufficient.

use thunderbolt::prelude::*;

#[test]
fn default_campaign_passes_at_smoke_scale() {
    let results = run_campaign(default_campaign(CampaignProfile::smoke()));
    assert!(
        results.len() >= 6,
        "the campaign must cover at least 6 adversarial scenarios, got {}",
        results.len()
    );
    for result in &results {
        assert!(
            result.passed,
            "scenario {} violated {:?}",
            result.scenario, result.failures
        );
        assert!(
            result.committed_txs > 0,
            "scenario {} committed nothing",
            result.scenario
        );
        assert!(result.failures.is_empty());
        assert!(!result.invariants.is_empty());
        assert_eq!(result.commit_order_digest.len(), 16, "16-hex-digit digest");
    }
    // The campaign exercises real adversity: at least one scenario observed
    // message loss, at least one detected invalid (Byzantine) blocks, and
    // at least one completed a reconfiguration under faults.
    assert!(results.iter().any(|r| r.msgs_dropped > 0));
    assert!(results.iter().any(|r| r.invalid_blocks > 0));
    assert!(results.iter().any(|r| r.reconfigurations > 0));
    assert!(results.iter().all(|r| r.faults_unapplied == 0));
}

/// A custom scenario through the public API: an invariant that cannot hold
/// marks the scenario failed instead of panicking, so campaign runners can
/// report every scenario even when one breaks.
#[test]
fn custom_scenarios_report_failures_without_panicking() {
    struct Impossible;
    impl Invariant for Impossible {
        fn name(&self) -> &'static str {
            "impossible"
        }
        fn check(&self, _ctx: &InvariantContext<'_>) -> Result<(), String> {
            Err("always fails".to_string())
        }
    }

    let results = run_campaign(vec![CampaignScenario::new(
        "custom-impossible",
        "a scenario carrying an invariant that always fails",
        || {
            ScenarioBuilder::new(4)
                .executors(2, 32)
                .validators(2)
                .rounds(6)
                .latency(LatencyModel::Fixed { micros: 200 })
                .tune(|s| s.ce = s.ce.without_synthetic_cost())
        },
    )
    .invariant(Impossible)]);
    assert_eq!(results.len(), 1);
    assert!(!results[0].passed);
    assert!(results[0].failures.iter().any(|f| f.contains("impossible")));
}
