//! Property tests for the wire encoding of every `tb_core::messages` type.
//!
//! The real TCP transport frames `Message::to_wire_bytes()` straight onto the
//! socket, so `decode(encode(x)) == x` must hold for every reachable value of
//! every type the envelope can carry — transactions, preplay outcomes, blocks
//! of all three kinds, headers, certificates and vertices — including
//! batch-sized payloads. `encoded_len` must also agree with the actual
//! encoding, because the transport and the byte accounting both rely on it.

use proptest::prelude::*;
use thunderbolt::tb_types::wire::Wire;
use thunderbolt::tb_types::{
    AccessRecord, Block, BlockKind, BlockPayload, Certificate, ClientId, ContractCall, DagId,
    Digest, ExecOutcome, Header, Key, KeySpace, Operation, PreplayedTx, ReplicaId, Round, SeqNo,
    ShardId, SimTime, SmallBankProcedure, Transaction, TxId, Value, Vertex,
};
use thunderbolt::Message;

/// Encode → decode must reproduce the value exactly, consume every byte, and
/// agree with the allocation-free `encoded_len`.
fn roundtrips<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
    let bytes = value.to_wire_bytes();
    assert_eq!(
        bytes.len(),
        value.encoded_len(),
        "encoded_len disagrees with the actual encoding"
    );
    let decoded = T::from_wire_bytes(&bytes).expect("decoding our own encoding must succeed");
    assert_eq!(decoded, value);
}

// --- strategies over the tb_types vocabulary -------------------------------

fn arb_keyspace() -> impl Strategy<Value = KeySpace> {
    (0usize..KeySpace::ALL.len()).prop_map(|i| KeySpace::ALL[i])
}

fn arb_key() -> impl Strategy<Value = Key> {
    (arb_keyspace(), any::<u64>()).prop_map(|(space, row)| Key::new(space, row))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u8..1).prop_map(|_| Value::None),
        any::<i64>().prop_map(Value::Int),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::bytes),
    ]
}

fn arb_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        arb_key().prop_map(Operation::read),
        (arb_key(), arb_value()).prop_map(|(k, v)| Operation::write(k, v)),
    ]
}

fn arb_access_record() -> impl Strategy<Value = AccessRecord> {
    (arb_key(), arb_value()).prop_map(|(k, v)| AccessRecord::new(k, v))
}

fn arb_exec_outcome() -> impl Strategy<Value = ExecOutcome> {
    (
        prop::collection::vec(arb_access_record(), 0..6),
        prop::collection::vec(arb_access_record(), 0..6),
        arb_value(),
        any::<bool>(),
    )
        .prop_map(
            |(read_set, write_set, return_value, logically_aborted)| ExecOutcome {
                read_set,
                write_set,
                return_value,
                logically_aborted,
            },
        )
}

fn arb_procedure() -> impl Strategy<Value = SmallBankProcedure> {
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(from, to)| SmallBankProcedure::Amalgamate { from, to }),
        any::<u64>().prop_map(|account| SmallBankProcedure::GetBalance { account }),
        (any::<u64>(), any::<i64>())
            .prop_map(|(account, amount)| SmallBankProcedure::DepositChecking { account, amount }),
        (any::<u64>(), any::<u64>(), any::<i64>())
            .prop_map(|(from, to, amount)| SmallBankProcedure::SendPayment { from, to, amount }),
        (any::<u64>(), any::<i64>())
            .prop_map(|(account, amount)| SmallBankProcedure::TransactSavings { account, amount }),
        (any::<u64>(), any::<i64>())
            .prop_map(|(account, amount)| SmallBankProcedure::WriteCheck { account, amount }),
    ]
}

fn arb_call() -> impl Strategy<Value = ContractCall> {
    prop_oneof![
        arb_procedure().prop_map(ContractCall::SmallBank),
        (
            prop::collection::vec(any::<u8>(), 0..32),
            prop::collection::vec(any::<i64>(), 0..6),
            prop::collection::vec(arb_key(), 0..4),
        )
            .prop_map(|(code, args, declared_keys)| ContractCall::Program {
                code,
                args,
                declared_keys,
            }),
        prop::collection::vec(arb_operation(), 0..6).prop_map(ContractCall::KvOps),
        (0u8..1).prop_map(|_| ContractCall::Noop),
    ]
}

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        any::<u64>(),
        any::<u32>(),
        arb_call(),
        1u32..8,
        any::<u64>(),
    )
        .prop_map(|(id, client, call, n_shards, at)| {
            Transaction::new(
                TxId::new(id),
                ClientId::new(client),
                call,
                n_shards,
                SimTime(at),
            )
        })
}

fn arb_preplayed() -> impl Strategy<Value = PreplayedTx> {
    (arb_transaction(), arb_exec_outcome(), any::<u32>())
        .prop_map(|(tx, outcome, order)| PreplayedTx::new(tx, outcome, order))
}

fn arb_payload() -> impl Strategy<Value = BlockPayload> {
    (
        prop::collection::vec(arb_preplayed(), 0..4),
        prop::collection::vec(arb_transaction(), 0..4),
    )
        .prop_map(|(single_shard, cross_shard)| BlockPayload {
            single_shard,
            cross_shard,
        })
}

fn arb_block_kind() -> impl Strategy<Value = BlockKind> {
    prop_oneof![
        (0u8..1).prop_map(|_| BlockKind::Normal),
        (0u8..1).prop_map(|_| BlockKind::Skip),
        (0u8..1).prop_map(|_| BlockKind::Shift),
    ]
}

fn arb_block() -> impl Strategy<Value = Block> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()),
        any::<u64>(),
        arb_block_kind(),
        arb_payload(),
        any::<u64>(),
    )
        .prop_map(
            |((dag, round, author, shard), seq, kind, payload, at)| Block {
                dag: DagId::new(dag),
                round: Round::new(round),
                author: ReplicaId::new(author),
                shard: ShardId::new(shard),
                seq: SeqNo::new(seq),
                kind,
                payload,
                created_at: SimTime(at),
            },
        )
}

fn arb_digest() -> impl Strategy<Value = Digest> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| Digest([a, b, c, d]))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>()),
        arb_digest(),
        prop::collection::vec(arb_digest(), 0..5),
        any::<u64>(),
    )
        .prop_map(|((dag, round, author), block_digest, parents, at)| {
            Header::new(
                DagId::new(dag),
                Round::new(round),
                ReplicaId::new(author),
                block_digest,
                parents,
                SimTime(at),
            )
        })
}

fn arb_certificate() -> impl Strategy<Value = Certificate> {
    (
        arb_digest(),
        (any::<u64>(), any::<u64>(), any::<u32>()),
        prop::collection::vec((0u32..16).prop_map(ReplicaId::new), 0..7),
    )
        .prop_map(|(header_digest, (dag, round, author), signers)| {
            Certificate::new(
                header_digest,
                DagId::new(dag),
                Round::new(round),
                ReplicaId::new(author),
                signers,
            )
        })
}

fn arb_vertex() -> impl Strategy<Value = Vertex> {
    (arb_header(), arb_block(), arb_certificate())
        .prop_map(|(header, block, certificate)| Vertex::new(header, block, certificate))
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_header(), arb_block()).prop_map(|(header, block)| Message::Header { header, block }),
        (arb_digest(), (any::<u64>(), any::<u64>(), any::<u32>()),).prop_map(
            |(header_digest, (dag, round, signer))| Message::Ack {
                header_digest,
                dag: DagId::new(dag),
                round: Round::new(round),
                signer: ReplicaId::new(signer),
            }
        ),
        arb_vertex().prop_map(|v| Message::Vertex(Box::new(v))),
    ]
}

// --- the properties --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transactions_roundtrip(tx in arb_transaction()) {
        roundtrips(tx);
    }

    #[test]
    fn exec_outcomes_roundtrip(outcome in arb_exec_outcome()) {
        roundtrips(outcome);
    }

    #[test]
    fn preplayed_txs_roundtrip(p in arb_preplayed()) {
        roundtrips(p);
    }

    #[test]
    fn blocks_of_every_kind_roundtrip(block in arb_block()) {
        roundtrips(block);
    }

    #[test]
    fn headers_roundtrip(header in arb_header()) {
        roundtrips(header);
    }

    #[test]
    fn certificates_roundtrip(cert in arb_certificate()) {
        roundtrips(cert);
    }

    #[test]
    fn vertices_roundtrip(vertex in arb_vertex()) {
        roundtrips(vertex);
    }

    #[test]
    fn messages_of_every_variant_roundtrip(msg in arb_message()) {
        roundtrips(msg);
    }

    #[test]
    fn message_encodings_start_with_the_versioned_envelope(msg in arb_message()) {
        let bytes = msg.to_wire_bytes();
        prop_assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            thunderbolt::core::messages::WIRE_MAGIC
        );
        prop_assert_eq!(
            u16::from_le_bytes([bytes[4], bytes[5]]),
            thunderbolt::core::messages::WIRE_FORMAT_VERSION
        );
    }
}

/// A header message carrying a full batch of preplayed transactions — the
/// largest frame the cluster produces (the default CE batch is well under the
/// 512 single-shard + 128 cross-shard transactions packed here).
#[test]
fn max_size_batch_roundtrips() {
    let mut rng = TestRng::deterministic(0xBA7C);
    let tx_strategy = arb_transaction();
    let preplayed_strategy = arb_preplayed();
    let payload = BlockPayload {
        single_shard: (0..512)
            .map(|i| {
                let mut p = preplayed_strategy.generate(&mut rng);
                p.order = i;
                p
            })
            .collect(),
        cross_shard: (0..128).map(|_| tx_strategy.generate(&mut rng)).collect(),
    };
    let block = Block::normal(
        DagId::new(1),
        Round::new(9),
        ReplicaId::new(2),
        ShardId::new(2),
        SeqNo::new(41),
        payload,
        SimTime(123_456),
    );
    let header = Header::new(
        DagId::new(1),
        Round::new(9),
        ReplicaId::new(2),
        Digest([1, 2, 3, 4]),
        vec![Digest([5, 6, 7, 8]); 4],
        SimTime(123_455),
    );
    let msg = Message::Header { header, block };
    let frame = msg.to_wire_bytes();
    assert!(
        frame.len() > 64 * 1024,
        "a 640-transaction block should dominate a 64 KiB frame, got {} bytes",
        frame.len()
    );
    roundtrips(msg);
}
