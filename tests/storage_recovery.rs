//! Crash recovery as a tier-1 integration test: a WAL-backed cluster is
//! killed and rebuilt over the same data directories, and every replica must
//! recover exactly its pre-crash state — values, durable commit marker and
//! FNV-1a commit-order digest.
//!
//! CI's `storage-smoke` job runs exactly this file
//! (`cargo test --test storage_recovery`), so the crash-recovery claim is
//! exercised end-to-end on every push; `default_campaign_passes_at_smoke_scale`
//! in `chaos_campaign.rs` covers the same scenario as part of the campaign.

use thunderbolt::prelude::*;

fn wal_config(dir: &TempDir) -> StorageConfig {
    StorageConfig {
        backend: StorageBackend::Wal,
        data_dir: dir.path().display().to_string(),
        // Small thresholds so even a smoke-sized run flushes the write
        // buffer and compacts the WAL into a snapshot at least once.
        compact_wal_bytes: 32 * 1024,
        flush_buffered_writes: 32,
    }
}

fn wal_scenario(storage: StorageConfig, rounds: u64) -> ScenarioBuilder {
    ScenarioBuilder::new(4)
        .executors(2, 32)
        .validators(2)
        .rounds(rounds)
        .seed(21)
        .latency(LatencyModel::Fixed { micros: 200 })
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
        .workload(SmallBankConfig {
            accounts: 128,
            n_shards: 4,
            cross_shard_fraction: 0.1,
            ..SmallBankConfig::default()
        })
        .storage(storage)
}

/// The campaign's crash-recovery scenario, runnable on its own so the CI
/// `storage-smoke` job stays fast: replica 3 crashes mid-run and the
/// `durable-recovery` invariant reopens every on-disk store.
#[test]
fn crash_recover_durable_scenario_passes_at_smoke_scale() {
    let scenario = default_campaign(CampaignProfile::smoke())
        .into_iter()
        .find(|s| s.name() == "crash-recover-durable")
        .expect("the default campaign carries the crash-recovery scenario");
    let result = scenario.run();
    assert!(
        result.passed,
        "crash-recover-durable violated {:?}",
        result.failures
    );
    assert!(result.committed_txs > 0);
    assert!(
        result.invariants.iter().any(|i| i == "durable-recovery"),
        "the durable-recovery invariant must be machine-checked, got {:?}",
        result.invariants
    );
    assert_eq!(result.faults_unapplied, 0);
}

/// Whole-cluster restart: run a WAL-backed simulation to completion, drop it
/// (every file handle closes, as in a process exit), then rebuild the cluster
/// over the same directories. Every replica must come back with its exact
/// committed values and marker, and genesis must NOT be re-loaded over the
/// recovered state.
#[test]
fn restarted_replicas_recover_exact_state_without_reloading_genesis() {
    let dir = TempDir::new("storage-recovery-test").expect("scoped temp dir");
    let storage = wal_config(&dir);

    let mut sim = wal_scenario(storage.clone(), 8).build();
    let report = sim.run();
    assert!(report.committed_txs > 0, "the seeding run must commit");
    let expected: Vec<_> = (0..4)
        .map(|id| {
            let replica = sim.replica(ReplicaId::new(id));
            let last = replica
                .metrics()
                .round_commits
                .last()
                .map(|s| (s.dag, s.round.as_u64(), s.digest))
                .expect("every replica of a fault-free run commits");
            (last, replica.store().snapshot())
        })
        .collect();
    drop(sim);

    // ClusterSimulation::new runs the restart path for every replica:
    // open the store (recovering from disk) and attempt the genesis load,
    // which a recovered store must skip.
    let restarted = wal_scenario(storage, 8).build();
    for (id, (last, snapshot)) in expected.iter().enumerate() {
        let store = restarted.replica(ReplicaId::new(id as u32)).store();
        assert!(store.persistent());
        let marker = store.last_commit().expect("recovered commit marker");
        assert_eq!(
            (marker.dag, marker.round, marker.digest),
            *last,
            "replica {id} recovered the wrong commit marker"
        );
        let diverged = store.snapshot().diff_values(snapshot);
        assert!(
            diverged.is_empty(),
            "replica {id} recovered a diverged store: {} keys differ (first: {:?})",
            diverged.len(),
            diverged.first()
        );
    }

    // The observer's recovered digest is the run's digest: the durable
    // marker chain and the report agree bit-for-bit.
    let observer = restarted.replica(ReplicaId::new(0)).store();
    let digest = observer.last_commit().expect("observer marker").digest;
    assert_eq!(
        format!("{digest:016x}"),
        report.commit_order_digest,
        "recovered digest must equal the reported commit-order digest"
    );
}
