//! Cross-crate integration tests: every execution engine (concurrent
//! executor, OCC, 2PL-No-Wait, serial) must produce an equivalent, money-
//! conserving final state on the SmallBank workload, and every honest
//! preplay must pass validation.

use thunderbolt::prelude::*;

fn funded_store(accounts: u64) -> MemStore {
    let store = MemStore::new();
    store.load(initial_smallbank_state(accounts, SMALLBANK_DEFAULT_BALANCE));
    store
}

fn workload(accounts: u64, pr_read: f64, theta: f64, seed: u64) -> SmallBankWorkload {
    SmallBankWorkload::new(SmallBankConfig {
        accounts,
        pr_read,
        theta,
        n_shards: 1,
        seed,
        ..SmallBankConfig::default()
    })
}

#[test]
fn every_engine_conserves_total_balance_under_high_contention() {
    let engines: Vec<Box<dyn BatchExecutor>> = vec![
        Box::new(ConcurrentExecutor::new(
            CeConfig::new(8, 256).without_synthetic_cost(),
        )),
        Box::new(OccExecutor::new(
            CeConfig::new(8, 256).without_synthetic_cost(),
        )),
        Box::new(TwoPlNoWaitExecutor::new(
            CeConfig::new(8, 256).without_synthetic_cost(),
        )),
        Box::new(SerialExecutor::new()),
    ];
    for engine in engines {
        let store = funded_store(32);
        let expected_total = store.stats().int_sum;
        let mut generator = workload(32, 0.2, 0.9, 11);
        for _ in 0..3 {
            let batch = generator.batch(128, SimTime::ZERO);
            let result = engine.execute_batch(&batch, &store);
            assert_eq!(
                result.committed(),
                batch.len(),
                "{} lost transactions",
                engine.label()
            );
        }
        assert_eq!(
            store.stats().int_sum,
            expected_total,
            "{} does not conserve money",
            engine.label()
        );
    }
}

#[test]
fn concurrent_executor_and_two_pl_survive_contention_with_bounded_reexecutions() {
    // The qualitative claim behind Figure 11 — the CE's rescheduling produces
    // fewer aborts than 2PL-No-Wait on a contended workload — is inherently a
    // statement about genuinely parallel executors. The wall-clock engines
    // interleave however the OS schedules their worker threads, so on a
    // single-core CI box the comparison is decided by preemption luck, not by
    // the concurrency control. The deterministic version of the comparison
    // (fixed round-robin interleaving, no scheduler) lives in
    // `tb_executor::two_pl::tests::deterministic_interleaving_ce_reschedules_where_no_wait_locking_aborts`;
    // here we always check both engines stay live and correct under
    // contention, and enforce the strict inequality only when the environment
    // opts in (`TB_STRICT_FIGURES=1`) *and* the machine actually has more
    // than one hardware thread (`strict_figures_enabled` checks both, so a
    // single-core CI runner can export the variable without flaking).
    let config = CeConfig::new(8, 256).without_synthetic_cost();
    let mut total_ce = 0u64;
    let mut total_2pl = 0u64;
    for seed in 0..3u64 {
        let batch = workload(64, 0.0, 0.9, 100 + seed).batch(256, SimTime::ZERO);
        let ce_store = funded_store(64);
        let two_pl_store = funded_store(64);
        let expected_total = ce_store.stats().int_sum;
        let ce_result = ConcurrentExecutor::new(config).execute_batch(&batch, &ce_store);
        let two_pl_result = TwoPlNoWaitExecutor::new(config).execute_batch(&batch, &two_pl_store);
        assert_eq!(ce_result.committed(), batch.len(), "CE lost transactions");
        assert_eq!(
            two_pl_result.committed(),
            batch.len(),
            "2PL-No-Wait lost transactions"
        );
        assert_eq!(ce_store.stats().int_sum, expected_total);
        assert_eq!(two_pl_store.stats().int_sum, expected_total);
        total_ce += ce_result.reexecutions;
        total_2pl += two_pl_result.reexecutions;
    }
    if strict_figures_enabled() {
        assert!(
            total_ce <= total_2pl,
            "CE re-executed {total_ce} times, 2PL-No-Wait {total_2pl} times"
        );
    }
}

#[test]
fn honest_preplay_of_any_engine_output_validates_against_base_state() {
    let store = funded_store(16);
    let batch = workload(16, 0.5, 0.85, 3).batch(200, SimTime::ZERO);
    let ce = ConcurrentExecutor::new(CeConfig::new(4, 256).without_synthetic_cost());
    let result = ce.preplay(&batch, &store);
    let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(4));
    assert!(report.is_valid());
    assert_eq!(report.checked, batch.len());
}

#[test]
fn ce_and_serial_agree_on_final_state_for_the_same_batch() {
    let batch = workload(24, 0.3, 0.85, 9).batch(150, SimTime::ZERO);
    let ce_store = funded_store(24);
    let serial_store = funded_store(24);
    ConcurrentExecutor::new(CeConfig::new(6, 256).without_synthetic_cost())
        .execute_batch(&batch, &ce_store);
    SerialExecutor::new().execute_batch(&batch, &serial_store);
    // The CE may serialize the batch in a different order than arrival, so
    // individual balances may differ — but the total must match and both
    // must validate as a serial execution of *some* order. Sum conservation
    // plus per-engine serializability (tested elsewhere) is the invariant.
    assert_eq!(ce_store.stats().int_sum, serial_store.stats().int_sum);
}
