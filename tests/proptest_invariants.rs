//! Property-based tests on the core invariants of the reproduction:
//!
//! * the concurrent executor's emitted order replays serially to the same
//!   write sets and final state (serializability, paper Section 10);
//! * money is conserved by every engine for arbitrary SmallBank batches;
//! * the key→shard assignment is a stable partition;
//! * the structural digest is injective in practice on transaction batches.

use proptest::prelude::*;
use thunderbolt::prelude::*;

/// Strategy producing SmallBank procedures over a small, hot account pool.
fn procedure(accounts: u64) -> impl Strategy<Value = SmallBankProcedure> {
    let acct = 0..accounts;
    prop_oneof![
        (acct.clone(), acct.clone(), 1..50i64).prop_map(|(from, to, amount)| {
            SmallBankProcedure::SendPayment { from, to, amount }
        }),
        acct.clone()
            .prop_map(|account| SmallBankProcedure::GetBalance { account }),
        (acct.clone(), 1..50i64)
            .prop_map(|(account, amount)| SmallBankProcedure::DepositChecking { account, amount }),
        (acct.clone(), -30..30i64)
            .prop_map(|(account, amount)| SmallBankProcedure::TransactSavings { account, amount }),
        (acct.clone(), acct.clone())
            .prop_map(|(from, to)| SmallBankProcedure::Amalgamate { from, to }),
        (acct, 1..80i64)
            .prop_map(|(account, amount)| SmallBankProcedure::WriteCheck { account, amount }),
    ]
}

fn batch(accounts: u64, max_len: usize) -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(procedure(accounts), 1..max_len).prop_map(|procs| {
        procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                Transaction::new(
                    TxId::new(i as u64),
                    ClientId::new(0),
                    ContractCall::SmallBank(p),
                    1,
                    SimTime::ZERO,
                )
            })
            .collect()
    })
}

/// Strategy producing raw KV operations over a small scratch-key pool.
fn kv_op(keys: u64) -> impl Strategy<Value = Operation> {
    prop_oneof![
        (0..keys).prop_map(|k| Operation::read(Key::scratch(k))),
        (0..keys, -100..100i64).prop_map(|(k, v)| Operation::write(Key::scratch(k), Value::int(v))),
    ]
}

/// Strategy producing batches of raw KV transactions (`ContractCall::KvOps`),
/// so the worker-invariance property is exercised off the SmallBank
/// procedures too.
fn kv_batch(keys: u64, max_len: usize) -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(prop::collection::vec(kv_op(keys), 1..6), 1..max_len).prop_map(|txs| {
        txs.into_iter()
            .enumerate()
            .map(|(i, ops)| {
                Transaction::new(
                    TxId::new(i as u64),
                    ClientId::new(0),
                    ContractCall::KvOps(ops),
                    1,
                    SimTime::ZERO,
                )
            })
            .collect()
    })
}

fn funded_store(accounts: u64) -> MemStore {
    let store = MemStore::new();
    store.load(tb_workload::initial_smallbank_state(
        accounts,
        SMALLBANK_DEFAULT_BALANCE,
    ));
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the CE's serialized order one transaction at a time yields
    /// exactly the read/write sets the CE declared, and the same final state.
    #[test]
    fn ce_schedule_is_serializable(txs in batch(6, 60)) {
        let store = funded_store(6);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 128).without_synthetic_cost());
        let result = ce.preplay(&txs, &store);
        prop_assert_eq!(result.committed(), txs.len());
        prop_assert!(result.order_is_permutation());

        // Serial replay in the emitted order.
        let replay = funded_store(6);
        let mut ordered = result.preplayed.clone();
        ordered.sort_by_key(|p| p.order);
        for p in &ordered {
            let mut session = MapState::over(|k| replay.get(k));
            let outcome = {
                let mut tracking = TrackingState::new(&mut session);
                execute_call(&p.tx.call, &mut tracking).expect("replay never aborts");
                tracking.outcome().clone()
            };
            for record in &outcome.write_set {
                replay.put(record.key, record.value.clone());
            }
            let mut declared_writes = p.outcome.write_set.clone();
            let mut replayed_writes = outcome.write_set.clone();
            declared_writes.sort_by_key(|r| r.key);
            replayed_writes.sort_by_key(|r| r.key);
            prop_assert_eq!(declared_writes, replayed_writes);
        }
        let applied = funded_store(6);
        result.apply_to(&applied);
        prop_assert!(applied.snapshot().diff_values(&replay.snapshot()).is_empty());
    }

    /// SendPayment/Amalgamate/GetBalance conserve the total balance; deposits
    /// and withdrawals change it by exactly the accepted amounts. We check
    /// the weaker but engine-independent invariant: all engines agree on the
    /// final total.
    #[test]
    fn engines_agree_on_total_balance(txs in batch(5, 40)) {
        let ce_store = funded_store(5);
        let occ_store = funded_store(5);
        let serial_store = funded_store(5);
        ConcurrentExecutor::new(CeConfig::new(4, 64).without_synthetic_cost())
            .execute_batch(&txs, &ce_store);
        OccExecutor::new(CeConfig::new(4, 64).without_synthetic_cost())
            .execute_batch(&txs, &occ_store);
        SerialExecutor::new().execute_batch(&txs, &serial_store);
        // Different serialization orders may accept/reject different
        // individual payments, but read-only queries and transfers never
        // create or destroy money; deposits only add what was requested.
        // The strongest engine-independent invariant is that totals stay
        // within the bounds set by the submitted deposits/withdrawals.
        let lower = 5 * 2 * SMALLBANK_DEFAULT_BALANCE - 40 * 100;
        let upper = 5 * 2 * SMALLBANK_DEFAULT_BALANCE + 40 * 100;
        for store in [&ce_store, &occ_store, &serial_store] {
            let total = store.stats().int_sum;
            prop_assert!(total >= lower && total <= upper, "total {} out of bounds", total);
        }
    }

    /// The static shard map partitions keys: every key maps to exactly one
    /// shard, stable across calls, and checking/savings of one account stay
    /// together.
    #[test]
    fn shard_assignment_is_a_stable_partition(row in 0u64..1_000_000, shards in 1u32..128) {
        let a = Key::checking(row).shard(shards);
        let b = Key::checking(row).shard(shards);
        prop_assert_eq!(a, b);
        prop_assert!(a.as_inner() < shards);
        prop_assert_eq!(Key::savings(row).shard(shards), a);
    }

    /// Value round-trips through its integer accessor.
    #[test]
    fn int_values_round_trip(v in any::<i64>()) {
        prop_assert_eq!(Value::int(v).as_int(), v);
        prop_assert!(!Value::int(v).is_none());
    }

    /// Parallel block validation is a pure function of the block: for any
    /// random batch — honest or with randomly tampered declarations — every
    /// worker count returns the exact same [`ValidationReport`] as the
    /// sequential (one-worker) pass: same verdict, same mismatch list, in
    /// the same order.
    #[test]
    fn parallel_validation_matches_sequential_verdicts(
        txs in batch(6, 60),
        validators in 2usize..24,
        tamper in prop::collection::vec((0usize..64, any::<i64>()), 0..4),
    ) {
        let store = funded_store(6);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 128).without_synthetic_cost());
        let mut result = ce.preplay(&txs, &store);
        // Tamper a random subset of declared write sets so mismatch paths
        // (not just all-valid blocks) are exercised.
        for (index, forged) in &tamper {
            let p = &mut result.preplayed[index % txs.len()];
            if let Some(rec) = p.outcome.write_set.first_mut() {
                rec.value = Value::int(*forged);
            }
        }
        let sequential = validate_block(&result.preplayed, &store, &ValidationConfig::new(1));
        let parallel = validate_block(&result.preplayed, &store, &ValidationConfig::new(validators));
        prop_assert_eq!(sequential, parallel);
    }

    /// Multi-worker preplay is indistinguishable from single-worker preplay:
    /// for arbitrary SmallBank and raw-KV batches and any worker count, the
    /// serialized order, the (sorted) read and write sets, the return
    /// values and the FNV-1a commit digest all match the `executors(1)`
    /// reference — the deterministic-finalize guarantee (docs/PIPELINE.md)
    /// as a property over random batches, not just the benched workloads.
    #[test]
    fn preplay_is_worker_count_invariant(
        smallbank in batch(6, 48),
        kv in kv_batch(8, 32),
        workers in 2usize..=8,
    ) {
        for txs in [&smallbank, &kv] {
            let store = funded_store(6);
            let reference = ConcurrentExecutor::new(CeConfig::new(1, 128).without_synthetic_cost())
                .preplay(txs, &store);
            let multi = ConcurrentExecutor::new(CeConfig::new(workers, 128).without_synthetic_cost())
                .preplay(txs, &store);
            prop_assert_eq!(reference.committed(), multi.committed());
            prop_assert_eq!(reference.commit_digest(), multi.commit_digest());
            for (a, b) in reference.preplayed.iter().zip(multi.preplayed.iter()) {
                prop_assert_eq!(a.tx.id, b.tx.id);
                prop_assert_eq!(a.order, b.order);
                prop_assert_eq!(&a.outcome.read_set, &b.outcome.read_set);
                prop_assert_eq!(&a.outcome.write_set, &b.outcome.write_set);
                prop_assert_eq!(&a.outcome.return_value, &b.outcome.return_value);
                prop_assert_eq!(a.outcome.logically_aborted, b.outcome.logically_aborted);
            }
        }
    }
}
