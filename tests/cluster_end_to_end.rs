//! End-to-end integration tests of the full system: multiple replicas, the
//! simulated network, multiple workloads, faults and reconfiguration.

use thunderbolt::prelude::*;

fn base_config(mode: ExecutionMode, n: u32, rounds: u64) -> ClusterConfig {
    let mut config = ClusterConfig::thunderbolt(n);
    config.mode = mode;
    config.system.ce = CeConfig::new(2, 32).without_synthetic_cost();
    config.system.validators = 2;
    config.system.max_rounds = rounds;
    config.system.latency = LatencyModel::Fixed { micros: 200 };
    config
}

/// The same setup as [`base_config`], expressed scenario-first.
fn base_scenario(mode: ExecutionMode, n: u32, rounds: u64) -> ScenarioBuilder {
    ScenarioBuilder::new(n)
        .engine(mode)
        .executors(2, 32)
        .validators(2)
        .rounds(rounds)
        .latency(LatencyModel::Fixed { micros: 200 })
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
}

fn workload(n: u32, cross: f64) -> SmallBankConfig {
    SmallBankConfig {
        accounts: 128,
        n_shards: n,
        cross_shard_fraction: cross,
        ..SmallBankConfig::default()
    }
}

#[test]
fn seven_replica_cluster_commits_and_agrees() {
    let mut sim = ClusterSimulation::with_defaults(
        base_config(ExecutionMode::Thunderbolt, 7, 10),
        workload(7, 0.1),
    );
    let report = sim.run();
    assert!(report.committed_txs > 0);
    assert!(report.single_shard_txs > 0);
    assert!(report.cross_shard_txs > 0);
    // The run stops at an arbitrary event, so replicas may have delivered
    // different *prefixes* of the committed sequence; safety means every
    // replica's (dag, round, digest) sequence is a prefix of the longest
    // one and full-length replicas hold identical state. The campaign
    // module's shared invariant checks exactly that.
    assert_honest_agreement(&sim, &[]);
}

#[test]
fn all_three_modes_commit_under_the_same_setup() {
    for mode in [
        ExecutionMode::Thunderbolt,
        ExecutionMode::ThunderboltOcc,
        ExecutionMode::Tusk,
    ] {
        let mut sim = ClusterSimulation::with_defaults(base_config(mode, 4, 8), workload(4, 0.0));
        let report = sim.run();
        assert!(
            report.committed_txs > 0,
            "{} committed nothing",
            mode.label()
        );
    }
}

#[test]
fn wan_latency_slows_rounds_but_does_not_block_commits() {
    let mut lan_cfg = base_config(ExecutionMode::Thunderbolt, 4, 8);
    lan_cfg.system.latency = LatencyModel::lan();
    let mut wan_cfg = base_config(ExecutionMode::Thunderbolt, 4, 8);
    wan_cfg.system.latency = LatencyModel::wan();
    let lan = ClusterSimulation::with_defaults(lan_cfg, workload(4, 0.0)).run();
    let wan = ClusterSimulation::with_defaults(wan_cfg, workload(4, 0.0)).run();
    assert!(lan.committed_txs > 0 && wan.committed_txs > 0);
    assert!(
        wan.duration > lan.duration,
        "WAN rounds must take longer than LAN rounds"
    );
}

#[test]
fn crash_faults_up_to_f_do_not_stop_progress() {
    let n = 7; // f = 2
    let config = base_config(ExecutionMode::Thunderbolt, n, 10);
    let faults = FaultPlan::crash_replicas(n, 2, SimTime::ZERO);
    let mut sim = ClusterSimulation::new(config, workload(n, 0.1), faults);
    let report = sim.run();
    assert!(
        report.committed_txs > 0,
        "f crashes must not halt the system"
    );
}

#[test]
fn censorship_triggers_non_blocking_reconfiguration() {
    let mut config = base_config(ExecutionMode::Thunderbolt, 4, 26);
    config.system.reconfig = ReconfigConfig::new(3, 1_000);
    let faults = FaultPlan::silence_from_start(ReplicaId::new(2));
    let mut sim = ClusterSimulation::new(config, workload(4, 0.0), faults);
    let report = sim.run();
    assert!(
        report.reconfigurations >= 1,
        "silencing a proposer must trigger a shard rotation"
    );
    assert!(
        report.committed_txs > 0,
        "consensus must keep committing across the reconfiguration"
    );
    // After the rotation the observer no longer serves its original shard.
    assert!(sim.replica(ReplicaId::new(0)).current_dag().as_inner() >= 1);
}

#[test]
fn periodic_reconfiguration_with_small_k_prime_still_makes_progress() {
    let mut config = base_config(ExecutionMode::Thunderbolt, 4, 24);
    config.system.reconfig = ReconfigConfig::new(4, 6);
    let mut sim = ClusterSimulation::with_defaults(config, workload(4, 0.0));
    let report = sim.run();
    assert!(report.reconfigurations >= 1);
    assert!(report.committed_txs > 0);
    assert!(!report.round_commits.is_empty());
}

#[test]
fn skip_block_mode_commits_with_cross_shard_traffic() {
    let mut config = base_config(ExecutionMode::Thunderbolt, 4, 12);
    config.use_skip_blocks = true;
    let mut sim = ClusterSimulation::with_defaults(config, workload(4, 0.3));
    let report = sim.run();
    assert!(report.committed_txs > 0);
    assert!(report.cross_shard_txs > 0);
}

/// A named factory of boxed workloads for matrix tests.
type WorkloadFactory = (&'static str, fn() -> Box<dyn Workload>);

#[test]
fn every_bundled_workload_commits_under_every_engine() {
    // The scenario-first matrix the redesign unlocks: engines x workloads
    // without the harness knowing any benchmark by name.
    let workloads: Vec<WorkloadFactory> = vec![
        ("smallbank", || {
            SmallBankConfig {
                accounts: 128,
                cross_shard_fraction: 0.1,
                ..SmallBankConfig::default()
            }
            .into()
        }),
        ("contract", || {
            ContractWorkloadConfig {
                slots: 128,
                ..ContractWorkloadConfig::default()
            }
            .into()
        }),
        ("kv-hot", || {
            KvWorkloadConfig {
                keys: 128,
                cross_shard_fraction: 0.1,
                ..KvWorkloadConfig::default()
            }
            .into()
        }),
    ];
    for mode in [
        ExecutionMode::Thunderbolt,
        ExecutionMode::ThunderboltOcc,
        ExecutionMode::Tusk,
    ] {
        for (name, make) in &workloads {
            let report = base_scenario(mode, 4, 8).workload(make()).run();
            assert!(
                report.committed_txs > 0,
                "{} committed nothing under {name}",
                mode.label()
            );
            assert_eq!(report.workload, *name);
            assert_eq!(report.label, mode.label());
        }
    }
}

#[test]
fn scenario_seed_sweeps_produce_distinct_but_valid_runs() {
    // with_seed parity: sweeping the seed must not require struct surgery
    // and different seeds must actually reach the workload stream.
    let run = |seed: u64| {
        base_scenario(ExecutionMode::Thunderbolt, 4, 8)
            .workload(SmallBankConfig {
                accounts: 128,
                ..SmallBankConfig::default()
            })
            .seed(seed)
            .run()
    };
    let a = run(1);
    let b = run(2);
    assert!(a.committed_txs > 0 && b.committed_txs > 0);
    // Identical seeds share the workload stream; different seeds do not
    // (the digests could theoretically collide, so compare the streams).
    let mut wa: Box<dyn Workload> = SmallBankConfig::default().into();
    let mut wb: Box<dyn Workload> = SmallBankConfig::default().into();
    wa.configure_for_cluster(4, 1);
    wb.configure_for_cluster(4, 2);
    assert_ne!(wa.batch(100, SimTime::ZERO), wb.batch(100, SimTime::ZERO));
}

#[test]
fn legacy_constructor_shims_still_compile_and_run() {
    // The pre-redesign call shape: ClusterConfig constructors plus a bare
    // SmallBankConfig handed to ClusterSimulation::new.
    let config = ClusterConfig::thunderbolt(4)
        .with_seed(5)
        .with_label("shim");
    let mut config = config;
    config.system.ce = CeConfig::new(2, 32).without_synthetic_cost();
    config.system.max_rounds = 8;
    config.system.latency = LatencyModel::Fixed { micros: 200 };
    let mut sim = ClusterSimulation::new(config, workload(4, 0.0), FaultPlan::none());
    let report = sim.run();
    assert!(report.committed_txs > 0);
    assert_eq!(report.label, "shim");
    assert_eq!(report.workload, "smallbank");
}
