//! The wire protocol between replicas.
//!
//! Thunderbolt piggybacks everything on the DAG construction messages: block
//! dissemination (`Header`), acknowledgements (`Ack`) and certified vertices
//! (`Vertex`). There is no extra coordination protocol for cross-shard
//! transactions — that is the point of the design.

use tb_types::{Block, DagId, Digest, Header, ReplicaId, Round, Vertex};

/// A protocol message exchanged between replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A proposer disseminates its block and header for the current round.
    Header {
        /// The header under certification.
        header: Header,
        /// The block the header commits to.
        block: Block,
    },
    /// A replica acknowledges a header it considers valid (the simulated
    /// equivalent of a signature share).
    Ack {
        /// Digest of the acknowledged header.
        header_digest: Digest,
        /// DAG instance of the header.
        dag: DagId,
        /// Round of the acknowledged header.
        round: Round,
        /// The acknowledging replica.
        signer: ReplicaId,
    },
    /// A fully certified vertex (header + block + certificate), broadcast by
    /// its author once a `2f + 1` quorum of acknowledgements arrived.
    Vertex(Box<Vertex>),
}

impl Message {
    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Header { .. } => "header",
            Message::Ack { .. } => "ack",
            Message::Vertex(_) => "vertex",
        }
    }

    /// The round the message refers to.
    pub fn round(&self) -> Round {
        match self {
            Message::Header { header, .. } => header.round,
            Message::Ack { round, .. } => *round,
            Message::Vertex(vertex) => vertex.round(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{BlockPayload, Committee, Hashable, SeqNo, ShardId, SimTime};

    #[test]
    fn message_accessors() {
        let block = Block::normal(
            DagId::new(0),
            Round::new(3),
            ReplicaId::new(1),
            ShardId::new(1),
            SeqNo::new(0),
            BlockPayload::empty(),
            SimTime::ZERO,
        );
        let header = Header::new(
            DagId::new(0),
            Round::new(3),
            ReplicaId::new(1),
            block.digest(),
            vec![],
            SimTime::ZERO,
        );
        let ack = Message::Ack {
            header_digest: header.digest(),
            dag: DagId::new(0),
            round: Round::new(3),
            signer: ReplicaId::new(2),
        };
        let hdr = Message::Header {
            header: header.clone(),
            block: block.clone(),
        };
        assert_eq!(hdr.kind(), "header");
        assert_eq!(hdr.round(), Round::new(3));
        assert_eq!(ack.kind(), "ack");
        assert_eq!(ack.round(), Round::new(3));

        let committee = Committee::new(4);
        let cert =
            tb_types::Certificate::for_header(&header, committee.replicas().take(3).collect());
        let vertex = Message::Vertex(Box::new(Vertex::new(header, block, cert)));
        assert_eq!(vertex.kind(), "vertex");
        assert_eq!(vertex.round(), Round::new(3));
    }
}
