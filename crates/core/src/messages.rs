//! The wire protocol between replicas.
//!
//! Thunderbolt piggybacks everything on the DAG construction messages: block
//! dissemination (`Header`), acknowledgements (`Ack`) and certified vertices
//! (`Vertex`). There is no extra coordination protocol for cross-shard
//! transactions — that is the point of the design.
//!
//! # Wire encoding
//!
//! [`Message`] implements [`Wire`] with a **versioned envelope** so the same
//! bytes can travel over the real TCP transport: every encoded message starts
//! with [`WIRE_MAGIC`] and [`WIRE_FORMAT_VERSION`], followed by a variant tag
//! and the variant fields in the `tb_types::wire` format. Decoding rejects
//! wrong magic or unknown versions up front, so two nodes built from
//! different wire revisions fail loudly instead of mis-parsing each other.

use tb_network::WireSized;
use tb_types::wire::{Wire, WireError, WireReader, WireWriter};
use tb_types::{Block, DagId, Digest, Header, ReplicaId, Round, Vertex};

/// First four bytes of every encoded [`Message`]: `"TBM1"` little-endian.
pub const WIRE_MAGIC: u32 = 0x314d_4254;

/// Version of the message wire format. Bump on any change to the encoding of
/// [`Message`] or the types it contains.
pub const WIRE_FORMAT_VERSION: u16 = 1;

/// A protocol message exchanged between replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A proposer disseminates its block and header for the current round.
    Header {
        /// The header under certification.
        header: Header,
        /// The block the header commits to.
        block: Block,
    },
    /// A replica acknowledges a header it considers valid (the simulated
    /// equivalent of a signature share).
    Ack {
        /// Digest of the acknowledged header.
        header_digest: Digest,
        /// DAG instance of the header.
        dag: DagId,
        /// Round of the acknowledged header.
        round: Round,
        /// The acknowledging replica.
        signer: ReplicaId,
    },
    /// A fully certified vertex (header + block + certificate), broadcast by
    /// its author once a `2f + 1` quorum of acknowledgements arrived.
    Vertex(Box<Vertex>),
}

impl Message {
    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Header { .. } => "header",
            Message::Ack { .. } => "ack",
            Message::Vertex(_) => "vertex",
        }
    }

    /// The round the message refers to.
    pub fn round(&self) -> Round {
        match self {
            Message::Header { header, .. } => header.round,
            Message::Ack { round, .. } => *round,
            Message::Vertex(vertex) => vertex.round(),
        }
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(WIRE_MAGIC);
        w.put_u16(WIRE_FORMAT_VERSION);
        match self {
            Message::Header { header, block } => {
                w.put_u8(0);
                header.encode(w);
                block.encode(w);
            }
            Message::Ack {
                header_digest,
                dag,
                round,
                signer,
            } => {
                w.put_u8(1);
                header_digest.encode(w);
                dag.encode(w);
                round.encode(w);
                signer.encode(w);
            }
            Message::Vertex(vertex) => {
                w.put_u8(2);
                vertex.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let magic = r.u32()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = r.u16()?;
        if version != WIRE_FORMAT_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        match r.u8()? {
            0 => Ok(Message::Header {
                header: Header::decode(r)?,
                block: Block::decode(r)?,
            }),
            1 => Ok(Message::Ack {
                header_digest: Digest::decode(r)?,
                dag: DagId::decode(r)?,
                round: Round::decode(r)?,
                signer: ReplicaId::decode(r)?,
            }),
            2 => Ok(Message::Vertex(Box::new(Vertex::decode(r)?))),
            tag => Err(WireError::InvalidTag {
                type_name: "Message",
                tag: u32::from(tag),
            }),
        }
    }
}

impl WireSized for Message {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{BlockPayload, Committee, Hashable, SeqNo, ShardId, SimTime};

    #[test]
    fn message_accessors() {
        let block = Block::normal(
            DagId::new(0),
            Round::new(3),
            ReplicaId::new(1),
            ShardId::new(1),
            SeqNo::new(0),
            BlockPayload::empty(),
            SimTime::ZERO,
        );
        let header = Header::new(
            DagId::new(0),
            Round::new(3),
            ReplicaId::new(1),
            block.digest(),
            vec![],
            SimTime::ZERO,
        );
        let ack = Message::Ack {
            header_digest: header.digest(),
            dag: DagId::new(0),
            round: Round::new(3),
            signer: ReplicaId::new(2),
        };
        let hdr = Message::Header {
            header: header.clone(),
            block: block.clone(),
        };
        assert_eq!(hdr.kind(), "header");
        assert_eq!(hdr.round(), Round::new(3));
        assert_eq!(ack.kind(), "ack");
        assert_eq!(ack.round(), Round::new(3));

        let committee = Committee::new(4);
        let cert =
            tb_types::Certificate::for_header(&header, committee.replicas().take(3).collect());
        let vertex = Message::Vertex(Box::new(Vertex::new(header, block, cert)));
        assert_eq!(vertex.kind(), "vertex");
        assert_eq!(vertex.round(), Round::new(3));
    }

    #[test]
    fn envelope_rejects_wrong_magic_and_version() {
        let ack = Message::Ack {
            header_digest: Digest::ZERO,
            dag: DagId::new(0),
            round: Round::new(1),
            signer: ReplicaId::new(0),
        };
        let mut bytes = ack.to_wire_bytes();
        assert_eq!(Message::from_wire_bytes(&bytes), Ok(ack.clone()));
        assert_eq!(WireSized::wire_size(&ack), bytes.len());

        // Corrupt the magic.
        bytes[0] ^= 0xff;
        assert!(matches!(
            Message::from_wire_bytes(&bytes),
            Err(WireError::BadMagic { .. })
        ));

        // Restore the magic, bump the version.
        bytes[0] ^= 0xff;
        bytes[4] = 0xfe;
        assert!(matches!(
            Message::from_wire_bytes(&bytes),
            Err(WireError::UnsupportedVersion { found: 0xfe })
        ));
    }
}
