//! Run reports produced by the cluster simulation.

use serde::{Deserialize, Serialize};
use tb_types::{Round, SimTime};

/// Commit-time sample for one leader round (Figure 16 plots the average of
/// consecutive differences over windows of 100 rounds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundCommitSample {
    /// The DAG instance the round belongs to.
    pub dag: u64,
    /// The committed leader round.
    pub round: Round,
    /// Simulated time at which the round committed on the observer replica.
    pub committed_at: SimTime,
}

/// Aggregated result of one simulation run, measured on the observer replica
/// (replica 0 unless it is crashed). Honest replicas commit identical
/// sequences, so any observer yields the same counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Human-readable label of the system variant (Thunderbolt,
    /// Thunderbolt-OCC, Tusk).
    pub label: String,
    /// Number of replicas in the committee.
    pub replicas: u32,
    /// Total transactions committed (single-shard + cross-shard).
    pub committed_txs: u64,
    /// Committed single-shard (preplayed) transactions.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions.
    pub cross_shard_txs: u64,
    /// Preplayed blocks discarded by validation.
    pub invalid_blocks: u64,
    /// Total preplay re-executions reported by the concurrent executor /
    /// OCC preplayer on the observer replica.
    pub reexecutions: u64,
    /// Number of DAG reconfigurations that completed during the run.
    pub reconfigurations: u64,
    /// Total simulated duration of the run.
    pub duration: SimTime,
    /// Sum of per-transaction latencies (commit − submission) in seconds.
    pub total_latency_secs: f64,
    /// Commit-time samples per leader round (for Figure 16).
    pub round_commits: Vec<RoundCommitSample>,
    /// Highest round reached on the observer replica.
    pub highest_round: Round,
}

impl RunReport {
    /// Throughput in transactions per second of simulated time.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed_txs as f64 / secs
    }

    /// Average end-to-end transaction latency in seconds.
    pub fn avg_latency_secs(&self) -> f64 {
        if self.committed_txs == 0 {
            return 0.0;
        }
        self.total_latency_secs / self.committed_txs as f64
    }

    /// Average commit-to-commit runtime per leader round, over windows of
    /// `window` rounds (Figure 16 uses 100). Returns `(window end index,
    /// average seconds)` pairs.
    pub fn per_round_runtime(&self, window: usize) -> Vec<(usize, f64)> {
        if self.round_commits.len() < 2 || window == 0 {
            return Vec::new();
        }
        let mut deltas = Vec::with_capacity(self.round_commits.len() - 1);
        for pair in self.round_commits.windows(2) {
            deltas.push(
                pair[1]
                    .committed_at
                    .saturating_since(pair[0].committed_at)
                    .as_secs_f64(),
            );
        }
        deltas
            .chunks(window)
            .enumerate()
            .map(|(i, chunk)| {
                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                ((i + 1) * window, avg)
            })
            .collect()
    }

    /// One-line summary used by the examples and the benchmark binaries.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} replicas, {} txs committed in {} ({:.0} tps, avg latency {:.3}s, {} reconfigs)",
            self.label,
            self.replicas,
            self.committed_txs,
            self.duration,
            self.throughput_tps(),
            self.avg_latency_secs(),
            self.reconfigurations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            label: "Thunderbolt".to_string(),
            replicas: 4,
            committed_txs: 1_000,
            duration: SimTime::from_secs(2),
            total_latency_secs: 500.0,
            round_commits: (0..5)
                .map(|i| RoundCommitSample {
                    dag: 0,
                    round: Round::new(i * 2 + 1),
                    committed_at: SimTime::from_millis(100 * (i + 1)),
                })
                .collect(),
            ..RunReport::default()
        }
    }

    #[test]
    fn throughput_and_latency_are_derived_from_totals() {
        let report = sample_report();
        assert!((report.throughput_tps() - 500.0).abs() < 1e-9);
        assert!((report.avg_latency_secs() - 0.5).abs() < 1e-9);
        assert!(report.summary().contains("500 tps"));
    }

    #[test]
    fn empty_report_does_not_divide_by_zero() {
        let report = RunReport::default();
        assert_eq!(report.throughput_tps(), 0.0);
        assert_eq!(report.avg_latency_secs(), 0.0);
        assert!(report.per_round_runtime(100).is_empty());
    }

    #[test]
    fn per_round_runtime_averages_commit_gaps() {
        let report = sample_report();
        let windows = report.per_round_runtime(2);
        // Four gaps of 100 ms each -> two windows of average 0.1 s.
        assert_eq!(windows.len(), 2);
        assert!((windows[0].1 - 0.1).abs() < 1e-9);
        assert_eq!(windows[0].0, 2);
        assert_eq!(windows[1].0, 4);
    }
}
