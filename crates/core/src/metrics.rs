//! Run reports produced by the cluster simulation.

use serde::{Deserialize, Serialize};
use tb_types::wire::{Wire, WireError, WireReader, WireWriter};
use tb_types::{Round, SimTime};

/// Number of power-of-two microsecond buckets in a [`LatencyHistogram`].
const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` (for `i >= 1`) holds samples in `[2^(i-1), 2^i)` µs; bucket 0
/// holds sub-microsecond samples. Quantiles report the bucket's upper bound,
/// so they are conservative (never under-report) and deterministic — exactly
/// what a CI perf gate wants. Memory is constant regardless of run length,
/// so every committed transaction of a simulation can be recorded.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts.
    buckets: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample given in seconds.
    pub fn record_secs(&mut self, secs: f64) {
        let micros = (secs.max(0.0) * 1e6) as u64;
        let bucket = if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th sample. Returns 0 with no
    /// samples.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper_micros = 1u64 << bucket;
                return upper_micros as f64 / 1e6;
            }
        }
        (1u64 << (HIST_BUCKETS - 1)) as f64 / 1e6
    }
}

/// Commit-time sample for one leader round (Figure 16 plots the average of
/// consecutive differences over windows of 100 rounds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundCommitSample {
    /// The DAG instance the round belongs to.
    pub dag: u64,
    /// The committed leader round.
    pub round: Round,
    /// Simulated time at which the round committed on the observer replica.
    pub committed_at: SimTime,
    /// Snapshot of the replica's cumulative FNV-1a commit-order digest after
    /// this round committed. Honest replicas that committed the same prefix
    /// carry identical `(dag, round, digest)` samples, which is what the
    /// chaos campaign's agreement invariant checks.
    pub digest: u64,
}

impl Wire for RoundCommitSample {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.dag);
        self.round.encode(w);
        self.committed_at.encode(w);
        w.put_u64(self.digest);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RoundCommitSample {
            dag: r.u64()?,
            round: Round::decode(r)?,
            committed_at: SimTime::decode(r)?,
            digest: r.u64()?,
        })
    }
}

/// Aggregated result of one simulation run, measured on the observer replica
/// (replica 0 unless it is crashed). Honest replicas commit identical
/// sequences, so any observer yields the same counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Human-readable label of the system variant (Thunderbolt,
    /// Thunderbolt-OCC, Tusk).
    pub label: String,
    /// Stable name of the workload that drove the run (`smallbank`,
    /// `contract`, `kv-hot`, or a custom [`Workload::name`]); two runs of
    /// the same engine under different workloads are distinguishable by
    /// this field alone. Empty for reports built outside a cluster run.
    ///
    /// [`Workload::name`]: tb_workload::Workload::name
    pub workload: String,
    /// Number of replicas in the committee.
    pub replicas: u32,
    /// Total transactions committed (single-shard + cross-shard).
    pub committed_txs: u64,
    /// Committed single-shard (preplayed) transactions.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions.
    pub cross_shard_txs: u64,
    /// Preplayed blocks discarded by validation.
    pub invalid_blocks: u64,
    /// Total preplay re-executions reported by the concurrent executor /
    /// OCC preplayer on the observer replica.
    pub reexecutions: u64,
    /// Number of DAG reconfigurations that completed during the run.
    pub reconfigurations: u64,
    /// Total simulated duration of the run.
    pub duration: SimTime,
    /// Sum of per-transaction latencies (commit − submission) in seconds.
    pub total_latency_secs: f64,
    /// Median per-transaction commit latency in seconds (log₂-bucket upper
    /// bound, see [`LatencyHistogram`]).
    pub latency_p50_secs: f64,
    /// 99th-percentile per-transaction commit latency in seconds.
    pub latency_p99_secs: f64,
    /// Wall-clock seconds the observer's validation stage was busy.
    pub validate_busy_secs: f64,
    /// Wall-clock seconds the observer's storage-apply stage was busy.
    pub apply_busy_secs: f64,
    /// Wall-clock seconds the observer's cross-shard execution stage was
    /// busy.
    pub execute_busy_secs: f64,
    /// Write batches the pipelined applier drained together with at least
    /// one other batch (0 on the strictly staged and serial paths).
    pub coalesced_batches: u64,
    /// Storage apply calls the observer's commit path performed: one per
    /// valid block on the staged/serial paths, one per applier drain on the
    /// pipelined path. `apply_calls < single-shard blocks` is direct
    /// evidence of coalescing (see `docs/PIPELINE.md`).
    pub apply_calls: u64,
    /// FNV-1a digest over the committed transaction ids in commit order,
    /// as a 16-hex-digit string (a string so JSON consumers never round it
    /// to a 53-bit double). Two runs that committed the same transactions
    /// in the same order have the same digest; note the converse workflow
    /// caveat in `docs/PERF.md` — simulation schedules are timing-dependent,
    /// so digests from independently regenerated reports normally differ.
    pub commit_order_digest: String,
    /// Commit-time samples per leader round (for Figure 16).
    pub round_commits: Vec<RoundCommitSample>,
    /// Highest round reached on the observer replica.
    pub highest_round: Round,
    /// Messages handed to the simulated network during the run.
    pub msgs_sent: u64,
    /// Messages the network actually delivered.
    pub msgs_delivered: u64,
    /// Messages dropped by faults (crashes, silences, blocked links, random
    /// loss). Chaos runs assert this is visible rather than silently eaten.
    pub msgs_dropped: u64,
    /// Wire-encoded payload bytes handed to the transport during the run.
    /// Counts the message encoding only — length prefixes and handshakes are
    /// excluded — so simulated and real-TCP runs report comparable traffic.
    pub bytes_sent: u64,
    /// Wire-encoded payload bytes the transport actually delivered.
    pub bytes_delivered: u64,
    /// Scheduled faults the driver applied before the run ended.
    pub faults_applied: u64,
    /// Scheduled faults whose activation time the run never reached. A
    /// non-zero value means the fault schedule outlived the run — the
    /// scenario did not test what it claimed to.
    pub faults_unapplied: u64,
}

impl RunReport {
    /// Throughput in transactions per second of simulated time.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed_txs as f64 / secs
    }

    /// Average end-to-end transaction latency in seconds.
    pub fn avg_latency_secs(&self) -> f64 {
        if self.committed_txs == 0 {
            return 0.0;
        }
        self.total_latency_secs / self.committed_txs as f64
    }

    /// Average commit-to-commit runtime per leader round, over windows of
    /// `window` rounds (Figure 16 uses 100). Returns `(window end index,
    /// average seconds)` pairs.
    pub fn per_round_runtime(&self, window: usize) -> Vec<(usize, f64)> {
        if self.round_commits.len() < 2 || window == 0 {
            return Vec::new();
        }
        let mut deltas = Vec::with_capacity(self.round_commits.len() - 1);
        for pair in self.round_commits.windows(2) {
            deltas.push(
                pair[1]
                    .committed_at
                    .saturating_since(pair[0].committed_at)
                    .as_secs_f64(),
            );
        }
        deltas
            .chunks(window)
            .enumerate()
            .map(|(i, chunk)| {
                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                ((i + 1) * window, avg)
            })
            .collect()
    }

    /// The share of measured stage time spent in each commit stage, as
    /// `(validate, apply, execute)` fractions summing to 1 (all zero when
    /// nothing was measured). This is the pipeline-stage-occupancy metric
    /// recorded in `BENCH_report.json`.
    pub fn stage_occupancy(&self) -> (f64, f64, f64) {
        let total = self.validate_busy_secs + self.apply_busy_secs + self.execute_busy_secs;
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.validate_busy_secs / total,
            self.apply_busy_secs / total,
            self.execute_busy_secs / total,
        )
    }

    /// One-line summary used by the examples and the benchmark binaries.
    pub fn summary(&self) -> String {
        let scenario = if self.workload.is_empty() {
            self.label.clone()
        } else {
            format!("{} [{}]", self.label, self.workload)
        };
        format!(
            "{}: {} replicas, {} txs committed in {} ({:.0} tps, avg latency {:.3}s, {} reconfigs)",
            scenario,
            self.replicas,
            self.committed_txs,
            self.duration,
            self.throughput_tps(),
            self.avg_latency_secs(),
            self.reconfigurations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            label: "Thunderbolt".to_string(),
            replicas: 4,
            committed_txs: 1_000,
            duration: SimTime::from_secs(2),
            total_latency_secs: 500.0,
            round_commits: (0..5)
                .map(|i| RoundCommitSample {
                    dag: 0,
                    round: Round::new(i * 2 + 1),
                    committed_at: SimTime::from_millis(100 * (i + 1)),
                    digest: 0,
                })
                .collect(),
            ..RunReport::default()
        }
    }

    #[test]
    fn throughput_and_latency_are_derived_from_totals() {
        let report = sample_report();
        assert!((report.throughput_tps() - 500.0).abs() < 1e-9);
        assert!((report.avg_latency_secs() - 0.5).abs() < 1e-9);
        assert!(report.summary().contains("500 tps"));
    }

    #[test]
    fn empty_report_does_not_divide_by_zero() {
        let report = RunReport::default();
        assert_eq!(report.throughput_tps(), 0.0);
        assert_eq!(report.avg_latency_secs(), 0.0);
        assert!(report.per_round_runtime(100).is_empty());
    }

    #[test]
    fn latency_histogram_quantiles_are_bucket_upper_bounds() {
        let mut hist = LatencyHistogram::new();
        for _ in 0..99 {
            hist.record_secs(0.000_003); // 3 µs -> bucket [2, 4) µs
        }
        hist.record_secs(0.5); // one slow outlier
        assert_eq!(hist.count(), 100);
        // p50 falls in the 3 µs bucket, whose upper bound is 4 µs.
        assert!((hist.quantile_secs(0.5) - 4e-6).abs() < 1e-12);
        // p99 still falls in the fast bucket (99 of 100 samples).
        assert!((hist.quantile_secs(0.99) - 4e-6).abs() < 1e-12);
        // p100 reports the outlier's bucket.
        assert!(hist.quantile_secs(1.0) >= 0.5);
        assert!(LatencyHistogram::new().quantile_secs(0.5) == 0.0);
    }

    #[test]
    fn stage_occupancy_normalizes_to_shares() {
        let report = RunReport {
            validate_busy_secs: 3.0,
            apply_busy_secs: 1.0,
            execute_busy_secs: 0.0,
            ..RunReport::default()
        };
        let (validate, apply, execute) = report.stage_occupancy();
        assert!((validate - 0.75).abs() < 1e-9);
        assert!((apply - 0.25).abs() < 1e-9);
        assert_eq!(execute, 0.0);
        assert_eq!(RunReport::default().stage_occupancy(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn per_round_runtime_averages_commit_gaps() {
        let report = sample_report();
        let windows = report.per_round_runtime(2);
        // Four gaps of 100 ms each -> two windows of average 0.1 s.
        assert_eq!(windows.len(), 2);
        assert!((windows[0].1 - 0.1).abs() < 1e-9);
        assert_eq!(windows[0].0, 2);
        assert_eq!(windows[1].0, 4);
    }
}
