//! The shard proposer: client queues and the proposal rules (Section 5.1).
//!
//! Every replica serves exactly one shard at a time and proposes one block
//! per round for it. What goes into the block is decided by the proposal
//! rules:
//!
//! * **P1** — cross-shard transactions are never preplayed; they ride in the
//!   block as-is and are executed after consensus.
//! * **P3/P4** — if the proposer has seen (in its local DAG) cross-shard
//!   transactions touching its shard that are not yet committed, it must not
//!   preplay: it either converts its pending single-shard transactions to
//!   cross-shard ones, or proposes a *skip block* and retries the preplay
//!   once the conflicting transactions are finalized (Section 5.4).
//! * **P6** — if the expected leader proposal has not arrived, the proposer
//!   converts instead of waiting.
//! * **Shift** — when the reconfiguration conditions of Section 6 hold, the
//!   proposer emits a Shift block instead of a payload block.
//!
//! The decision logic is a pure function ([`decide`]) so it can be tested
//! exhaustively; the queue bookkeeping lives in [`ShardProposer`].

use std::collections::VecDeque;
use tb_types::{ShardId, Transaction, TxClass};

/// Everything the decision function needs to know about the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProposalContext {
    /// The previous leader-round vertex is present in the local DAG (P6 is
    /// satisfied; if false the proposer must convert).
    pub leader_vertex_present: bool,
    /// Some cross-shard transaction touching this shard has been seen in the
    /// DAG but is not yet committed (triggers P3/P4).
    pub conflicting_cross_shard_pending: bool,
    /// The reconfiguration conditions of Section 6 are met and this replica
    /// has not yet emitted a Shift block in the current DAG.
    pub should_shift: bool,
    /// Whether the proposer prefers skip blocks (preplay recovery,
    /// Section 5.4) over converting to cross-shard when P3/P4 trigger.
    pub use_skip_blocks: bool,
}

impl ProposalContext {
    /// A context in which nothing prevents preplaying.
    pub fn clear() -> Self {
        ProposalContext {
            leader_vertex_present: true,
            conflicting_cross_shard_pending: false,
            should_shift: false,
            use_skip_blocks: false,
        }
    }
}

/// How a Byzantine proposer deviates from the protocol.
///
/// These are the adversarial proposer behaviours the chaos campaign injects.
/// Each one attacks a different rule: `Equivocate` attacks certification
/// (one header per author per round), `TamperWrites` attacks EOV (declared
/// effects must re-execute), and `OverfullWrongShard` attacks P1 and the
/// batch budget (cross-shard transactions must not be preplayed, blocks
/// carry at most one batch). Honest replicas must neither diverge nor stall
/// under any of them as long as at most f replicas are Byzantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineBehavior {
    /// Corrupt the declared write set of preplayed transactions so the block
    /// fails post-consensus validation. Every honest replica re-executes the
    /// declared sets, detects the mismatch deterministically, and discards
    /// the block (EOV safety).
    TamperWrites,
    /// Send two conflicting (header, block) pairs for the same round to
    /// disjoint subsets of the committee. At most one variant can gather a
    /// quorum of acks, so at most one vertex is certified — honest replicas
    /// all adopt that single vertex.
    Equivocate,
    /// Violate P1 and the batch budget: preplay cross-shard transactions as
    /// if they were single-shard and stuff multiple batches into one block.
    /// Validation has no shard check (by design — effects are what is
    /// checked), so the block applies *deterministically* everywhere; safety
    /// must still hold even though the proposer wrote outside its shard.
    OverfullWrongShard,
}

impl ByzantineBehavior {
    /// Stable label used in campaign scenario names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineBehavior::TamperWrites => "tamper-writes",
            ByzantineBehavior::Equivocate => "equivocate",
            ByzantineBehavior::OverfullWrongShard => "overfull-wrong-shard",
        }
    }
}

/// What kind of block the proposer should build this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposalDecision {
    /// Emit a Shift block (reconfiguration vote).
    Shift,
    /// Preplay the pending single-shard batch with the concurrent executor
    /// and attach the pending cross-shard transactions (the normal EOV + OE
    /// block).
    Preplay,
    /// Convert the pending single-shard transactions to cross-shard ones and
    /// submit everything through the OE path (rules P3/P4/P6).
    ConvertToCross,
    /// Propose a skip block: keep the single-shard transactions queued for a
    /// later preplay, only ship pending cross-shard transactions.
    Skip,
}

/// Applies the proposal rules to the context.
pub fn decide(ctx: ProposalContext) -> ProposalDecision {
    if ctx.should_shift {
        return ProposalDecision::Shift;
    }
    if !ctx.leader_vertex_present {
        return ProposalDecision::ConvertToCross;
    }
    if ctx.conflicting_cross_shard_pending {
        return if ctx.use_skip_blocks {
            ProposalDecision::Skip
        } else {
            ProposalDecision::ConvertToCross
        };
    }
    ProposalDecision::Preplay
}

/// Client-transaction queues of one shard proposer.
#[derive(Clone, Debug)]
pub struct ShardProposer {
    shard: ShardId,
    single_shard: VecDeque<Transaction>,
    cross_shard: VecDeque<Transaction>,
    batch_size: usize,
    accepted: u64,
    rejected_wrong_shard: u64,
}

impl ShardProposer {
    /// Creates a proposer for `shard` batching up to `batch_size`
    /// single-shard transactions per block.
    pub fn new(shard: ShardId, batch_size: usize) -> Self {
        ShardProposer {
            shard,
            single_shard: VecDeque::new(),
            cross_shard: VecDeque::new(),
            batch_size,
            accepted: 0,
            rejected_wrong_shard: 0,
        }
    }

    /// The shard this proposer currently serves.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Re-targets the proposer to a new shard after a reconfiguration.
    /// Queued transactions for the old shard are dropped — their clients
    /// resubmit them to the new proposer of that shard (Section 6,
    /// "Uncommitted Transactions").
    pub fn reassign(&mut self, shard: ShardId) {
        if shard != self.shard {
            self.shard = shard;
            self.single_shard.clear();
            self.cross_shard.clear();
        }
    }

    /// Number of queued single-shard transactions.
    pub fn pending_single(&self) -> usize {
        self.single_shard.len()
    }

    /// Number of queued cross-shard transactions.
    pub fn pending_cross(&self) -> usize {
        self.cross_shard.len()
    }

    /// Total transactions accepted into the queues so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Transactions rejected because they were routed to the wrong shard.
    pub fn rejected_wrong_shard(&self) -> u64 {
        self.rejected_wrong_shard
    }

    /// Enqueues a client transaction. Transactions whose home shard is not
    /// the proposer's shard are rejected (the client must resubmit to the
    /// right proposer).
    pub fn enqueue(&mut self, tx: Transaction) -> bool {
        if tx.home_shard() != self.shard {
            self.rejected_wrong_shard += 1;
            return false;
        }
        self.accepted += 1;
        match tx.class() {
            TxClass::SingleShard => self.single_shard.push_back(tx),
            TxClass::CrossShard => self.cross_shard.push_back(tx),
        }
        true
    }

    /// Enqueues many transactions, returning how many were accepted.
    pub fn enqueue_all(&mut self, txs: impl IntoIterator<Item = Transaction>) -> usize {
        txs.into_iter()
            .filter(|tx| self.enqueue(tx.clone()))
            .count()
    }

    /// Takes the next batch of single-shard transactions for preplay.
    pub fn take_single_batch(&mut self) -> Vec<Transaction> {
        let n = self.batch_size.min(self.single_shard.len());
        self.single_shard.drain(..n).collect()
    }

    /// Takes the next batch of cross-shard transactions (P1: straight into
    /// the block), bounded by `limit` so that a block never carries more than
    /// one batch worth of transactions in total.
    pub fn take_cross_batch(&mut self, limit: usize) -> Vec<Transaction> {
        let n = limit.min(self.batch_size).min(self.cross_shard.len());
        self.cross_shard.drain(..n).collect()
    }

    /// Puts single-shard transactions back at the front of the queue (used
    /// when a block was invalidated and its transactions must be retried, or
    /// when a skip block postponed them).
    pub fn requeue_single(&mut self, txs: Vec<Transaction>) {
        for tx in txs.into_iter().rev() {
            self.single_shard.push_front(tx);
        }
    }

    /// True if both queues are empty.
    pub fn is_drained(&self) -> bool {
        self.single_shard.is_empty() && self.cross_shard.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{ClientId, ContractCall, SimTime, SmallBankProcedure, TxId};

    fn tx(id: u64, from: u64, to: u64, n_shards: u32) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment {
                from,
                to,
                amount: 1,
            }),
            n_shards,
            SimTime::ZERO,
        )
    }

    #[test]
    fn decision_table_matches_the_rules() {
        // Shift dominates everything.
        assert_eq!(
            decide(ProposalContext {
                should_shift: true,
                leader_vertex_present: false,
                conflicting_cross_shard_pending: true,
                use_skip_blocks: true,
            }),
            ProposalDecision::Shift
        );
        // Missing leader proposal converts (P6).
        assert_eq!(
            decide(ProposalContext {
                leader_vertex_present: false,
                ..ProposalContext::clear()
            }),
            ProposalDecision::ConvertToCross
        );
        // Conflicting uncommitted cross-shard transactions convert (P3/P4) …
        assert_eq!(
            decide(ProposalContext {
                conflicting_cross_shard_pending: true,
                ..ProposalContext::clear()
            }),
            ProposalDecision::ConvertToCross
        );
        // … or skip when skip blocks are enabled (Section 5.4).
        assert_eq!(
            decide(ProposalContext {
                conflicting_cross_shard_pending: true,
                use_skip_blocks: true,
                ..ProposalContext::clear()
            }),
            ProposalDecision::Skip
        );
        // Otherwise preplay.
        assert_eq!(decide(ProposalContext::clear()), ProposalDecision::Preplay);
    }

    #[test]
    fn enqueue_routes_by_class_and_home_shard() {
        // 4 shards; proposer serves shard 0.
        let mut proposer = ShardProposer::new(ShardId::new(0), 10);
        // Single-shard for shard 0 (accounts 0 and 4 both map to shard 0).
        assert!(proposer.enqueue(tx(1, 0, 4, 4)));
        // Cross-shard with home shard 0 (accounts 0 and 1).
        assert!(proposer.enqueue(tx(2, 0, 1, 4)));
        // Wrong shard: home shard of accounts {1, 5} is shard 1.
        assert!(!proposer.enqueue(tx(3, 1, 5, 4)));
        assert_eq!(proposer.pending_single(), 1);
        assert_eq!(proposer.pending_cross(), 1);
        assert_eq!(proposer.accepted(), 2);
        assert_eq!(proposer.rejected_wrong_shard(), 1);
        assert!(!proposer.is_drained());
    }

    #[test]
    fn batches_respect_the_batch_size_and_fifo_order() {
        let mut proposer = ShardProposer::new(ShardId::new(0), 3);
        for i in 0..5 {
            proposer.enqueue(tx(i, 0, 4, 4));
        }
        let batch = proposer.take_single_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].id, TxId::new(0));
        assert_eq!(proposer.pending_single(), 2);
        let rest = proposer.take_single_batch();
        assert_eq!(rest.len(), 2);
        assert!(proposer.take_single_batch().is_empty());
    }

    #[test]
    fn requeue_preserves_original_order() {
        let mut proposer = ShardProposer::new(ShardId::new(0), 10);
        for i in 0..4 {
            proposer.enqueue(tx(i, 0, 4, 4));
        }
        let batch = proposer.take_single_batch();
        proposer.requeue_single(batch);
        let again = proposer.take_single_batch();
        let ids: Vec<u64> = again.iter().map(|t| t.id.as_inner()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reassign_clears_queues_only_on_change() {
        let mut proposer = ShardProposer::new(ShardId::new(0), 10);
        proposer.enqueue(tx(1, 0, 4, 4));
        proposer.reassign(ShardId::new(0));
        assert_eq!(proposer.pending_single(), 1, "same shard keeps the queue");
        proposer.reassign(ShardId::new(2));
        assert_eq!(proposer.shard(), ShardId::new(2));
        assert!(proposer.is_drained());
        // New shard accepts its own transactions now (accounts 2 and 6).
        assert!(proposer.enqueue(tx(9, 2, 6, 4)));
    }

    #[test]
    fn enqueue_all_counts_accepted_transactions() {
        let mut proposer = ShardProposer::new(ShardId::new(1), 10);
        let txs = vec![tx(1, 1, 5, 4), tx(2, 0, 4, 4), tx(3, 1, 2, 4)];
        assert_eq!(proposer.enqueue_all(txs), 2);
    }
}
