//! The chaos campaign: adversarial scenarios with machine-checked
//! safety/liveness invariants.
//!
//! The cluster bench suite measures the system on clean runs; this module
//! tests the paper's *robustness* claims. A [`CampaignScenario`] is a
//! declarative bundle of a [`ScenarioBuilder`] setup (Byzantine proposers,
//! healing partitions, WAN-tail latency, crashes under reconfiguration, a
//! long soak) and the [`Invariant`]s that must hold after the run:
//!
//! * **agreement** — the FNV-1a commit-order digests of all honest replicas
//!   are prefix-consistent ([`check_honest_agreement`]), and replicas that
//!   committed the same full sequence hold byte-identical stores;
//! * **liveness** — the commit height advances whenever at most `f` replicas
//!   are faulty ([`Liveness`]);
//! * **no lost commits across reconfiguration** — the digest chain spans the
//!   DAG-instance boundary ([`ReconfigurationCompletes`]);
//! * **no vacuous faults** — every scheduled fault actually fired
//!   ([`FaultsAllApplied`]), and chaos runs report the messages their faults
//!   dropped ([`MessageLossObserved`]).
//!
//! [`default_campaign`] assembles the standard scenario list; the
//! `campaign_report` binary in `tb-bench` runs it and emits the pass/fail
//! table that lands in `BENCH_report.json` (schema v3, `campaigns`) and is
//! gated by the `chaos-smoke` CI job. The invariants are ordinary values, so
//! the root integration tests share them (see `tests/chaos_campaign.rs`).

use crate::cluster::ClusterSimulation;
use crate::metrics::RunReport;
use crate::proposer::ByzantineBehavior;
use crate::scenario::ScenarioBuilder;
use serde::Serialize;
use std::sync::Arc;
use tb_network::FaultPlan;
use tb_storage::{Store, TempDir, WalOptions, WalStore};
use tb_types::{LatencyModel, ReconfigConfig, ReplicaId, SimTime, StorageBackend, StorageConfig};
use tb_workload::SmallBankConfig;

/// Everything an [`Invariant`] may inspect after a run: the finished
/// simulation (per-replica metrics and stores), the observer's report, and
/// the replicas the scenario declared faulty.
pub struct InvariantContext<'a> {
    /// The finished simulation.
    pub sim: &'a ClusterSimulation,
    /// The observer's run report.
    pub report: &'a RunReport,
    /// Replicas the scenario made Byzantine, crashed or censored. Agreement
    /// is only required among the others.
    pub faulty: &'a [ReplicaId],
}

/// A machine-checked post-run property of a chaos scenario.
pub trait Invariant {
    /// Stable name used in failure messages and reports.
    fn name(&self) -> &'static str;
    /// Checks the property, returning a human-readable violation on failure.
    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String>;
}

/// Checks that every replica outside `faulty` committed a prefix of the same
/// `(dag, leader round, commit-order digest)` sequence, and that replicas
/// with identical full sequences hold byte-identical stores. This is the
/// safety core of the campaign: equal digests mean equal committed
/// transaction sequences, and the store diff catches any divergence in how
/// those sequences were applied.
pub fn check_honest_agreement(sim: &ClusterSimulation, faulty: &[ReplicaId]) -> Result<(), String> {
    /// One replica's commit history as comparable `(dag, round, digest)` triples.
    type CommitSequence = Vec<(u64, u64, u64)>;
    let honest: Vec<ReplicaId> = (0..sim.replica_count())
        .map(ReplicaId::new)
        .filter(|id| !faulty.contains(id))
        .collect();
    let sequences: Vec<(ReplicaId, CommitSequence)> = honest
        .iter()
        .map(|id| {
            let samples = sim
                .replica(*id)
                .metrics()
                .round_commits
                .iter()
                .map(|s| (s.dag, s.round.as_u64(), s.digest))
                .collect();
            (*id, samples)
        })
        .collect();
    let (longest_id, longest) = sequences
        .iter()
        .max_by_key(|(_, s)| s.len())
        .cloned()
        .ok_or_else(|| "no honest replicas to compare".to_string())?;
    for (id, sequence) in &sequences {
        if !longest.starts_with(sequence) {
            return Err(format!(
                "replica {} committed a sequence that is not a prefix of replica {}'s: \
                 {:?} vs {:?}",
                id.as_inner(),
                longest_id.as_inner(),
                sequence,
                longest
            ));
        }
    }
    // Replicas that committed the whole sequence must agree on state.
    let reference = sim.replica(longest_id).store().snapshot();
    for (id, sequence) in &sequences {
        if *id != longest_id && sequence.len() == longest.len() {
            let diverged = sim.replica(*id).store().snapshot().diff_values(&reference);
            if !diverged.is_empty() {
                return Err(format!(
                    "replicas {} and {} committed the same sequence but diverge on {} keys \
                     (first: {:?})",
                    id.as_inner(),
                    longest_id.as_inner(),
                    diverged.len(),
                    diverged.first()
                ));
            }
        }
    }
    Ok(())
}

/// Panicking form of [`check_honest_agreement`] for test suites.
pub fn assert_honest_agreement(sim: &ClusterSimulation, faulty: &[ReplicaId]) {
    if let Err(violation) = check_honest_agreement(sim, faulty) {
        panic!("honest-replica agreement violated: {violation}");
    }
}

/// Agreement + state consistency among the honest replicas
/// ([`check_honest_agreement`] as an [`Invariant`]).
pub struct HonestAgreement;

impl Invariant for HonestAgreement {
    fn name(&self) -> &'static str {
        "honest-agreement"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        check_honest_agreement(ctx.sim, ctx.faulty)
    }
}

/// Commit height advances: the observer committed at least
/// `min_round_commits` leader rounds and at least one transaction.
pub struct Liveness {
    /// Minimum leader-round commits required on the observer.
    pub min_round_commits: usize,
}

impl Invariant for Liveness {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        let commits = ctx.report.round_commits.len();
        if commits < self.min_round_commits {
            return Err(format!(
                "only {} leader rounds committed, needed {}",
                commits, self.min_round_commits
            ));
        }
        if ctx.report.committed_txs == 0 {
            return Err("no transactions committed".to_string());
        }
        Ok(())
    }
}

/// The run's faults visibly dropped messages (`msgs_dropped > 0`) — a chaos
/// scenario whose faults never cost a message did not disturb anything.
pub struct MessageLossObserved;

impl Invariant for MessageLossObserved {
    fn name(&self) -> &'static str {
        "message-loss-observed"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        if ctx.report.msgs_dropped == 0 {
            return Err(format!(
                "faults dropped no messages ({} sent, {} delivered)",
                ctx.report.msgs_sent, ctx.report.msgs_delivered
            ));
        }
        Ok(())
    }
}

/// Every scheduled fault fired before the run ended — a schedule that
/// outlives the run tested nothing and must fail the scenario.
pub struct FaultsAllApplied;

impl Invariant for FaultsAllApplied {
    fn name(&self) -> &'static str {
        "faults-all-applied"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        if ctx.report.faults_unapplied > 0 {
            return Err(format!(
                "{} scheduled faults never applied (schedule outlived the run)",
                ctx.report.faults_unapplied
            ));
        }
        Ok(())
    }
}

/// At least `min` reconfigurations completed, with commits on both sides of
/// the DAG-instance boundary. Together with [`HonestAgreement`]'s digest
/// chain (the FNV-1a fold carries across DAG instances), this checks that no
/// committed transaction is lost across a reconfiguration.
pub struct ReconfigurationCompletes {
    /// Minimum completed reconfigurations.
    pub min: u64,
}

impl Invariant for ReconfigurationCompletes {
    fn name(&self) -> &'static str {
        "reconfiguration-completes"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        if ctx.report.reconfigurations < self.min {
            return Err(format!(
                "{} reconfigurations completed, needed {}",
                ctx.report.reconfigurations, self.min
            ));
        }
        let before = ctx.report.round_commits.iter().any(|s| s.dag == 0);
        let after = ctx.report.round_commits.iter().any(|s| s.dag >= 1);
        if !before || !after {
            return Err(format!(
                "commits must span the reconfiguration boundary (dag 0: {before}, dag ≥ 1: {after})"
            ));
        }
        Ok(())
    }
}

/// The observer detected and discarded invalid preplayed blocks — the
/// expected footprint of a write-tampering Byzantine proposer.
pub struct InvalidBlocksDetected;

impl Invariant for InvalidBlocksDetected {
    fn name(&self) -> &'static str {
        "invalid-blocks-detected"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        if ctx.report.invalid_blocks == 0 {
            return Err("validation discarded no blocks, tampering went unnoticed".to_string());
        }
        Ok(())
    }
}

/// Crash recovery reconstructs exactly the pre-crash state from disk.
///
/// After the run, every replica's WAL/snapshot directory is reopened with
/// [`WalStore::open`] — the same code path a restarted process takes — and
/// three properties are machine-checked per replica:
///
/// 1. the recovered store is value-identical to the replica's live in-memory
///    store (`diff_values` empty);
/// 2. the recovered durable commit marker equals the replica's last committed
///    `(dag, round, digest)` triple;
/// 3. the recovered marker sits at the matching position of the observer's
///    commit sequence, so the durable state of a *crashed* replica never
///    contradicts what the survivors agreed on.
///
/// Finally, every replica the scenario crashed must have committed at least
/// one round before dying — otherwise the crash landed too early and the
/// scenario proved nothing about recovery.
pub struct DurableRecovery {
    /// Keeps the scenario's scoped data directory alive until the check ran.
    pub data_dir: Arc<TempDir>,
    /// The storage knobs the scenario ran with; recovery must use the same.
    pub storage: StorageConfig,
}

impl Invariant for DurableRecovery {
    fn name(&self) -> &'static str {
        "durable-recovery"
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), String> {
        let options = WalOptions {
            compact_wal_bytes: self.storage.compact_wal_bytes,
            flush_buffered_writes: self.storage.flush_buffered_writes as usize,
        };
        let observer_commits: Vec<(u64, u64, u64)> = ctx
            .report
            .round_commits
            .iter()
            .map(|s| (s.dag, s.round.as_u64(), s.digest))
            .collect();
        for id in 0..ctx.sim.replica_count() {
            let replica = ctx.sim.replica(ReplicaId::new(id));
            let live = replica.store();
            if !live.persistent() {
                return Err(format!(
                    "replica {id} runs a non-persistent store in a durable-recovery scenario"
                ));
            }
            let dir = std::path::Path::new(&self.storage.data_dir).join(format!("replica-{id}"));
            let recovered = WalStore::open(&dir, options)
                .map_err(|err| format!("reopen replica {id} store at {}: {err}", dir.display()))?;
            let info = recovered.recovery();
            if !info.snapshot_loaded && info.replayed_records == 0 {
                return Err(format!(
                    "replica {id} recovered nothing from {}",
                    dir.display()
                ));
            }
            let diverged = recovered.snapshot().diff_values(&live.snapshot());
            if !diverged.is_empty() {
                return Err(format!(
                    "replica {id}: recovered store diverges from the live store on {} keys \
                     (first: {:?})",
                    diverged.len(),
                    diverged.first()
                ));
            }
            let live_last = replica
                .metrics()
                .round_commits
                .last()
                .map(|s| (s.dag, s.round.as_u64(), s.digest));
            let recovered_last = recovered.last_commit().map(|m| (m.dag, m.round, m.digest));
            if recovered_last != live_last {
                return Err(format!(
                    "replica {id}: recovered commit marker {recovered_last:?} does not match \
                     the live last commit {live_last:?}"
                ));
            }
            if let Some(marker) = recovered_last {
                let position = replica.metrics().round_commits.len() - 1;
                if observer_commits.get(position) != Some(&marker) {
                    return Err(format!(
                        "replica {id}: durable marker {marker:?} disagrees with the observer's \
                         commit at position {position} ({:?})",
                        observer_commits.get(position)
                    ));
                }
            }
        }
        for id in ctx.faulty {
            if ctx.sim.replica(*id).metrics().round_commits.is_empty() {
                return Err(format!(
                    "crashed replica {} never committed; the crash landed too early to test \
                     recovery",
                    id.as_inner()
                ));
            }
        }
        Ok(())
    }
}

/// Scale knobs of the default campaign. `tb-core` cannot see `tb-bench`'s
/// `Scale`, so the campaign carries its own profile; the bench crate maps
/// one onto the other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignProfile {
    /// Leader-round budget of most scenarios.
    pub rounds: u64,
    /// Leader-round budget of the reconfiguration scenarios (must leave room
    /// for the silence condition `K` to trigger).
    pub reconfig_rounds: u64,
    /// Leader-round budget of the long soak.
    pub soak_rounds: u64,
    /// Preplay executor threads per replica.
    pub executors: usize,
    /// Transactions per block.
    pub batch: usize,
    /// SmallBank account pool size.
    pub accounts: u64,
}

impl CampaignProfile {
    /// The CI smoke profile: small enough for a debug-build test run.
    pub fn smoke() -> Self {
        CampaignProfile {
            rounds: 10,
            reconfig_rounds: 26,
            soak_rounds: 16,
            executors: 2,
            batch: 32,
            accounts: 128,
        }
    }

    /// The committed-report profile: a longer soak and bigger batches.
    pub fn quick() -> Self {
        CampaignProfile {
            rounds: 12,
            reconfig_rounds: 26,
            soak_rounds: 40,
            executors: 2,
            batch: 48,
            accounts: 256,
        }
    }
}

/// One adversarial scenario: a builder recipe, the replicas it corrupts, and
/// the invariants that must hold afterwards.
pub struct CampaignScenario {
    name: String,
    description: String,
    faulty: Vec<ReplicaId>,
    builder: Box<dyn FnOnce() -> ScenarioBuilder>,
    invariants: Vec<Box<dyn Invariant>>,
}

impl CampaignScenario {
    /// Creates a scenario from a name, a one-line description and a builder
    /// recipe. Every scenario checks [`HonestAgreement`] — it is the campaign's
    /// reason to exist — so it is pre-installed here.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        builder: impl FnOnce() -> ScenarioBuilder + 'static,
    ) -> Self {
        CampaignScenario {
            name: name.into(),
            description: description.into(),
            faulty: Vec::new(),
            builder: Box::new(builder),
            invariants: vec![Box::new(HonestAgreement)],
        }
    }

    /// Declares which replicas the scenario corrupts (excluded from the
    /// agreement check).
    pub fn faulty(mut self, replicas: impl IntoIterator<Item = u32>) -> Self {
        self.faulty = replicas.into_iter().map(ReplicaId::new).collect();
        self
    }

    /// Adds an invariant to check after the run.
    pub fn invariant(mut self, invariant: impl Invariant + 'static) -> Self {
        self.invariants.push(Box::new(invariant));
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the simulation, runs it, checks every invariant and returns
    /// the per-scenario result row.
    pub fn run(self) -> ScenarioResult {
        let mut sim = (self.builder)().build();
        let report = sim.run();
        let ctx = InvariantContext {
            sim: &sim,
            report: &report,
            faulty: &self.faulty,
        };
        let invariants: Vec<String> = self
            .invariants
            .iter()
            .map(|inv| inv.name().to_string())
            .collect();
        let mut failures = Vec::new();
        for invariant in &self.invariants {
            if let Err(violation) = invariant.check(&ctx) {
                failures.push(format!("{}: {}", invariant.name(), violation));
            }
        }
        ScenarioResult {
            scenario: self.name,
            description: self.description,
            passed: failures.is_empty(),
            failures,
            invariants,
            committed_txs: report.committed_txs,
            invalid_blocks: report.invalid_blocks,
            reconfigurations: report.reconfigurations,
            msgs_sent: report.msgs_sent,
            msgs_delivered: report.msgs_delivered,
            msgs_dropped: report.msgs_dropped,
            faults_applied: report.faults_applied,
            faults_unapplied: report.faults_unapplied,
            throughput_tps: report.throughput_tps(),
            commit_order_digest: report.commit_order_digest.clone(),
        }
    }
}

/// The pass/fail + metrics row of one scenario (the `campaigns` table of
/// `BENCH_report.json` schema v3).
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    /// Scenario name (stable, used by CI jq checks).
    pub scenario: String,
    /// One-line description of the adversarial setup.
    pub description: String,
    /// True when every invariant held.
    pub passed: bool,
    /// Invariant violations, empty when `passed`.
    pub failures: Vec<String>,
    /// Names of the invariants that were checked.
    pub invariants: Vec<String>,
    /// Transactions the observer committed.
    pub committed_txs: u64,
    /// Preplayed blocks validation discarded.
    pub invalid_blocks: u64,
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
    /// Messages dropped by faults (the campaign's loss metric).
    pub msgs_dropped: u64,
    /// Scheduled faults that fired.
    pub faults_applied: u64,
    /// Scheduled faults the run never reached (must be 0 in a passing
    /// scenario that checks [`FaultsAllApplied`]).
    pub faults_unapplied: u64,
    /// Committed transactions per simulated second.
    pub throughput_tps: f64,
    /// The observer's FNV-1a commit-order digest.
    pub commit_order_digest: String,
}

/// Runs every scenario in order, returning one result row each.
pub fn run_campaign(scenarios: Vec<CampaignScenario>) -> Vec<ScenarioResult> {
    scenarios.into_iter().map(CampaignScenario::run).collect()
}

/// The standard adversarial scenario list at the given profile. Every
/// scenario asserts honest-replica agreement; each adds the liveness and
/// fault-specific invariants that make its adversary meaningful.
pub fn default_campaign(profile: CampaignProfile) -> Vec<CampaignScenario> {
    let p = profile;
    let base = move |n: u32, rounds: u64, seed: u64, cross: f64| {
        ScenarioBuilder::new(n)
            .executors(p.executors, p.batch)
            .validators(p.executors)
            .rounds(rounds)
            .seed(seed)
            .latency(LatencyModel::Fixed { micros: 200 })
            .tune(|system| system.ce = system.ce.without_synthetic_cost())
            .workload(SmallBankConfig {
                accounts: p.accounts,
                n_shards: n,
                cross_shard_fraction: cross,
                ..SmallBankConfig::default()
            })
    };
    vec![
        CampaignScenario::new(
            "byz-tamper-writes",
            "replica 3 corrupts the declared write sets of its preplayed blocks",
            move || {
                base(4, p.rounds, 11, 0.1)
                    .byzantine(ReplicaId::new(3), ByzantineBehavior::TamperWrites)
            },
        )
        .faulty([3])
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(InvalidBlocksDetected),
        CampaignScenario::new(
            "byz-equivocate",
            "replica 3 sends conflicting (header, block) pairs for every round",
            move || {
                base(4, p.rounds, 12, 0.1)
                    .byzantine(ReplicaId::new(3), ByzantineBehavior::Equivocate)
            },
        )
        .faulty([3])
        .invariant(Liveness {
            min_round_commits: 1,
        }),
        CampaignScenario::new(
            "byz-overfull-wrong-shard",
            "replica 3 preplays cross-shard transactions and overfills its blocks (P1 violation)",
            move || {
                base(4, p.rounds, 13, 0.3)
                    .byzantine(ReplicaId::new(3), ByzantineBehavior::OverfullWrongShard)
            },
        )
        .faulty([3])
        .invariant(Liveness {
            min_round_commits: 1,
        }),
        CampaignScenario::new(
            "partition-heal",
            "replica 2's outbound links to replicas 0 and 1 are cut from the start and heal mid-run",
            move || {
                // The partition starts at t=0: the DAG has no retransmission,
                // so a vertex certified *before* the cut but delivered to only
                // part of the committee would wedge the rest behind a parent
                // they can never fetch. Cutting before replica 2 can certify
                // anything keeps the scenario about healing, not recovery.
                base(4, p.rounds, 14, 0.1).faults(FaultPlan::asymmetric_partition(
                    &[ReplicaId::new(2)],
                    &[ReplicaId::new(0), ReplicaId::new(1)],
                    SimTime::ZERO,
                    SimTime::from_millis(3),
                ))
            },
        )
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(MessageLossObserved)
        .invariant(FaultsAllApplied),
        CampaignScenario::new(
            "wan-tail",
            "cross-continent base latency with a heavy jitter tail",
            move || {
                base(4, p.rounds, 15, 0.1).latency(LatencyModel::Jittered {
                    base_micros: 75_000,
                    jitter_micros: 70_000,
                })
            },
        )
        .invariant(Liveness {
            min_round_commits: 1,
        }),
        CampaignScenario::new(
            "crash-two-of-seven",
            "two of seven replicas (f = 2) crash at the start",
            move || {
                base(7, p.rounds, 16, 0.1).faults(FaultPlan::crash_replicas(7, 2, SimTime::ZERO))
            },
        )
        .faulty([5, 6])
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(MessageLossObserved)
        .invariant(FaultsAllApplied),
        CampaignScenario::new(
            "censor-reconfig",
            "replica 2 censors from the start; the K-silence rule must rotate shards",
            move || {
                base(4, p.reconfig_rounds, 17, 0.0)
                    .reconfig(ReconfigConfig::new(3, 1_000))
                    .faults(FaultPlan::silence_from_start(ReplicaId::new(2)))
            },
        )
        .faulty([2])
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(ReconfigurationCompletes { min: 1 })
        .invariant(MessageLossObserved)
        .invariant(FaultsAllApplied),
        CampaignScenario::new(
            "crash-under-reconfig",
            "periodic K' rotation under load while replica 3 crashes mid-run",
            move || {
                let mut faults = FaultPlan::none();
                faults.push(
                    SimTime::from_micros(800),
                    tb_network::FaultAction::Crash(ReplicaId::new(3)),
                );
                base(4, p.reconfig_rounds, 18, 0.0)
                    .reconfig(ReconfigConfig::new(4, 6))
                    .faults(faults)
            },
        )
        .faulty([3])
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(ReconfigurationCompletes { min: 1 })
        .invariant(FaultsAllApplied),
        CampaignScenario::new(
            "soak-open-loop",
            "long fault-free open-loop run under LAN jitter",
            move || base(4, p.soak_rounds, 19, 0.1).latency(LatencyModel::lan()),
        )
        .invariant(Liveness {
            min_round_commits: (p.soak_rounds / 4).max(1) as usize,
        }),
        {
            let data_dir = Arc::new(
                TempDir::new("campaign-durable")
                    .expect("scoped data dir for the durable-recovery scenario"),
            );
            let storage = StorageConfig {
                backend: StorageBackend::Wal,
                data_dir: data_dir.path().display().to_string(),
                // Small thresholds so a smoke-sized run still exercises
                // buffering, flushing AND snapshot compaction.
                compact_wal_bytes: 64 * 1024,
                flush_buffered_writes: 64,
            };
            let builder_storage = storage.clone();
            CampaignScenario::new(
                "crash-recover-durable",
                "all replicas run the WAL backend; replica 3 crashes mid-run and every \
                 on-disk state must replay to exactly its pre-crash state",
                move || {
                    // Commit timing is busy-inflated (measured execution
                    // time feeds simulated time), so a hardcoded crash time
                    // is brittle on loaded runners: the crash must land
                    // after replica 3's first commit but before the run
                    // ends. A fault-free in-memory twin of the same
                    // scenario, run on the same machine moments earlier,
                    // yields replica 3's actual commit window; the crash is
                    // scheduled at its midpoint.
                    let mut probe = base(4, p.reconfig_rounds, 20, 0.1).build();
                    probe.run();
                    let commits = &probe
                        .replica(ReplicaId::new(3))
                        .metrics()
                        .round_commits;
                    let first = commits
                        .first()
                        .map_or(SimTime::from_millis(4), |s| s.committed_at);
                    let last = commits
                        .last()
                        .map_or(SimTime::from_millis(40), |s| s.committed_at);
                    let crash_at =
                        SimTime::from_micros((first.as_micros() + last.as_micros()) / 2);
                    let mut faults = FaultPlan::none();
                    faults.push(
                        crash_at,
                        tb_network::FaultAction::Crash(ReplicaId::new(3)),
                    );
                    base(4, p.reconfig_rounds, 20, 0.1)
                        .storage(builder_storage)
                        .faults(faults)
                },
            )
            .faulty([3])
            .invariant(Liveness {
                min_round_commits: 1,
            })
            .invariant(FaultsAllApplied)
            .invariant(DurableRecovery { data_dir, storage })
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ExecutionMode;

    fn tiny(n: u32, rounds: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(n)
            .engine(ExecutionMode::Thunderbolt)
            .executors(2, 32)
            .validators(2)
            .rounds(rounds)
            .latency(LatencyModel::Fixed { micros: 100 })
            .tune(|system| system.ce = system.ce.without_synthetic_cost())
            .workload(SmallBankConfig {
                accounts: 64,
                n_shards: n,
                cross_shard_fraction: 0.1,
                ..SmallBankConfig::default()
            })
    }

    #[test]
    fn clean_run_satisfies_agreement_and_liveness() {
        let result = CampaignScenario::new("clean", "no faults", || tiny(4, 8))
            .invariant(Liveness {
                min_round_commits: 1,
            })
            .run();
        assert!(result.passed, "failures: {:?}", result.failures);
        assert!(result.committed_txs > 0);
        assert_eq!(result.faults_unapplied, 0);
        assert_eq!(
            result.invariants,
            vec!["honest-agreement", "liveness"],
            "agreement is pre-installed, liveness added"
        );
    }

    #[test]
    fn impossible_invariant_marks_the_scenario_failed() {
        let result =
            CampaignScenario::new("doomed", "asks for more commits than the budget", || {
                tiny(4, 8)
            })
            .invariant(Liveness {
                min_round_commits: 10_000,
            })
            .run();
        assert!(!result.passed);
        assert_eq!(result.failures.len(), 1);
        assert!(
            result.failures[0].starts_with("liveness:"),
            "{:?}",
            result.failures
        );
    }

    #[test]
    fn unapplied_faults_fail_the_faults_all_applied_invariant() {
        let mut faults = FaultPlan::none();
        faults.push(
            SimTime::from_secs(3_600),
            tb_network::FaultAction::Crash(ReplicaId::new(3)),
        );
        let result =
            CampaignScenario::new("outlived", "fault schedule outlives the run", move || {
                tiny(4, 8).faults(faults)
            })
            .invariant(FaultsAllApplied)
            .run();
        assert!(!result.passed);
        assert_eq!(result.faults_unapplied, 1);
        assert!(
            result
                .failures
                .iter()
                .any(|f| f.starts_with("faults-all-applied:")),
            "{:?}",
            result.failures
        );
    }

    #[test]
    fn tampering_proposer_is_detected_and_tolerated() {
        let result = CampaignScenario::new("tamper", "byzantine writes", || {
            tiny(4, 8).byzantine(ReplicaId::new(3), ByzantineBehavior::TamperWrites)
        })
        .faulty([3])
        .invariant(Liveness {
            min_round_commits: 1,
        })
        .invariant(InvalidBlocksDetected)
        .run();
        assert!(result.passed, "failures: {:?}", result.failures);
        assert!(result.invalid_blocks > 0);
    }

    #[test]
    fn default_campaign_lists_the_documented_scenarios() {
        let scenarios = default_campaign(CampaignProfile::smoke());
        assert!(
            scenarios.len() >= 6,
            "need at least six adversarial scenarios"
        );
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        for expected in [
            "byz-tamper-writes",
            "byz-equivocate",
            "byz-overfull-wrong-shard",
            "partition-heal",
            "wan-tail",
            "crash-two-of-seven",
            "censor-reconfig",
            "crash-under-reconfig",
            "soak-open-loop",
            "crash-recover-durable",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
    }
}
