//! The post-consensus commit pipeline.
//!
//! When the committer delivers a leader's causal history, every replica runs
//! the same pipeline (Figure 3, steps 3–4, and the G1/G2 ordering rules of
//! Section 5.1):
//!
//! 1. **Single-shard first (G1).** The preplayed single-shard payloads of the
//!    delivered blocks are validated in parallel against the read/write sets
//!    they declare; valid payloads are applied to storage in their serialized
//!    order. Invalid blocks are discarded (their transactions are simply not
//!    applied — a Byzantine proposer can only hurt its own shard).
//! 2. **Cross-shard second (G2).** The cross-shard transactions of the same
//!    delivered sub-DAG are executed deterministically in `(round, author,
//!    position)` order. Execution is parallelised QueCC-style: transactions
//!    whose declared shard sets are disjoint run concurrently, conflicting
//!    ones run in waves.

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tb_contracts::{execute_call, StateAccess, TrackingState};
use tb_dag::CommittedSubDag;
use tb_executor::effective_workers;
use tb_executor::validation::{validate_block, ValidationConfig};
use tb_storage::{KvRead, Store, Versioned, WriteBatch};
use tb_types::{BlockKind, Key, PreplayedTx, ShardId, SimTime, Transaction, TxId, Value};

/// How the pipeline executes transactions after consensus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostCommitExecution {
    /// Thunderbolt: validate preplayed single-shard results in parallel,
    /// execute cross-shard transactions with shard-level parallelism. The
    /// stages run strictly one after the other: every block is validated and
    /// applied before the next block is looked at.
    Parallel {
        /// Number of validator / executor workers.
        workers: usize,
    },
    /// Thunderbolt with the staged commit pipeline: the validation worker
    /// pool re-executes block N+1 while earlier blocks' write batches sit in
    /// a bounded queue drained by a dedicated applier thread, which
    /// coalesces everything queued into one stripe-coalesced
    /// [`Store::apply_batches`] call per wake-up. Commit order, applied
    /// state, the commit-order digest and all commit statistics except the
    /// stage timings, `coalesced_batches` and `apply_calls` are identical to
    /// [`Parallel`] (and to [`Serial`]); only the wall-clock overlap and the
    /// apply granularity differ. Pinned by
    /// `crates/core/tests/pipeline_determinism.rs`.
    ///
    /// [`Parallel`]: PostCommitExecution::Parallel
    /// [`Serial`]: PostCommitExecution::Serial
    Pipelined {
        /// Number of validator / executor workers.
        workers: usize,
    },
    /// Tusk baseline: execute everything serially in commit order.
    Serial,
}

/// Statistics and effects of committing one batch of sub-DAGs.
#[derive(Clone, Debug, Default)]
pub struct CommitOutput {
    /// Transactions whose effects were applied, with their commit time.
    pub committed: Vec<(TxId, SimTime)>,
    /// Summed latency (commit time − submission time) over the committed
    /// transactions, in seconds of simulated time.
    pub total_latency_secs: f64,
    /// Number of committed cross-shard transactions.
    pub cross_shard_committed: usize,
    /// Number of committed single-shard (preplayed) transactions.
    pub single_shard_committed: usize,
    /// Number of preplayed blocks that failed validation and were discarded.
    pub invalid_blocks: usize,
    /// Number of Shift blocks delivered (input to the reconfiguration rule).
    pub shift_blocks: usize,
    /// Authors of the delivered Shift blocks.
    pub shift_authors: Vec<tb_types::ReplicaId>,
    /// Wall-clock time spent validating and executing, which the cluster
    /// driver charges to the replica's simulated clock. With the pipelined
    /// path this is the *overlapped* wall-clock time, which is why pipelining
    /// shows up as throughput in the cluster simulation.
    pub busy: std::time::Duration,
    /// Wall-clock time the validation stage was busy re-executing preplayed
    /// blocks.
    pub stage_validate: Duration,
    /// Wall-clock time the apply stage was busy draining write batches to
    /// storage.
    pub stage_apply: Duration,
    /// Wall-clock time the cross-shard execution stage was busy.
    pub stage_execute: Duration,
    /// Number of write batches the applier drained in one
    /// [`Store::apply_batches`] call together with at least one other batch
    /// (a measure of how often the pipeline actually coalesced). Always 0 on
    /// the staged and serial paths, which apply one batch at a time.
    pub coalesced_batches: u64,
    /// Number of storage apply calls the commit path performed: one
    /// [`Store::apply_batch`] per valid block on the staged/serial paths,
    /// one [`Store::apply_batches`] drain per applier wake-up on the
    /// pipelined path. `apply_calls` strictly below the number of valid
    /// blocks is direct evidence that batches were coalesced.
    pub apply_calls: u64,
    /// Per-transaction commit latencies in seconds of simulated time,
    /// parallel to `committed`.
    pub latency_samples_secs: Vec<f64>,
}

impl CommitOutput {
    /// Number of transactions committed in total.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }
}

/// The commit pipeline of one replica.
#[derive(Clone, Debug)]
pub struct CommitPipeline {
    execution: PostCommitExecution,
    validation: ValidationConfig,
    op_cost_ns: u64,
}

impl CommitPipeline {
    /// Creates a pipeline with no synthetic per-operation cost.
    pub fn new(execution: PostCommitExecution) -> Self {
        Self::with_op_cost(execution, 0)
    }

    /// Creates a pipeline that charges `op_cost_ns` of synthetic work per
    /// state operation during validation and post-consensus execution,
    /// matching the cost model used during preplay.
    pub fn with_op_cost(execution: PostCommitExecution, op_cost_ns: u64) -> Self {
        let mut validation = match execution {
            PostCommitExecution::Parallel { workers }
            | PostCommitExecution::Pipelined { workers } => {
                ValidationConfig::new(effective_workers(workers))
            }
            PostCommitExecution::Serial => ValidationConfig::new(1),
        };
        validation.op_cost_ns = op_cost_ns;
        CommitPipeline {
            execution,
            validation,
            op_cost_ns,
        }
    }

    /// The configured execution mode.
    pub fn execution(&self) -> PostCommitExecution {
        self.execution
    }

    /// Processes one delivered sub-DAG against `store`, applying effects and
    /// returning the commit statistics.
    ///
    /// # Determinism
    ///
    /// For a given `(sub_dag, store, commit_time)` the committed transaction
    /// sequence, the applied state and every commit counter except the
    /// wall-clock stage timings, `coalesced_batches` and `apply_calls` are
    /// identical across all three [`PostCommitExecution`] modes and any
    /// worker count — the execution mode is a pure wall-clock/granularity
    /// choice, never a semantic one.
    ///
    /// # Panics
    ///
    /// Never panics on malformed, tampered or Byzantine block contents —
    /// those surface as `invalid_blocks`. A panic inside a worker or applier
    /// thread (a bug, not an input condition) propagates to the caller
    /// rather than being swallowed.
    pub fn process(
        &self,
        sub_dag: &CommittedSubDag,
        store: &dyn Store,
        commit_time: SimTime,
    ) -> CommitOutput {
        let started = Instant::now();
        let mut output = CommitOutput::default();

        // Gather payloads in delivery order.
        let mut preplayed_blocks: Vec<&[PreplayedTx]> = Vec::new();
        let mut cross_shard: Vec<&Transaction> = Vec::new();
        for vertex in &sub_dag.vertices {
            match vertex.block.kind {
                BlockKind::Shift => {
                    output.shift_blocks += 1;
                    output.shift_authors.push(vertex.author());
                    continue;
                }
                BlockKind::Skip | BlockKind::Normal => {}
            }
            if !vertex.block.payload.single_shard.is_empty() {
                preplayed_blocks.push(&vertex.block.payload.single_shard);
            }
            cross_shard.extend(vertex.block.payload.cross_shard.iter());
        }

        // G1: single-shard (preplayed) transactions first. The pipelined
        // path only pays its thread overhead when there is actual overlap to
        // exploit (at least two blocks).
        match self.execution {
            PostCommitExecution::Pipelined { .. } if preplayed_blocks.len() > 1 => {
                self.commit_preplayed_pipelined(&preplayed_blocks, store, commit_time, &mut output);
            }
            _ => {
                self.commit_preplayed_staged(&preplayed_blocks, store, commit_time, &mut output);
            }
        }

        // G2: cross-shard transactions afterwards, in a deterministic order.
        let execute_started = Instant::now();
        match self.execution {
            PostCommitExecution::Serial => {
                for tx in &cross_shard {
                    Self::execute_one(tx, store, self.op_cost_ns);
                    record_commit(&mut output, tx.id, tx.submitted_at, commit_time);
                }
            }
            PostCommitExecution::Parallel { workers }
            | PostCommitExecution::Pipelined { workers } => {
                for wave in shard_disjoint_waves(&cross_shard) {
                    execute_wave(&wave, store, workers, self.op_cost_ns);
                    for tx in wave {
                        record_commit(&mut output, tx.id, tx.submitted_at, commit_time);
                    }
                }
            }
        }
        output.stage_execute += execute_started.elapsed();
        output.cross_shard_committed += cross_shard.len();
        output.busy = started.elapsed();
        output
    }

    /// The strictly staged G1 path: validate a block, apply its write batch,
    /// move on to the next block.
    fn commit_preplayed_staged(
        &self,
        blocks: &[&[PreplayedTx]],
        store: &dyn Store,
        commit_time: SimTime,
        output: &mut CommitOutput,
    ) {
        for block in blocks {
            let validate_started = Instant::now();
            let report = validate_block(block, store, &self.validation);
            output.stage_validate += validate_started.elapsed();
            if !report.is_valid() {
                output.invalid_blocks += 1;
                continue;
            }
            let (batch, ordered) = ordered_write_batch(block);
            let apply_started = Instant::now();
            store.apply_batch(&batch);
            output.stage_apply += apply_started.elapsed();
            output.apply_calls += 1;
            for p in ordered {
                record_commit(output, p.tx.id, p.tx.submitted_at, commit_time);
            }
            output.single_shard_committed += block.len();
        }
    }

    /// The pipelined G1 path: the calling thread validates block N+1 while a
    /// dedicated applier thread drains validated write batches to storage,
    /// coalescing everything that queued up into one
    /// [`Store::apply_batches`] call per wake-up (see [`ApplyQueue`]).
    ///
    /// Validation of block N+1 must observe block N's writes (consecutive
    /// blocks from the same shard proposer chain on each other), so the
    /// validator keeps the union of all sent-but-possibly-unapplied write
    /// batches as an overlay and reads through it. A key present in the
    /// overlay never reaches the store from the validation read path, which
    /// is what makes the concurrent (and now deliberately deferred) apply
    /// safe: the applier only ever writes keys that are in the overlay, and
    /// the overlay always carries the final value and post-apply version of
    /// every in-flight key.
    ///
    /// # Panics
    ///
    /// If the applier thread panics (only possible through a panicking
    /// store backend — the queue logic itself never panics, and a durable
    /// backend panics when it loses its log), the panic is re-raised here
    /// when the scope joins.
    fn commit_preplayed_pipelined(
        &self,
        blocks: &[&[PreplayedTx]],
        store: &dyn Store,
        commit_time: SimTime,
        output: &mut CommitOutput,
    ) {
        let queue = ApplyQueue::new();
        let mut overlay: HashMap<Key, Versioned> = HashMap::new();
        let stats = std::thread::scope(|scope| {
            let applier = scope.spawn(|| queue.drain_loop(store));

            for block in blocks {
                let validate_started = Instant::now();
                let view = PendingApplyView {
                    store,
                    overlay: &overlay,
                };
                let report = validate_block(block, &view, &self.validation);
                output.stage_validate += validate_started.elapsed();
                if !report.is_valid() {
                    output.invalid_blocks += 1;
                    continue;
                }
                let (batch, ordered) = ordered_write_batch(block);
                // Extend the overlay *before* handing the batch to the
                // applier so the next block's validation reads never race
                // with the concurrent apply. Pending entries carry the
                // version the key will have once its batches are applied: a
                // key absent from the overlay is in no in-flight batch, so
                // the store's version is stable and the read is race-free.
                for (key, value) in batch.iter() {
                    match overlay.get_mut(key) {
                        Some(pending) => {
                            pending.version += 1;
                            pending.value = value.clone();
                        }
                        None => {
                            let base = store.get_versioned(key);
                            overlay.insert(*key, Versioned::new(value.clone(), base.version + 1));
                        }
                    }
                }
                queue.push(batch);
                for p in ordered {
                    record_commit(output, p.tx.id, p.tx.submitted_at, commit_time);
                }
                output.single_shard_committed += block.len();
            }
            queue.close();
            applier.join().expect("applier thread never panics")
        });
        output.stage_apply += stats.busy;
        output.coalesced_batches += stats.coalesced;
        output.apply_calls += stats.calls;
    }

    /// Executes a single transaction directly against the store (the OE
    /// path: order first, execute after).
    fn execute_one(tx: &Transaction, store: &dyn Store, op_cost_ns: u64) {
        let mut session = StoreSession { store, op_cost_ns };
        let mut tracking = TrackingState::new(&mut session);
        let _ = execute_call(&tx.call, &mut tracking);
    }
}

/// Records one committed transaction in the output: commit entry, summed
/// latency, per-transaction latency sample.
fn record_commit(output: &mut CommitOutput, id: TxId, submitted_at: SimTime, commit_time: SimTime) {
    let latency = commit_time.saturating_since(submitted_at).as_secs_f64();
    output.committed.push((id, commit_time));
    output.total_latency_secs += latency;
    output.latency_samples_secs.push(latency);
}

/// Builds the write batch of a validated block in its serialized order
/// (later transactions overwrite earlier ones) and returns the transactions
/// sorted by that order.
fn ordered_write_batch(block: &[PreplayedTx]) -> (WriteBatch, Vec<&PreplayedTx>) {
    let mut ordered: Vec<&PreplayedTx> = block.iter().collect();
    ordered.sort_by_key(|p| p.order);
    let mut batch = WriteBatch::new();
    for p in &ordered {
        batch.extend_from_write_set(&p.outcome.write_set);
    }
    (batch, ordered)
}

/// Maximum number of validated-but-unapplied write batches the pipelined
/// path buffers before the validator blocks (backpressure): the queue bounds
/// the memory held in flight and the distance the validator can run ahead of
/// storage.
const APPLY_QUEUE_CAPACITY: usize = 8;

/// Number of queued batches the applier waits for before draining. The old
/// one-batch mpsc handoff woke the applier per batch; because a `MemStore`
/// apply is far cheaper than validating the next block, the applier always
/// kept up and [`Store::apply_batches`] never saw more than one batch — the
/// `coalesced_batches: 0` pathology pinned by
/// `crates/core/tests/coalescing_regression.rs`. Waiting for a second batch
/// (or queue close, whichever comes first) makes every drain a real
/// multi-batch coalesce whenever the sub-DAG has two or more valid blocks,
/// deterministically on any scheduler — including a single hardware thread.
const COALESCE_TARGET: usize = 2;

/// What the applier thread measured while draining its queue.
#[derive(Default)]
struct ApplierStats {
    /// Wall-clock time spent inside [`Store::apply_batches`].
    busy: Duration,
    /// Batches drained together with at least one other batch.
    coalesced: u64,
    /// Number of [`Store::apply_batches`] drains.
    calls: u64,
}

/// Bounded drain-on-wake handoff between the pipelined validator and its
/// applier thread (the Bε-tree idea of buffering updates and applying them
/// in batches, applied to the commit path).
///
/// The validator [`push`es](ApplyQueue::push) one write batch per validated
/// block and blocks only when [`APPLY_QUEUE_CAPACITY`] batches are in
/// flight. The applier sleeps until [`COALESCE_TARGET`] batches are queued
/// (or the queue is closed), then drains *everything* queued into a single
/// [`Store::apply_batches`] call. Batches are drained in push order, so the
/// per-key write order of [`ordered_write_batch`] is preserved end to end.
struct ApplyQueue {
    state: Mutex<ApplyQueueState>,
    /// Signalled by the applier when capacity frees up.
    space: Condvar,
    /// Signalled by the validator when a drain is worth waking up for.
    ready: Condvar,
}

struct ApplyQueueState {
    batches: Vec<WriteBatch>,
    closed: bool,
}

impl ApplyQueue {
    fn new() -> Self {
        ApplyQueue {
            state: Mutex::new(ApplyQueueState {
                batches: Vec::new(),
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one validated batch, blocking while the queue is full. Wakes
    /// the applier once at least [`COALESCE_TARGET`] batches are queued.
    fn push(&self, batch: WriteBatch) {
        let mut state = self.state.lock().expect("apply queue lock poisoned");
        while state.batches.len() >= APPLY_QUEUE_CAPACITY {
            state = self.space.wait(state).expect("apply queue lock poisoned");
        }
        state.batches.push(batch);
        if state.batches.len() >= COALESCE_TARGET {
            self.ready.notify_one();
        }
    }

    /// Marks the producer side finished; the applier flushes whatever is
    /// still queued (possibly a single batch) and exits.
    fn close(&self) {
        let mut state = self.state.lock().expect("apply queue lock poisoned");
        state.closed = true;
        self.ready.notify_one();
    }

    /// The applier thread body: sleep until a drain is due, swap the whole
    /// queue out under the lock, apply it outside the lock, repeat until the
    /// queue is closed and empty.
    fn drain_loop(&self, store: &dyn Store) -> ApplierStats {
        let mut stats = ApplierStats::default();
        loop {
            let drained = {
                let mut state = self.state.lock().expect("apply queue lock poisoned");
                while !state.closed && state.batches.len() < COALESCE_TARGET {
                    state = self.ready.wait(state).expect("apply queue lock poisoned");
                }
                if state.batches.is_empty() {
                    debug_assert!(state.closed, "woke with an empty, open queue");
                    return stats;
                }
                std::mem::take(&mut state.batches)
            };
            self.space.notify_all();
            let apply_started = Instant::now();
            store.apply_batches(&drained);
            stats.busy += apply_started.elapsed();
            stats.calls += 1;
            if drained.len() > 1 {
                stats.coalesced += drained.len() as u64;
            }
        }
    }
}

/// Committed storage plus the write batches the pipelined committer has
/// already handed to the applier thread. Reads prefer the overlay, so a key
/// whose batch is still in flight never reaches the store from the
/// validation path (see [`CommitPipeline::commit_preplayed_pipelined`]).
struct PendingApplyView<'a> {
    store: &'a dyn Store,
    overlay: &'a HashMap<Key, Versioned>,
}

impl KvRead for PendingApplyView<'_> {
    fn get(&self, key: &Key) -> Value {
        match self.overlay.get(key) {
            Some(pending) => pending.value.clone(),
            None => self.store.get(key),
        }
    }

    fn get_versioned(&self, key: &Key) -> Versioned {
        // Overlay entries already carry the post-apply version (maintained
        // by the validator), so this never reads the store for a key the
        // applier might be writing concurrently.
        match self.overlay.get(key) {
            Some(pending) => pending.clone(),
            None => self.store.get_versioned(key),
        }
    }
}

/// Groups cross-shard transactions into waves whose declared shard sets are
/// pairwise disjoint. Transactions within one wave can execute concurrently
/// without conflicting, because keys never cross shards; waves execute in
/// order, preserving the deterministic total order.
fn shard_disjoint_waves<'a>(txs: &[&'a Transaction]) -> Vec<Vec<&'a Transaction>> {
    let mut waves: Vec<(HashSet<ShardId>, Vec<&Transaction>)> = Vec::new();
    for tx in txs {
        let shards: HashSet<ShardId> = tx.shards.iter().copied().collect();
        // A transaction can only join the *last* wave (otherwise it would
        // overtake a conflicting transaction in an earlier wave), and only if
        // it does not conflict with anything in it.
        let fits_last = waves
            .last()
            .map(|(used, _)| used.is_disjoint(&shards))
            .unwrap_or(false);
        if fits_last {
            let (used, wave) = waves.last_mut().expect("checked non-empty");
            used.extend(shards);
            wave.push(tx);
        } else {
            waves.push((shards, vec![tx]));
        }
    }
    waves.into_iter().map(|(_, wave)| wave).collect()
}

/// Executes one wave of shard-disjoint transactions with up to `workers`
/// threads.
fn execute_wave(wave: &[&Transaction], store: &dyn Store, workers: usize, op_cost_ns: u64) {
    let workers = effective_workers(workers);
    if wave.len() <= 1 || workers <= 1 {
        for tx in wave {
            CommitPipeline::execute_one(tx, store, op_cost_ns);
        }
        return;
    }
    let chunk = wave.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for slice in wave.chunks(chunk) {
            scope.spawn(move || {
                for tx in slice {
                    CommitPipeline::execute_one(tx, store, op_cost_ns);
                }
            });
        }
    });
}

/// Direct store access used for cross-shard (OE) execution.
struct StoreSession<'a> {
    store: &'a dyn Store,
    op_cost_ns: u64,
}

impl StateAccess for StoreSession<'_> {
    fn read(&mut self, key: tb_types::Key) -> Result<Value, tb_contracts::ExecError> {
        tb_executor::traits::synthetic_work(self.op_cost_ns);
        Ok(self.store.get(&key))
    }

    fn write(&mut self, key: tb_types::Key, value: Value) -> Result<(), tb_contracts::ExecError> {
        tb_executor::traits::synthetic_work(self.op_cost_ns);
        self.store.put(key, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_dag::DagBuilder;
    use tb_executor::ConcurrentExecutor;
    use tb_storage::{KvWrite, MemStore};
    use tb_types::{
        BlockPayload, CeConfig, ClientId, Committee, ContractCall, DagId, Key, ReplicaId, Round,
        SmallBankProcedure,
    };

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    fn payment(id: u64, from: u64, to: u64, amount: i64, n_shards: u32) -> Transaction {
        Transaction::new(
            tb_types::TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            n_shards,
            SimTime::ZERO,
        )
    }

    fn sub_dag_with(
        committee: Committee,
        preplayed: Vec<PreplayedTx>,
        cross_shard: Vec<Transaction>,
        shift_authors: &[u32],
    ) -> CommittedSubDag {
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let mut vertices = Vec::new();
        // Round 0: one block with the preplayed payload, one with the
        // cross-shard payload, plus any shift blocks, authored by distinct
        // replicas.
        let mut author = 0u32;
        let mut push = |kind: BlockKind, payload: BlockPayload, builder: &mut DagBuilder| {
            let v = builder.make_vertex(ReplicaId::new(author), Round::ZERO, kind, payload, vec![]);
            author += 1;
            v
        };
        vertices.push(push(
            BlockKind::Normal,
            BlockPayload {
                single_shard: preplayed,
                cross_shard: vec![],
            },
            &mut builder,
        ));
        vertices.push(push(
            BlockKind::Normal,
            BlockPayload {
                single_shard: vec![],
                cross_shard,
            },
            &mut builder,
        ));
        for _ in shift_authors {
            vertices.push(push(BlockKind::Shift, BlockPayload::empty(), &mut builder));
        }
        let leader = vertices.last().expect("at least one vertex").clone();
        CommittedSubDag {
            leader,
            leader_round: Round::new(1),
            vertices,
        }
    }

    #[test]
    fn valid_preplay_is_applied_in_serialized_order() {
        let committee = Committee::new(4);
        let store = funded_store(8);
        let txs = vec![payment(1, 0, 4, 10, 1), payment(2, 4, 0, 3, 1)];
        let ce = ConcurrentExecutor::new(CeConfig::new(2, 16).without_synthetic_cost());
        let preplay = ce.preplay(&txs, &store);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 4 });
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(2));
        assert_eq!(output.single_shard_committed, 2);
        assert_eq!(output.invalid_blocks, 0);
        assert_eq!(output.committed_count(), 2);
        assert!(output.total_latency_secs > 0.0);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 10 + 3)
        );
        assert_eq!(
            store.get(&Key::checking(4)),
            Value::int(SMALLBANK_DEFAULT_BALANCE + 10 - 3)
        );
    }

    #[test]
    fn tampered_preplay_blocks_are_discarded_entirely() {
        let committee = Committee::new(4);
        let store = funded_store(4);
        let txs = vec![payment(1, 0, 1, 10, 1)];
        let ce = ConcurrentExecutor::new(CeConfig::new(1, 16).without_synthetic_cost());
        let mut preplay = ce.preplay(&txs, &store);
        preplay.preplayed[0].outcome.write_set[0].value = Value::int(77_777);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let before = store.snapshot();
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        assert_eq!(output.invalid_blocks, 1);
        assert_eq!(output.committed_count(), 0);
        assert!(store.snapshot().diff_values(&before).is_empty());
    }

    #[test]
    fn cross_shard_transactions_execute_after_single_shard_ones() {
        // The single-shard payload pays account 0 -> 4 (same shard of 4);
        // the cross-shard transaction then moves the money on to account 1.
        // If the order were reversed, account 1 would receive less.
        let committee = Committee::new(4);
        let store = funded_store(8);
        // empty account 1's checking first so the effect is visible
        store.put(Key::checking(1), Value::int(0));
        store.put(Key::checking(0), Value::int(0));
        let single = payment(1, 4, 0, 500, 1); // both map to shard 0 of 4
        let ce = ConcurrentExecutor::new(CeConfig::new(1, 16).without_synthetic_cost());
        let preplay = ce.preplay(std::slice::from_ref(&single), &store);
        let cross = payment(2, 0, 1, 400, 4);
        assert_eq!(cross.shards.len(), 2);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![cross], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        assert_eq!(output.single_shard_committed, 1);
        assert_eq!(output.cross_shard_committed, 1);
        // Account 0 received 500 from the preplay, then sent 400 on.
        assert_eq!(store.get(&Key::checking(0)), Value::int(100));
        assert_eq!(store.get(&Key::checking(1)), Value::int(400));
    }

    #[test]
    fn serial_mode_produces_the_same_state_as_parallel_mode() {
        let committee = Committee::new(4);
        let store_parallel = funded_store(16);
        let store_serial = funded_store(16);
        let cross: Vec<Transaction> = (0..20)
            .map(|i| payment(i, i % 16, (i + 5) % 16, 7, 4))
            .collect();
        let sub_dag = sub_dag_with(committee, vec![], cross, &[]);
        let parallel = CommitPipeline::new(PostCommitExecution::Parallel { workers: 4 });
        let serial = CommitPipeline::new(PostCommitExecution::Serial);
        parallel.process(&sub_dag, &store_parallel, SimTime::ZERO);
        serial.process(&sub_dag, &store_serial, SimTime::ZERO);
        let diff = store_parallel
            .snapshot()
            .diff_values(&store_serial.snapshot());
        assert!(diff.is_empty(), "parallel and serial disagree on {diff:?}");
    }

    #[test]
    fn shift_blocks_are_counted_not_executed() {
        let committee = Committee::new(4);
        let store = funded_store(4);
        let sub_dag = sub_dag_with(committee, vec![], vec![], &[2, 3]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let output = pipeline.process(&sub_dag, &store, SimTime::ZERO);
        assert_eq!(output.shift_blocks, 2);
        assert_eq!(output.shift_authors.len(), 2);
        assert_eq!(output.committed_count(), 0);
    }

    /// Builds one sub-DAG whose vertices carry one preplayed block each, in
    /// delivery order — the shape the pipelined G1 path overlaps on.
    fn sub_dag_with_blocks(committee: Committee, blocks: Vec<Vec<PreplayedTx>>) -> CommittedSubDag {
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let mut vertices = Vec::new();
        for (author, block) in blocks.into_iter().enumerate() {
            let payload = BlockPayload {
                single_shard: block,
                cross_shard: vec![],
            };
            vertices.push(builder.make_vertex(
                ReplicaId::new(author as u32),
                Round::ZERO,
                BlockKind::Normal,
                payload,
                vec![],
            ));
        }
        let leader = vertices.last().expect("at least one vertex").clone();
        CommittedSubDag {
            leader,
            leader_round: Round::new(1),
            vertices,
        }
    }

    /// Preplays `rounds` consecutive SmallBank payment blocks, each chained
    /// on the previous block's writes (the proposer-overlay situation the
    /// pipelined validator must reproduce with its pending-apply overlay).
    fn chained_blocks(accounts: u64, rounds: usize, per_block: usize) -> Vec<Vec<PreplayedTx>> {
        let scratch = funded_store(accounts);
        let ce = ConcurrentExecutor::new(CeConfig::new(2, 64).without_synthetic_cost());
        let mut blocks = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..rounds {
            let txs: Vec<Transaction> = (0..per_block)
                .map(|i| {
                    next_id += 1;
                    // Hot keys: every block touches account 0, so consecutive
                    // blocks genuinely depend on each other.
                    payment(next_id, 0, ((i as u64) % (accounts / 2)) * 2, 1, 1)
                })
                .collect();
            let result = ce.preplay(&txs, &scratch);
            result.apply_to(&scratch);
            blocks.push(result.preplayed);
        }
        blocks
    }

    #[test]
    fn pipelined_path_matches_staged_path_exactly() {
        let committee = Committee::new(4);
        let blocks = chained_blocks(8, 6, 10);
        let staged_store = funded_store(8);
        let pipelined_store = funded_store(8);
        let sub_dag_staged = sub_dag_with_blocks(committee, blocks.clone());
        let sub_dag_pipelined = sub_dag_with_blocks(committee, blocks);

        let staged = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let pipelined = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
        let staged_out = staged.process(&sub_dag_staged, &staged_store, SimTime::from_secs(1));
        let pipelined_out =
            pipelined.process(&sub_dag_pipelined, &pipelined_store, SimTime::from_secs(1));

        assert_eq!(staged_out.invalid_blocks, 0);
        assert_eq!(pipelined_out.invalid_blocks, 0);
        // Same transactions, in the same commit order.
        assert_eq!(staged_out.committed, pipelined_out.committed);
        assert_eq!(
            staged_out.single_shard_committed,
            pipelined_out.single_shard_committed
        );
        // Same applied state.
        let diff = staged_store
            .snapshot()
            .diff_values(&pipelined_store.snapshot());
        assert!(diff.is_empty(), "state divergence on {diff:?}");
        // The pipelined run measured both stages.
        assert!(pipelined_out.stage_validate > std::time::Duration::ZERO);
        assert!(pipelined_out.stage_apply > std::time::Duration::ZERO);
    }

    #[test]
    fn pipelined_path_discards_tampered_blocks_and_keeps_the_rest() {
        let committee = Committee::new(4);
        let mut blocks = chained_blocks(8, 4, 6);
        // Tamper the second block: its writes must not be applied and the
        // later blocks (which chain on block 1's honest writes, not block
        // 2's) keep validating exactly as in the staged path.
        blocks[1][0].outcome.write_set[0].value = Value::int(123_456_789);
        let staged_store = funded_store(8);
        let pipelined_store = funded_store(8);
        let staged = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let pipelined = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
        let staged_out = staged.process(
            &sub_dag_with_blocks(committee, blocks.clone()),
            &staged_store,
            SimTime::from_secs(1),
        );
        let pipelined_out = pipelined.process(
            &sub_dag_with_blocks(committee, blocks),
            &pipelined_store,
            SimTime::from_secs(1),
        );
        assert_eq!(staged_out.invalid_blocks, pipelined_out.invalid_blocks);
        assert_eq!(staged_out.committed, pipelined_out.committed);
        let diff = staged_store
            .snapshot()
            .diff_values(&pipelined_store.snapshot());
        assert!(diff.is_empty(), "state divergence on {diff:?}");
    }

    #[test]
    fn shard_disjoint_waves_never_split_conflicting_transactions() {
        let a = payment(1, 0, 1, 1, 4); // shards {0,1}
        let b = payment(2, 2, 3, 1, 4); // shards {2,3}
        let c = payment(3, 1, 2, 1, 4); // shards {1,2} conflicts with both
        let txs = [&a, &b, &c];
        let waves = shard_disjoint_waves(&txs);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 2, "a and b are disjoint");
        assert_eq!(waves[1].len(), 1);
        assert_eq!(waves[1][0].id, c.id);
    }

    #[test]
    fn wave_order_preserves_the_total_order_for_conflicting_transactions() {
        // c conflicts with a; even though c and b would be disjoint, c must
        // not jump into an earlier wave than a.
        let a = payment(1, 0, 1, 1, 4); // {0,1}
        let c = payment(2, 1, 2, 1, 4); // {1,2} conflicts with a
        let b = payment(3, 3, 7, 1, 4); // {3}
        let txs = [&a, &c, &b];
        let waves = shard_disjoint_waves(&txs);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0][0].id, a.id);
        assert_eq!(waves[1][0].id, c.id);
        // b joins the last open wave (with c), never an earlier one than its
        // position allows.
        assert_eq!(waves[1].len(), 2);
    }
}
