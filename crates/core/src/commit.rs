//! The post-consensus commit pipeline.
//!
//! When the committer delivers a leader's causal history, every replica runs
//! the same pipeline (Figure 3, steps 3–4, and the G1/G2 ordering rules of
//! Section 5.1):
//!
//! 1. **Single-shard first (G1).** The preplayed single-shard payloads of the
//!    delivered blocks are validated in parallel against the read/write sets
//!    they declare; valid payloads are applied to storage in their serialized
//!    order. Invalid blocks are discarded (their transactions are simply not
//!    applied — a Byzantine proposer can only hurt its own shard).
//! 2. **Cross-shard second (G2).** The cross-shard transactions of the same
//!    delivered sub-DAG are executed deterministically in `(round, author,
//!    position)` order. Execution is parallelised QueCC-style: transactions
//!    whose declared shard sets are disjoint run concurrently, conflicting
//!    ones run in waves.

use std::collections::HashSet;
use std::time::Instant;
use tb_contracts::{execute_call, StateAccess, TrackingState};
use tb_dag::CommittedSubDag;
use tb_executor::validation::{validate_block, ValidationConfig};
use tb_storage::{KvRead, KvWrite, MemStore};
use tb_types::{BlockKind, PreplayedTx, ShardId, SimTime, Transaction, TxId, Value};

/// How the pipeline executes transactions after consensus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostCommitExecution {
    /// Thunderbolt: validate preplayed single-shard results in parallel,
    /// execute cross-shard transactions with shard-level parallelism.
    Parallel {
        /// Number of validator / executor workers.
        workers: usize,
    },
    /// Tusk baseline: execute everything serially in commit order.
    Serial,
}

/// Statistics and effects of committing one batch of sub-DAGs.
#[derive(Clone, Debug, Default)]
pub struct CommitOutput {
    /// Transactions whose effects were applied, with their commit time.
    pub committed: Vec<(TxId, SimTime)>,
    /// Summed latency (commit time − submission time) over the committed
    /// transactions, in seconds of simulated time.
    pub total_latency_secs: f64,
    /// Number of committed cross-shard transactions.
    pub cross_shard_committed: usize,
    /// Number of committed single-shard (preplayed) transactions.
    pub single_shard_committed: usize,
    /// Number of preplayed blocks that failed validation and were discarded.
    pub invalid_blocks: usize,
    /// Number of Shift blocks delivered (input to the reconfiguration rule).
    pub shift_blocks: usize,
    /// Authors of the delivered Shift blocks.
    pub shift_authors: Vec<tb_types::ReplicaId>,
    /// Wall-clock time spent validating and executing, which the cluster
    /// driver charges to the replica's simulated clock.
    pub busy: std::time::Duration,
}

impl CommitOutput {
    /// Number of transactions committed in total.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }
}

/// The commit pipeline of one replica.
#[derive(Clone, Debug)]
pub struct CommitPipeline {
    execution: PostCommitExecution,
    validation: ValidationConfig,
    op_cost_ns: u64,
}

impl CommitPipeline {
    /// Creates a pipeline with no synthetic per-operation cost.
    pub fn new(execution: PostCommitExecution) -> Self {
        Self::with_op_cost(execution, 0)
    }

    /// Creates a pipeline that charges `op_cost_ns` of synthetic work per
    /// state operation during validation and post-consensus execution,
    /// matching the cost model used during preplay.
    pub fn with_op_cost(execution: PostCommitExecution, op_cost_ns: u64) -> Self {
        let mut validation = match execution {
            PostCommitExecution::Parallel { workers } => ValidationConfig::new(workers),
            PostCommitExecution::Serial => ValidationConfig::new(1),
        };
        validation.op_cost_ns = op_cost_ns;
        CommitPipeline {
            execution,
            validation,
            op_cost_ns,
        }
    }

    /// The configured execution mode.
    pub fn execution(&self) -> PostCommitExecution {
        self.execution
    }

    /// Processes one delivered sub-DAG against `store`, applying effects and
    /// returning the commit statistics.
    pub fn process(
        &self,
        sub_dag: &CommittedSubDag,
        store: &MemStore,
        commit_time: SimTime,
    ) -> CommitOutput {
        let started = Instant::now();
        let mut output = CommitOutput::default();

        // Gather payloads in delivery order.
        let mut preplayed_blocks: Vec<&[PreplayedTx]> = Vec::new();
        let mut cross_shard: Vec<&Transaction> = Vec::new();
        for vertex in &sub_dag.vertices {
            match vertex.block.kind {
                BlockKind::Shift => {
                    output.shift_blocks += 1;
                    output.shift_authors.push(vertex.author());
                    continue;
                }
                BlockKind::Skip | BlockKind::Normal => {}
            }
            if !vertex.block.payload.single_shard.is_empty() {
                preplayed_blocks.push(&vertex.block.payload.single_shard);
            }
            cross_shard.extend(vertex.block.payload.cross_shard.iter());
        }

        // G1: single-shard (preplayed) transactions first.
        for block in preplayed_blocks {
            let report = validate_block(block, store, &self.validation);
            if !report.is_valid() {
                output.invalid_blocks += 1;
                continue;
            }
            let mut ordered: Vec<&PreplayedTx> = block.iter().collect();
            ordered.sort_by_key(|p| p.order);
            for p in &ordered {
                for record in &p.outcome.write_set {
                    store.put(record.key, record.value.clone());
                }
                output.committed.push((p.tx.id, commit_time));
                output.total_latency_secs += commit_time
                    .saturating_since(p.tx.submitted_at)
                    .as_secs_f64();
            }
            output.single_shard_committed += ordered.len();
        }

        // G2: cross-shard transactions afterwards, in a deterministic order.
        match self.execution {
            PostCommitExecution::Serial => {
                for tx in &cross_shard {
                    Self::execute_one(tx, store, self.op_cost_ns);
                    output.committed.push((tx.id, commit_time));
                    output.total_latency_secs +=
                        commit_time.saturating_since(tx.submitted_at).as_secs_f64();
                }
            }
            PostCommitExecution::Parallel { workers } => {
                for wave in shard_disjoint_waves(&cross_shard) {
                    execute_wave(&wave, store, workers, self.op_cost_ns);
                    for tx in wave {
                        output.committed.push((tx.id, commit_time));
                        output.total_latency_secs +=
                            commit_time.saturating_since(tx.submitted_at).as_secs_f64();
                    }
                }
            }
        }
        output.cross_shard_committed += cross_shard.len();
        output.busy = started.elapsed();
        output
    }

    /// Executes a single transaction directly against the store (the OE
    /// path: order first, execute after).
    fn execute_one(tx: &Transaction, store: &MemStore, op_cost_ns: u64) {
        let mut session = StoreSession { store, op_cost_ns };
        let mut tracking = TrackingState::new(&mut session);
        let _ = execute_call(&tx.call, &mut tracking);
    }
}

/// Groups cross-shard transactions into waves whose declared shard sets are
/// pairwise disjoint. Transactions within one wave can execute concurrently
/// without conflicting, because keys never cross shards; waves execute in
/// order, preserving the deterministic total order.
fn shard_disjoint_waves<'a>(txs: &[&'a Transaction]) -> Vec<Vec<&'a Transaction>> {
    let mut waves: Vec<(HashSet<ShardId>, Vec<&Transaction>)> = Vec::new();
    for tx in txs {
        let shards: HashSet<ShardId> = tx.shards.iter().copied().collect();
        // A transaction can only join the *last* wave (otherwise it would
        // overtake a conflicting transaction in an earlier wave), and only if
        // it does not conflict with anything in it.
        let fits_last = waves
            .last()
            .map(|(used, _)| used.is_disjoint(&shards))
            .unwrap_or(false);
        if fits_last {
            let (used, wave) = waves.last_mut().expect("checked non-empty");
            used.extend(shards);
            wave.push(tx);
        } else {
            waves.push((shards, vec![tx]));
        }
    }
    waves.into_iter().map(|(_, wave)| wave).collect()
}

/// Executes one wave of shard-disjoint transactions with up to `workers`
/// threads.
fn execute_wave(wave: &[&Transaction], store: &MemStore, workers: usize, op_cost_ns: u64) {
    if wave.len() <= 1 || workers <= 1 {
        for tx in wave {
            CommitPipeline::execute_one(tx, store, op_cost_ns);
        }
        return;
    }
    let chunk = wave.len().div_ceil(workers.max(1));
    std::thread::scope(|scope| {
        for slice in wave.chunks(chunk) {
            scope.spawn(move || {
                for tx in slice {
                    CommitPipeline::execute_one(tx, store, op_cost_ns);
                }
            });
        }
    });
}

/// Direct store access used for cross-shard (OE) execution.
struct StoreSession<'a> {
    store: &'a MemStore,
    op_cost_ns: u64,
}

impl StateAccess for StoreSession<'_> {
    fn read(&mut self, key: tb_types::Key) -> Result<Value, tb_contracts::ExecError> {
        tb_executor::traits::synthetic_work(self.op_cost_ns);
        Ok(self.store.get(&key))
    }

    fn write(&mut self, key: tb_types::Key, value: Value) -> Result<(), tb_contracts::ExecError> {
        tb_executor::traits::synthetic_work(self.op_cost_ns);
        self.store.put(key, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_dag::DagBuilder;
    use tb_executor::ConcurrentExecutor;
    use tb_types::{
        BlockPayload, CeConfig, ClientId, Committee, ContractCall, DagId, Key, ReplicaId, Round,
        SmallBankProcedure,
    };

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    fn payment(id: u64, from: u64, to: u64, amount: i64, n_shards: u32) -> Transaction {
        Transaction::new(
            tb_types::TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            n_shards,
            SimTime::ZERO,
        )
    }

    fn sub_dag_with(
        committee: Committee,
        preplayed: Vec<PreplayedTx>,
        cross_shard: Vec<Transaction>,
        shift_authors: &[u32],
    ) -> CommittedSubDag {
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let mut vertices = Vec::new();
        // Round 0: one block with the preplayed payload, one with the
        // cross-shard payload, plus any shift blocks, authored by distinct
        // replicas.
        let mut author = 0u32;
        let mut push = |kind: BlockKind, payload: BlockPayload, builder: &mut DagBuilder| {
            let v = builder.make_vertex(ReplicaId::new(author), Round::ZERO, kind, payload, vec![]);
            author += 1;
            v
        };
        vertices.push(push(
            BlockKind::Normal,
            BlockPayload {
                single_shard: preplayed,
                cross_shard: vec![],
            },
            &mut builder,
        ));
        vertices.push(push(
            BlockKind::Normal,
            BlockPayload {
                single_shard: vec![],
                cross_shard,
            },
            &mut builder,
        ));
        for _ in shift_authors {
            vertices.push(push(BlockKind::Shift, BlockPayload::empty(), &mut builder));
        }
        let leader = vertices.last().expect("at least one vertex").clone();
        CommittedSubDag {
            leader,
            leader_round: Round::new(1),
            vertices,
        }
    }

    #[test]
    fn valid_preplay_is_applied_in_serialized_order() {
        let committee = Committee::new(4);
        let store = funded_store(8);
        let txs = vec![payment(1, 0, 4, 10, 1), payment(2, 4, 0, 3, 1)];
        let ce = ConcurrentExecutor::new(CeConfig::new(2, 16).without_synthetic_cost());
        let preplay = ce.preplay(&txs, &store);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 4 });
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(2));
        assert_eq!(output.single_shard_committed, 2);
        assert_eq!(output.invalid_blocks, 0);
        assert_eq!(output.committed_count(), 2);
        assert!(output.total_latency_secs > 0.0);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 10 + 3)
        );
        assert_eq!(
            store.get(&Key::checking(4)),
            Value::int(SMALLBANK_DEFAULT_BALANCE + 10 - 3)
        );
    }

    #[test]
    fn tampered_preplay_blocks_are_discarded_entirely() {
        let committee = Committee::new(4);
        let store = funded_store(4);
        let txs = vec![payment(1, 0, 1, 10, 1)];
        let ce = ConcurrentExecutor::new(CeConfig::new(1, 16).without_synthetic_cost());
        let mut preplay = ce.preplay(&txs, &store);
        preplay.preplayed[0].outcome.write_set[0].value = Value::int(77_777);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let before = store.snapshot();
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        assert_eq!(output.invalid_blocks, 1);
        assert_eq!(output.committed_count(), 0);
        assert!(store.snapshot().diff_values(&before).is_empty());
    }

    #[test]
    fn cross_shard_transactions_execute_after_single_shard_ones() {
        // The single-shard payload pays account 0 -> 4 (same shard of 4);
        // the cross-shard transaction then moves the money on to account 1.
        // If the order were reversed, account 1 would receive less.
        let committee = Committee::new(4);
        let store = funded_store(8);
        // empty account 1's checking first so the effect is visible
        store.put(Key::checking(1), Value::int(0));
        store.put(Key::checking(0), Value::int(0));
        let single = payment(1, 4, 0, 500, 1); // both map to shard 0 of 4
        let ce = ConcurrentExecutor::new(CeConfig::new(1, 16).without_synthetic_cost());
        let preplay = ce.preplay(std::slice::from_ref(&single), &store);
        let cross = payment(2, 0, 1, 400, 4);
        assert_eq!(cross.shards.len(), 2);
        let sub_dag = sub_dag_with(committee, preplay.preplayed.clone(), vec![cross], &[]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        assert_eq!(output.single_shard_committed, 1);
        assert_eq!(output.cross_shard_committed, 1);
        // Account 0 received 500 from the preplay, then sent 400 on.
        assert_eq!(store.get(&Key::checking(0)), Value::int(100));
        assert_eq!(store.get(&Key::checking(1)), Value::int(400));
    }

    #[test]
    fn serial_mode_produces_the_same_state_as_parallel_mode() {
        let committee = Committee::new(4);
        let store_parallel = funded_store(16);
        let store_serial = funded_store(16);
        let cross: Vec<Transaction> = (0..20)
            .map(|i| payment(i, i % 16, (i + 5) % 16, 7, 4))
            .collect();
        let sub_dag = sub_dag_with(committee, vec![], cross, &[]);
        let parallel = CommitPipeline::new(PostCommitExecution::Parallel { workers: 4 });
        let serial = CommitPipeline::new(PostCommitExecution::Serial);
        parallel.process(&sub_dag, &store_parallel, SimTime::ZERO);
        serial.process(&sub_dag, &store_serial, SimTime::ZERO);
        let diff = store_parallel
            .snapshot()
            .diff_values(&store_serial.snapshot());
        assert!(diff.is_empty(), "parallel and serial disagree on {diff:?}");
    }

    #[test]
    fn shift_blocks_are_counted_not_executed() {
        let committee = Committee::new(4);
        let store = funded_store(4);
        let sub_dag = sub_dag_with(committee, vec![], vec![], &[2, 3]);
        let pipeline = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
        let output = pipeline.process(&sub_dag, &store, SimTime::ZERO);
        assert_eq!(output.shift_blocks, 2);
        assert_eq!(output.shift_authors.len(), 2);
        assert_eq!(output.committed_count(), 0);
    }

    #[test]
    fn shard_disjoint_waves_never_split_conflicting_transactions() {
        let a = payment(1, 0, 1, 1, 4); // shards {0,1}
        let b = payment(2, 2, 3, 1, 4); // shards {2,3}
        let c = payment(3, 1, 2, 1, 4); // shards {1,2} conflicts with both
        let txs = [&a, &b, &c];
        let waves = shard_disjoint_waves(&txs);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 2, "a and b are disjoint");
        assert_eq!(waves[1].len(), 1);
        assert_eq!(waves[1][0].id, c.id);
    }

    #[test]
    fn wave_order_preserves_the_total_order_for_conflicting_transactions() {
        // c conflicts with a; even though c and b would be disjoint, c must
        // not jump into an earlier wave than a.
        let a = payment(1, 0, 1, 1, 4); // {0,1}
        let c = payment(2, 1, 2, 1, 4); // {1,2} conflicts with a
        let b = payment(3, 3, 7, 1, 4); // {3}
        let txs = [&a, &c, &b];
        let waves = shard_disjoint_waves(&txs);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0][0].id, a.id);
        assert_eq!(waves[1][0].id, c.id);
        // b joins the last open wave (with c), never an earlier one than its
        // position allows.
        assert_eq!(waves[1].len(), 2);
    }
}
