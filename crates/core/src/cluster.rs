//! The multi-replica simulation harness.
//!
//! [`ClusterSimulation`] wires `n` [`Replica`]s to the discrete-event
//! network, feeds them transactions from any [`Workload`] implementation,
//! injects faults from a [`FaultPlan`] and runs until a round budget is
//! reached. It is the engine behind every system experiment (Figures
//! 13–17), the integration tests and the examples. Three system variants
//! can be simulated:
//!
//! * **Thunderbolt** — concurrent-executor preplay + parallel validation,
//! * **Thunderbolt-OCC** — OCC preplay + parallel validation,
//! * **Tusk** — no preplay, serial execution after consensus.
//!
//! The harness is workload-agnostic: it accepts anything convertible into a
//! `Box<dyn Workload>` (a workload config, a ready generator, or a custom
//! implementation) and only relies on the trait — the stable scenario name,
//! the initial state, and the shard-tagged transaction stream. Most callers
//! should not construct it directly but go through the fluent
//! [`ScenarioBuilder`](crate::scenario::ScenarioBuilder).

use crate::messages::Message;
use crate::metrics::RunReport;
use crate::proposer::ByzantineBehavior;
use crate::replica::{Destination, Replica};
use std::time::Duration;
use tb_network::{FaultPlan, NetEvent, SimNetwork};
use tb_types::{ReplicaId, SimTime, SystemConfig};
use tb_workload::Workload;

/// Which execution engine the replicas use (the three systems compared in
/// the paper's system evaluation, Section 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The full system: concurrent-executor preplay plus parallel validation.
    Thunderbolt,
    /// Preplay with optimistic concurrency control instead of the CE.
    ThunderboltOcc,
    /// The baseline: order first, execute serially after consensus.
    Tusk,
}

impl ExecutionMode {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Thunderbolt => "Thunderbolt",
            ExecutionMode::ThunderboltOcc => "Thunderbolt-OCC",
            ExecutionMode::Tusk => "Tusk",
        }
    }
}

/// Configuration of one simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Protocol and executor parameters.
    pub system: SystemConfig,
    /// Which execution engine to run.
    pub mode: ExecutionMode,
    /// Prefer skip blocks (preplay recovery, Section 5.4) over converting
    /// single-shard transactions when rules P3/P4 trigger.
    pub use_skip_blocks: bool,
    /// Seed for network jitter and workload generation.
    pub seed: u64,
    /// Optional label overriding the mode label in reports.
    pub label: Option<String>,
    /// Make one replica's proposer Byzantine (chaos campaigns). The cluster
    /// harness instantiates every replica from the same config; each replica
    /// compares its own id against this entry.
    pub byzantine: Option<(ReplicaId, ByzantineBehavior)>,
    /// Lockstep proposal mode: a proposer advances to round `r + 1` only
    /// once **all** `n` vertices of round `r` are in its DAG (not just a
    /// `2f + 1` quorum). This makes the DAG complete, so the commit order —
    /// and, on an all-single-shard workload, full block contents — become a
    /// pure function of the transaction stream, independent of message
    /// timing. The real-TCP path uses it to compare commit digests against
    /// an in-process sim of the same scenario. The price is crash tolerance
    /// (one silent replica wedges the cluster), so lockstep is only valid
    /// for fault-free runs and defaults to off.
    pub lockstep: bool,
}

impl ClusterConfig {
    /// A Thunderbolt cluster of `n` replicas with default parameters.
    pub fn thunderbolt(n: u32) -> Self {
        ClusterConfig {
            system: SystemConfig::with_replicas(n),
            mode: ExecutionMode::Thunderbolt,
            use_skip_blocks: false,
            seed: 42,
            label: None,
            byzantine: None,
            lockstep: false,
        }
    }

    /// A Thunderbolt-OCC cluster of `n` replicas.
    pub fn thunderbolt_occ(n: u32) -> Self {
        ClusterConfig {
            mode: ExecutionMode::ThunderboltOcc,
            ..ClusterConfig::thunderbolt(n)
        }
    }

    /// A Tusk (serial execution) cluster of `n` replicas.
    pub fn tusk(n: u32) -> Self {
        ClusterConfig {
            mode: ExecutionMode::Tusk,
            ..ClusterConfig::thunderbolt(n)
        }
    }

    /// Overrides the seed for network jitter and workload generation.
    /// Experiments sweeping seeds should use this (or
    /// [`ScenarioBuilder::seed`](crate::scenario::ScenarioBuilder::seed))
    /// instead of struct-literal surgery.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the label recorded in reports.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Makes `replica`'s proposer exhibit `behavior` (chaos campaigns).
    pub fn with_byzantine(mut self, replica: ReplicaId, behavior: ByzantineBehavior) -> Self {
        self.byzantine = Some((replica, behavior));
        self
    }

    /// Enables lockstep proposal mode (see [`ClusterConfig::lockstep`]).
    pub fn with_lockstep(mut self) -> Self {
        self.lockstep = true;
        self
    }

    /// The label used in reports.
    pub fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.mode.label().to_string())
    }
}

/// The simulation driver.
pub struct ClusterSimulation {
    config: ClusterConfig,
    replicas: Vec<Replica>,
    network: SimNetwork<Message>,
    workload: Box<dyn Workload>,
    faults: FaultPlan,
    busy_until: Vec<SimTime>,
    events_processed: u64,
}

/// Hard cap on processed events, protecting against configuration mistakes.
const EVENT_BUDGET: u64 = 50_000_000;

impl ClusterSimulation {
    /// Builds a cluster: `n` replicas with freshly loaded workload state, a
    /// simulated network with the configured latency model and a fault plan.
    ///
    /// Accepts anything convertible into a boxed [`Workload`]: a workload
    /// config (`SmallBankConfig`, `ContractWorkloadConfig`,
    /// `KvWorkloadConfig`), a ready generator, or `Box<dyn Workload>`. The
    /// workload is retargeted to the committee's shard count and the
    /// cluster seed is folded into its stream before the run.
    pub fn new(
        config: ClusterConfig,
        workload: impl Into<Box<dyn Workload>>,
        faults: FaultPlan,
    ) -> Self {
        let n = config.system.n_replicas;
        let mut workload = workload.into();
        workload.configure_for_cluster(n, config.seed);
        let initial_state = workload.initial_state();
        let mut replicas = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut replica = Replica::new(ReplicaId::new(i), config.clone());
            replica.load_state(initial_state.iter().cloned());
            replicas.push(replica);
        }
        let network = SimNetwork::new(n, config.system.latency, config.seed);
        ClusterSimulation {
            busy_until: vec![SimTime::ZERO; n as usize],
            config,
            replicas,
            network,
            workload,
            faults,
            events_processed: 0,
        }
    }

    /// Convenience constructor with no faults.
    pub fn with_defaults(config: ClusterConfig, workload: impl Into<Box<dyn Workload>>) -> Self {
        Self::new(config, workload, FaultPlan::none())
    }

    /// The name of the workload driving this simulation.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Access to a replica (used by tests to inspect state).
    pub fn replica(&self, id: ReplicaId) -> &Replica {
        &self.replicas[id.as_inner() as usize]
    }

    /// The simulated network statistics.
    pub fn network_stats(&self) -> tb_network::NetworkStats {
        self.network.stats()
    }

    /// Runs the simulation until the observer replica has committed
    /// `max_rounds / 2` leader rounds (or the network goes idle / the event
    /// budget is exhausted) and returns the run report. Counting *committed*
    /// leader rounds rather than proposed rounds makes runs with different
    /// execution engines and reconfiguration periods commit a comparable
    /// amount of work, which is what the throughput figures compare.
    pub fn run(&mut self) -> RunReport {
        let max_rounds = self.config.system.max_rounds;
        let target_commits = (max_rounds / 2).max(1) as usize;
        self.faults.apply_due(SimTime::ZERO, &mut self.network);

        // Prime the client queues and start every replica.
        for i in 0..self.replicas.len() {
            self.feed(i, SimTime::ZERO);
        }
        for i in 0..self.replicas.len() {
            let id = ReplicaId::new(i as u32);
            if self.network.is_crashed(id) {
                continue;
            }
            let outbound = self.replicas[i].start(SimTime::ZERO);
            let busy = self.replicas[i].take_busy();
            self.busy_until[i] = SimTime::ZERO + duration_to_sim(busy);
            let extra = self.busy_until[i];
            self.dispatch_outbound(id, outbound, extra);
        }

        while let Some((at, event)) = self.network.next_event() {
            self.events_processed += 1;
            if self.events_processed > EVENT_BUDGET {
                break;
            }
            self.faults.apply_due(at, &mut self.network);
            match event {
                NetEvent::Message { from, to, msg } => {
                    self.deliver(from, to, msg, at);
                }
                NetEvent::Timer { .. } => {}
            }
            let observer = self.observer();
            if observer.metrics().round_commits.len() >= target_commits
                || observer.current_round().as_u64() >= max_rounds * 4
            {
                break;
            }
        }

        // Duration is measured up to the observer's last commit *including*
        // the execution time it had to spend to get there (its busy-inflated
        // clock), so serial post-consensus execution (Tusk) pays for its
        // execution cost in the throughput figures even though consensus
        // itself keeps progressing underneath.
        let observer = self.observer();
        let duration = observer
            .metrics()
            .round_commits
            .last()
            .map(|sample| sample.committed_at)
            .unwrap_or_else(|| self.network.now());
        let mut report = observer.report(&self.config.label(), duration);
        report.workload = self.workload.name().to_string();
        let stats = self.network.stats();
        report.msgs_sent = stats.sent;
        report.msgs_delivered = stats.delivered;
        report.msgs_dropped = stats.dropped;
        report.bytes_sent = stats.bytes_sent;
        report.bytes_delivered = stats.bytes_delivered;
        report.faults_applied = self.faults.applied() as u64;
        report.faults_unapplied = self.faults.remaining() as u64;
        if report.faults_unapplied > 0 {
            // A fault schedule that outlives the run silently tested nothing;
            // surface it both on stderr and in the report.
            eprintln!(
                "warning: {} of {} scheduled faults never applied — the fault \
                 schedule outlived the run (ended at {})",
                report.faults_unapplied,
                self.faults.len(),
                self.network.now()
            );
        }
        report
    }

    /// Number of replicas in the cluster.
    pub fn replica_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    fn observer(&self) -> &Replica {
        // The first non-crashed replica; honest replicas commit identical
        // sequences so any of them is representative.
        for replica in &self.replicas {
            if !self.network.is_crashed(replica.id()) {
                return replica;
            }
        }
        &self.replicas[0]
    }

    fn deliver(&mut self, from: ReplicaId, to: ReplicaId, msg: Message, at: SimTime) {
        let idx = to.as_inner() as usize;
        let effective_now = at.max(self.busy_until[idx]);
        let outbound = self.replicas[idx].handle(from, msg, effective_now);
        let busy = self.replicas[idx].take_busy();
        self.busy_until[idx] = effective_now + duration_to_sim(busy);
        let extra = self.busy_until[idx].saturating_since(self.network.now());
        self.dispatch_outbound(to, outbound, extra);
        // Keep the proposer's client queue topped up, modelling clients that
        // submit continuously.
        if self.replicas[idx].pending_client_txs() < self.config.system.ce.batch_size {
            self.feed(idx, effective_now);
        }
    }

    fn dispatch_outbound(
        &mut self,
        from: ReplicaId,
        outbound: Vec<crate::replica::Outbound>,
        extra: SimTime,
    ) {
        for out in outbound {
            match out.dest {
                Destination::Broadcast => {
                    self.network.broadcast_delayed(from, out.msg, extra);
                }
                Destination::To(to) => {
                    self.network.send_delayed(from, to, out.msg, extra);
                }
            }
        }
    }

    /// Generates client transactions until the given replica's queues hold at
    /// least two batches. Generated transactions are routed to whichever
    /// replica currently serves their home shard.
    fn feed(&mut self, target_idx: usize, now: SimTime) {
        let batch = self.config.system.ce.batch_size;
        let target_goal = batch * 2;
        let mut generated = 0usize;
        let cap = batch * 8;
        while self.replicas[target_idx].pending_client_txs() < target_goal && generated < cap {
            let tx = self.workload.next_transaction(now);
            generated += 1;
            let home = tx.home_shard();
            if let Some(idx) = self.replicas.iter().position(|r| r.current_shard() == home) {
                self.replicas[idx].enqueue(tx);
            }
        }
    }
}

fn duration_to_sim(duration: Duration) -> SimTime {
    SimTime::from_micros(duration.as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{CeConfig, LatencyModel};
    use tb_workload::{ContractWorkloadConfig, KvWorkloadConfig, SmallBankConfig};

    fn small_config(mode: ExecutionMode, n: u32, rounds: u64) -> ClusterConfig {
        let mut config = ClusterConfig::thunderbolt(n);
        config.mode = mode;
        config.system.ce = CeConfig::new(2, 32).without_synthetic_cost();
        config.system.validators = 2;
        config.system.max_rounds = rounds;
        config.system.latency = LatencyModel::Fixed { micros: 100 };
        config
    }

    fn workload(n: u32, cross: f64) -> SmallBankConfig {
        SmallBankConfig {
            accounts: 64,
            n_shards: n,
            cross_shard_fraction: cross,
            ..SmallBankConfig::default()
        }
    }

    #[test]
    fn thunderbolt_cluster_commits_transactions() {
        let mut sim = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Thunderbolt, 4, 10),
            workload(4, 0.0),
        );
        let report = sim.run();
        assert!(report.committed_txs > 0, "nothing committed: {report:?}");
        assert!(report.throughput_tps() > 0.0);
        assert_eq!(report.replicas, 4);
        assert_eq!(report.label, "Thunderbolt");
        assert_eq!(report.workload, "smallbank");
        assert!(report.duration > SimTime::ZERO);
    }

    #[test]
    fn contract_workload_drives_a_cluster_through_the_trait() {
        let workload = ContractWorkloadConfig {
            slots: 64,
            ..ContractWorkloadConfig::default()
        };
        let mut sim = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Thunderbolt, 4, 10),
            workload,
        );
        let report = sim.run();
        assert!(report.committed_txs > 0, "nothing committed: {report:?}");
        assert_eq!(report.workload, "contract");
        assert_eq!(sim.workload_name(), "contract");
    }

    #[test]
    fn hot_key_kv_workload_drives_a_cluster_through_the_trait() {
        let workload = KvWorkloadConfig {
            keys: 64,
            cross_shard_fraction: 0.2,
            ..KvWorkloadConfig::default()
        };
        let mut sim = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Thunderbolt, 4, 10),
            workload,
        );
        let report = sim.run();
        assert!(report.committed_txs > 0, "nothing committed: {report:?}");
        assert_eq!(report.workload, "kv-hot");
    }

    #[test]
    fn all_replicas_agree_on_the_commit_sequence() {
        // The run stops at an arbitrary event, so replicas may have processed
        // different *amounts* of the committed sequence — but the sequences
        // themselves (DAG id, leader round) must be prefixes of one another.
        let mut sim = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Thunderbolt, 4, 8),
            workload(4, 0.2),
        );
        let _ = sim.run();
        let sequences: Vec<Vec<(u64, u64)>> = (0..4)
            .map(|i| {
                sim.replica(ReplicaId::new(i))
                    .metrics()
                    .round_commits
                    .iter()
                    .map(|s| (s.dag, s.round.as_u64()))
                    .collect()
            })
            .collect();
        let longest = sequences
            .iter()
            .max_by_key(|s| s.len())
            .expect("four replicas")
            .clone();
        for (i, sequence) in sequences.iter().enumerate() {
            assert!(
                longest.starts_with(sequence),
                "replica {i} committed a different sequence: {sequence:?} vs {longest:?}"
            );
        }
    }

    #[test]
    fn tusk_commits_fewer_transactions_than_thunderbolt_per_round_budget() {
        let rounds = 10;
        let mut thunderbolt = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Thunderbolt, 4, rounds),
            workload(4, 0.0),
        );
        let mut tusk = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::Tusk, 4, rounds),
            workload(4, 0.0),
        );
        let tb = thunderbolt.run();
        let tk = tusk.run();
        assert!(tb.committed_txs > 0 && tk.committed_txs > 0);
        assert_eq!(tk.single_shard_txs, 0);
        assert!(tb.single_shard_txs > 0);
    }

    #[test]
    fn crashed_replicas_do_not_stop_the_cluster() {
        let config = small_config(ExecutionMode::Thunderbolt, 4, 10);
        let faults = FaultPlan::crash_replicas(4, 1, SimTime::ZERO);
        let mut sim = ClusterSimulation::new(config, workload(4, 0.0), faults);
        let report = sim.run();
        assert!(report.committed_txs > 0, "f=1 crash must not halt commits");
    }

    #[test]
    fn run_reports_message_loss_and_fault_accounting() {
        let config = small_config(ExecutionMode::Thunderbolt, 4, 8);
        let mut faults = FaultPlan::crash_replicas(4, 1, SimTime::ZERO);
        // A recovery scheduled an hour out can never fire in this run; the
        // report must say so instead of silently dropping it.
        faults.push(
            SimTime::from_secs(3_600),
            tb_network::FaultAction::Recover(ReplicaId::new(3)),
        );
        let mut sim = ClusterSimulation::new(config, workload(4, 0.0), faults);
        let report = sim.run();
        assert!(report.msgs_sent > 0);
        assert!(report.msgs_delivered > 0);
        assert!(report.msgs_dropped > 0, "crashed replica must drop traffic");
        assert_eq!(report.faults_applied, 1);
        assert_eq!(report.faults_unapplied, 1);
    }

    #[test]
    fn occ_mode_runs_and_reports_its_label() {
        let mut sim = ClusterSimulation::with_defaults(
            small_config(ExecutionMode::ThunderboltOcc, 4, 8),
            workload(4, 0.0),
        );
        let report = sim.run();
        assert_eq!(report.label, "Thunderbolt-OCC");
        assert!(report.committed_txs > 0);
    }
}
