//! The Thunderbolt replica: one node of the system.
//!
//! A replica plays three roles at once (Section 3.1): it is the *shard
//! proposer* of its current shard (preplaying single-shard transactions and
//! proposing one block per round), a *replica* participating in DAG
//! construction (acknowledging headers, storing certified vertices), and a
//! *committer* applying the committed sequence to its local storage.
//!
//! The replica is written as a deterministic state machine: it consumes
//! protocol messages and produces outbound messages, so it can be driven
//! either by the discrete-event simulator (`tb-network`) or directly by unit
//! tests. All heavy work (preplay, validation, post-commit execution) is
//! timed and surfaced through [`Replica::take_busy`], which the simulator
//! charges to the replica's virtual clock.

use crate::cluster::{ClusterConfig, ExecutionMode};
use crate::commit::{CommitPipeline, PostCommitExecution};
use crate::messages::Message;
use crate::metrics::{LatencyHistogram, RoundCommitSample, RunReport};
use crate::proposer::{
    decide, ByzantineBehavior, ProposalContext, ProposalDecision, ShardProposer,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};
use tb_dag::{Committer, DagError, DagStore};
use tb_executor::{BatchExecutor, ConcurrentExecutor, OccExecutor};
use tb_storage::{CommitMarker, KvRead, MemStore, Store, Versioned, WalOptions, WalStore};
use tb_types::{
    Block, BlockKind, BlockPayload, Certificate, Committee, DagId, Digest, Hashable, Header, Key,
    PreplayedTx, ReplicaId, Round, SeqNo, ShardAssignment, ShardId, SimTime, StorageBackend,
    StorageConfig, Transaction, Value, Vertex,
};

/// Where an outbound message should go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Send to every replica (including the sender itself).
    Broadcast,
    /// Send to a single replica.
    To(ReplicaId),
}

/// An outbound protocol message produced by a replica handler.
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Where the message goes.
    pub dest: Destination,
    /// The message itself.
    pub msg: Message,
}

impl Outbound {
    fn broadcast(msg: Message) -> Self {
        Outbound {
            dest: Destination::Broadcast,
            msg,
        }
    }

    fn to(dest: ReplicaId, msg: Message) -> Self {
        Outbound {
            dest: Destination::To(dest),
            msg,
        }
    }
}

/// A header the replica proposed and is collecting acknowledgements for.
#[derive(Clone, Debug)]
struct PendingHeader {
    header: Header,
    block: Block,
    acks: HashSet<ReplicaId>,
    vertex_sent: bool,
}

/// FNV-1a 64-bit offset basis: the initial value of the commit-order digest
/// (an all-zero seed would collapse zero-valued transaction ids).
pub const COMMIT_DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Counters accumulated by one replica over a run.
#[derive(Clone, Debug)]
pub struct ReplicaMetrics {
    /// Committed transactions (single-shard + cross-shard).
    pub committed_txs: u64,
    /// Committed single-shard (preplayed) transactions.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions.
    pub cross_shard_txs: u64,
    /// Preplayed blocks discarded by validation.
    pub invalid_blocks: u64,
    /// Preplay re-executions on this replica's own proposals.
    pub reexecutions: u64,
    /// Completed DAG reconfigurations.
    pub reconfigurations: u64,
    /// Summed commit latencies in seconds.
    pub total_latency_secs: f64,
    /// Histogram of per-transaction commit latencies.
    pub latency_hist: LatencyHistogram,
    /// Wall-clock time the validation stage was busy.
    pub validate_busy: Duration,
    /// Wall-clock time the storage-apply stage was busy.
    pub apply_busy: Duration,
    /// Wall-clock time the cross-shard execution stage was busy.
    pub execute_busy: Duration,
    /// Write batches drained together with at least one other batch by the
    /// pipelined applier.
    pub coalesced_batches: u64,
    /// Storage apply calls performed by the commit path (one per valid block
    /// when staged, one per applier drain when pipelined).
    pub apply_calls: u64,
    /// FNV-1a digest over committed transaction ids in commit order.
    pub commit_order_digest: u64,
    /// Per-leader-round commit times.
    pub round_commits: Vec<RoundCommitSample>,
}

impl Default for ReplicaMetrics {
    fn default() -> Self {
        ReplicaMetrics {
            committed_txs: 0,
            single_shard_txs: 0,
            cross_shard_txs: 0,
            invalid_blocks: 0,
            reexecutions: 0,
            reconfigurations: 0,
            total_latency_secs: 0.0,
            latency_hist: LatencyHistogram::default(),
            validate_busy: Duration::ZERO,
            apply_busy: Duration::ZERO,
            execute_busy: Duration::ZERO,
            coalesced_batches: 0,
            apply_calls: 0,
            commit_order_digest: COMMIT_DIGEST_SEED,
            round_commits: Vec::new(),
        }
    }
}

/// One Thunderbolt replica.
pub struct Replica {
    id: ReplicaId,
    committee: Committee,
    mode: ExecutionMode,
    config: ClusterConfig,
    ce: ConcurrentExecutor,
    occ: OccExecutor,
    pipeline: CommitPipeline,
    store: Box<dyn Store>,
    proposer: ShardProposer,

    dag_id: DagId,
    assignment: ShardAssignment,
    dag: DagStore,
    committer: Committer,
    current_round: Round,
    proposed_current: bool,
    seq: u64,
    my_header: Option<PendingHeader>,
    pending_vertices: Vec<Vertex>,
    future_messages: Vec<(ReplicaId, Message)>,

    /// Write sets of this replica's own preplayed-but-uncommitted blocks,
    /// newest last. Preplay reads see them on top of committed storage so
    /// that consecutive blocks from the same shard chain correctly.
    overlay: VecDeque<(Round, HashMap<Key, Value>)>,

    shifted_in_dag: bool,
    rounds_proposed_in_dag: u64,
    shift_quorum_authors: HashSet<ReplicaId>,

    metrics: ReplicaMetrics,
    busy: Duration,
}

impl Replica {
    /// Opens the storage backend `config` selects for replica `id`. A
    /// durable backend lives in its own per-replica directory and may carry
    /// recovered state from a previous incarnation.
    fn open_store(id: ReplicaId, storage: &StorageConfig) -> Box<dyn Store> {
        match storage.backend {
            StorageBackend::Mem => Box::new(MemStore::new()),
            StorageBackend::Wal => {
                let dir = std::path::PathBuf::from(&storage.data_dir)
                    .join(format!("replica-{}", id.as_inner()));
                let options = WalOptions {
                    compact_wal_bytes: storage.compact_wal_bytes,
                    flush_buffered_writes: storage.flush_buffered_writes as usize,
                };
                Box::new(
                    WalStore::open(&dir, options)
                        .unwrap_or_else(|err| panic!("open WAL store {}: {err}", dir.display())),
                )
            }
        }
    }

    /// Creates a replica with the initial shard assignment of DAG 0 and an
    /// empty store pre-loaded by the caller.
    pub fn new(id: ReplicaId, config: ClusterConfig) -> Self {
        let committee = Committee::new(config.system.n_replicas);
        let dag_id = DagId::new(0);
        let assignment = ShardAssignment::new(committee, dag_id);
        let shard = assignment.shard_of(id);
        let op_cost = config.system.ce.synthetic_op_cost_ns;
        let pipeline = match config.mode {
            ExecutionMode::Tusk => {
                CommitPipeline::with_op_cost(PostCommitExecution::Serial, op_cost)
            }
            _ if config.system.pipelined_commit => CommitPipeline::with_op_cost(
                PostCommitExecution::Pipelined {
                    workers: config.system.validators,
                },
                op_cost,
            ),
            _ => CommitPipeline::with_op_cost(
                PostCommitExecution::Parallel {
                    workers: config.system.validators,
                },
                op_cost,
            ),
        };
        Replica {
            id,
            committee,
            mode: config.mode,
            ce: ConcurrentExecutor::new(config.system.ce),
            occ: OccExecutor::new(config.system.ce),
            pipeline,
            store: Self::open_store(id, &config.system.storage),
            proposer: ShardProposer::new(shard, config.system.ce.batch_size),
            dag_id,
            assignment,
            dag: DagStore::new(committee, dag_id, Round::ZERO),
            committer: Committer::new(committee, dag_id, Round::ZERO),
            current_round: Round::ZERO,
            proposed_current: false,
            seq: 0,
            my_header: None,
            pending_vertices: Vec::new(),
            future_messages: Vec::new(),
            overlay: VecDeque::new(),
            shifted_in_dag: false,
            rounds_proposed_in_dag: 0,
            shift_quorum_authors: HashSet::new(),
            metrics: ReplicaMetrics::default(),
            config,
            busy: Duration::ZERO,
        }
    }

    /// The replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The shard the replica currently serves as proposer.
    pub fn current_shard(&self) -> ShardId {
        self.proposer.shard()
    }

    /// The current DAG instance.
    pub fn current_dag(&self) -> DagId {
        self.dag_id
    }

    /// The round the replica is currently proposing for.
    pub fn current_round(&self) -> Round {
        self.current_round
    }

    /// The replica's local storage.
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// Loads initial state into the replica's store (used before a run). A
    /// durable backend logs the entries too, so a replica that crashes
    /// before its first commit still recovers its genesis state.
    ///
    /// A durable store that already recovered a committed prefix from a
    /// previous incarnation is *past* genesis: re-loading the initial state
    /// would roll committed values back, so the load is skipped.
    pub fn load_state(&mut self, entries: impl IntoIterator<Item = (Key, Value)>) {
        if self.store.last_commit().is_some() {
            return;
        }
        self.store.load_entries(&mut entries.into_iter());
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    /// Number of client transactions waiting in the proposer queues.
    pub fn pending_client_txs(&self) -> usize {
        self.proposer.pending_single() + self.proposer.pending_cross()
    }

    /// Enqueues a client transaction if this replica currently serves the
    /// transaction's home shard.
    pub fn enqueue(&mut self, tx: Transaction) -> bool {
        self.proposer.enqueue(tx)
    }

    /// Returns (and resets) the wall-clock execution time accumulated by the
    /// last handler invocation; the simulator charges it to this replica's
    /// virtual clock.
    pub fn take_busy(&mut self) -> Duration {
        std::mem::take(&mut self.busy)
    }

    /// Builds the run report from this replica's point of view.
    pub fn report(&self, label: &str, duration: SimTime) -> RunReport {
        RunReport {
            label: label.to_string(),
            // The replica does not know what generated its traffic; the
            // cluster harness stamps the workload name onto the report.
            workload: String::new(),
            replicas: self.committee.size(),
            committed_txs: self.metrics.committed_txs,
            single_shard_txs: self.metrics.single_shard_txs,
            cross_shard_txs: self.metrics.cross_shard_txs,
            invalid_blocks: self.metrics.invalid_blocks,
            reexecutions: self.metrics.reexecutions,
            reconfigurations: self.metrics.reconfigurations,
            duration,
            total_latency_secs: self.metrics.total_latency_secs,
            latency_p50_secs: self.metrics.latency_hist.quantile_secs(0.5),
            latency_p99_secs: self.metrics.latency_hist.quantile_secs(0.99),
            validate_busy_secs: self.metrics.validate_busy.as_secs_f64(),
            apply_busy_secs: self.metrics.apply_busy.as_secs_f64(),
            execute_busy_secs: self.metrics.execute_busy.as_secs_f64(),
            coalesced_batches: self.metrics.coalesced_batches,
            apply_calls: self.metrics.apply_calls,
            commit_order_digest: format!("{:016x}", self.metrics.commit_order_digest),
            round_commits: self.metrics.round_commits.clone(),
            highest_round: self.dag.highest_round(),
            // Network-level accounting lives in the simulator; the cluster
            // harness fills these in after the run.
            msgs_sent: 0,
            msgs_delivered: 0,
            msgs_dropped: 0,
            bytes_sent: 0,
            bytes_delivered: 0,
            faults_applied: 0,
            faults_unapplied: 0,
        }
    }

    /// Starts the replica: proposes its block for the first round.
    pub fn start(&mut self, now: SimTime) -> Vec<Outbound> {
        self.propose(now)
    }

    /// Handles one protocol message.
    pub fn handle(&mut self, from: ReplicaId, msg: Message, now: SimTime) -> Vec<Outbound> {
        match msg {
            Message::Header { header, block } => self.on_header(from, header, block),
            Message::Ack {
                header_digest,
                dag,
                signer,
                ..
            } => self.on_ack(dag, header_digest, signer),
            Message::Vertex(vertex) => self.on_vertex(from, *vertex, now),
        }
    }

    // ------------------------------------------------------------------
    // Proposal path
    // ------------------------------------------------------------------

    fn propose(&mut self, now: SimTime) -> Vec<Outbound> {
        if self.proposed_current {
            return Vec::new();
        }
        let started = Instant::now();
        let context = ProposalContext {
            leader_vertex_present: self.previous_leader_present(),
            conflicting_cross_shard_pending: self.conflicting_cross_pending(),
            should_shift: self.should_shift(),
            use_skip_blocks: self.config.use_skip_blocks,
        };
        let decision = if self.mode == ExecutionMode::Tusk {
            // Tusk has no preplay path: everything is ordered first and
            // executed after consensus. Shift blocks still apply.
            if context.should_shift {
                ProposalDecision::Shift
            } else {
                ProposalDecision::ConvertToCross
            }
        } else {
            decide(context)
        };

        let (kind, payload) = match decision {
            ProposalDecision::Shift => {
                self.shifted_in_dag = true;
                (BlockKind::Shift, BlockPayload::empty())
            }
            ProposalDecision::Preplay => {
                let singles = self.proposer.take_single_batch();
                let budget = self
                    .config
                    .system
                    .ce
                    .batch_size
                    .saturating_sub(singles.len());
                let cross = self.proposer.take_cross_batch(budget);
                let preplayed = self.preplay(&singles);
                (
                    BlockKind::Normal,
                    BlockPayload {
                        single_shard: preplayed,
                        cross_shard: cross,
                    },
                )
            }
            ProposalDecision::ConvertToCross => {
                let mut cross = self.proposer.take_single_batch();
                let budget = self.config.system.ce.batch_size.saturating_sub(cross.len());
                cross.extend(self.proposer.take_cross_batch(budget));
                (
                    BlockKind::Normal,
                    BlockPayload {
                        single_shard: Vec::new(),
                        cross_shard: cross,
                    },
                )
            }
            ProposalDecision::Skip => {
                let cross = self
                    .proposer
                    .take_cross_batch(self.config.system.ce.batch_size);
                (
                    BlockKind::Skip,
                    BlockPayload {
                        single_shard: Vec::new(),
                        cross_shard: cross,
                    },
                )
            }
        };

        let parents = if self.current_round == self.dag.start_round() {
            Vec::new()
        } else {
            self.dag.certificates_at_round(self.current_round.prev())
        };
        self.seq += 1;
        let byzantine = self.byzantine_behavior();
        let payload = match byzantine {
            Some(ByzantineBehavior::TamperWrites) if kind == BlockKind::Normal => {
                Self::tamper_writes(payload)
            }
            Some(ByzantineBehavior::OverfullWrongShard) if kind == BlockKind::Normal => {
                self.overfill_payload(payload)
            }
            _ => payload,
        };
        let mut block = Block::normal(
            self.dag_id,
            self.current_round,
            self.id,
            self.proposer.shard(),
            SeqNo::new(self.seq),
            payload,
            now,
        );
        block.kind = kind;
        let header = Header::new(
            self.dag_id,
            self.current_round,
            self.id,
            block.digest(),
            parents.clone(),
            now,
        );
        self.my_header = Some(PendingHeader {
            header: header.clone(),
            block: block.clone(),
            acks: HashSet::new(),
            vertex_sent: false,
        });
        self.proposed_current = true;
        self.rounds_proposed_in_dag += 1;
        self.busy += started.elapsed();
        if byzantine == Some(ByzantineBehavior::Equivocate) && kind == BlockKind::Normal {
            return self.equivocate(header, block, parents, now);
        }
        vec![Outbound::broadcast(Message::Header { header, block })]
    }

    /// The Byzantine behaviour this replica is configured to exhibit, if any.
    fn byzantine_behavior(&self) -> Option<ByzantineBehavior> {
        match self.config.byzantine {
            Some((id, behavior)) if id == self.id => Some(behavior),
            _ => None,
        }
    }

    /// [`ByzantineBehavior::TamperWrites`]: corrupt the first declared write
    /// so the block's declared effects no longer re-execute.
    fn tamper_writes(mut payload: BlockPayload) -> BlockPayload {
        for preplayed in payload.single_shard.iter_mut() {
            if let Some(record) = preplayed.outcome.write_set.first_mut() {
                record.value = Value::int(i64::MIN / 2);
                break;
            }
        }
        payload
    }

    /// [`ByzantineBehavior::OverfullWrongShard`]: stuff a second single-shard
    /// batch *and* preplayed cross-shard transactions (a P1 violation: their
    /// writes land outside this proposer's shard) into the block.
    fn overfill_payload(&mut self, mut payload: BlockPayload) -> BlockPayload {
        let mut extra = self.proposer.take_single_batch();
        extra.extend(
            self.proposer
                .take_cross_batch(self.config.system.ce.batch_size),
        );
        if !extra.is_empty() {
            let preplayed = self.preplay(&extra);
            payload.single_shard.extend(preplayed);
        }
        payload
    }

    /// [`ByzantineBehavior::Equivocate`]: send the real (header, block) pair
    /// to itself plus the smallest quorum of peers, and a conflicting empty
    /// variant for the same round to everyone else. Only one variant can
    /// gather a certificate, so honest replicas adopt a single vertex.
    fn equivocate(
        &mut self,
        header: Header,
        block: Block,
        parents: Vec<Digest>,
        now: SimTime,
    ) -> Vec<Outbound> {
        let mut alt_block = Block::normal(
            self.dag_id,
            self.current_round,
            self.id,
            self.proposer.shard(),
            SeqNo::new(self.seq),
            BlockPayload::empty(),
            now,
        );
        alt_block.kind = BlockKind::Normal;
        let alt_header = Header::new(
            self.dag_id,
            self.current_round,
            self.id,
            alt_block.digest(),
            parents,
            now,
        );
        let quorum = self.committee.quorum_threshold();
        let mut out = vec![Outbound::to(
            self.id,
            Message::Header {
                header: header.clone(),
                block: block.clone(),
            },
        )];
        let mut primary_recipients = 1; // the self-ack counts toward quorum
        for peer in self.committee.replicas() {
            if peer == self.id {
                continue;
            }
            if primary_recipients < quorum {
                out.push(Outbound::to(
                    peer,
                    Message::Header {
                        header: header.clone(),
                        block: block.clone(),
                    },
                ));
                primary_recipients += 1;
            } else {
                out.push(Outbound::to(
                    peer,
                    Message::Header {
                        header: alt_header.clone(),
                        block: alt_block.clone(),
                    },
                ));
            }
        }
        out
    }

    /// Preplays a batch of single-shard transactions against committed state
    /// plus this replica's own uncommitted preplay results.
    fn preplay(&mut self, singles: &[Transaction]) -> Vec<PreplayedTx> {
        if singles.is_empty() {
            return Vec::new();
        }
        let mut overlay_map: HashMap<Key, Value> = HashMap::new();
        for (_, writes) in &self.overlay {
            for (key, value) in writes {
                overlay_map.insert(*key, value.clone());
            }
        }
        let result = match self.mode {
            ExecutionMode::Thunderbolt => {
                let base = OverlayRead {
                    store: self.store.as_ref(),
                    overlay: &overlay_map,
                };
                self.ce.preplay(singles, &base)
            }
            ExecutionMode::ThunderboltOcc => {
                // OCC preplays against a scratch copy of the committed state
                // (plus the overlay) and throws the copy away.
                let scratch = MemStore::new();
                scratch.load(
                    self.store
                        .snapshot()
                        .iter()
                        .map(|(k, v)| (*k, v.value.clone())),
                );
                scratch.load(overlay_map.iter().map(|(k, v)| (*k, v.clone())));
                self.occ.execute_batch(singles, &scratch)
            }
            ExecutionMode::Tusk => unreachable!("Tusk never preplays"),
        };
        self.metrics.reexecutions += result.reexecutions;
        let writes: HashMap<Key, Value> = result.write_batch().into_writes().into_iter().collect();
        self.overlay.push_back((self.current_round, writes));
        result.preplayed
    }

    fn previous_leader_present(&self) -> bool {
        let current = self.current_round.as_u64();
        let start = self.dag.start_round().as_u64();
        if current <= start + 1 {
            return true;
        }
        // The latest leader round strictly before the current round.
        let candidate = current - 1;
        let leader_round = if candidate % 2 == 1 {
            candidate
        } else {
            candidate - 1
        };
        if leader_round < start.max(1) {
            return true;
        }
        let round = Round::new(leader_round);
        let leader = self.committee.leader(self.dag_id, round);
        self.dag.by_author_round(leader, round).is_some()
    }

    fn conflicting_cross_pending(&self) -> bool {
        let my_shard = self.proposer.shard();
        self.dag.iter().any(|vertex| {
            !self.committer.is_delivered(&vertex.id())
                && vertex
                    .block
                    .payload
                    .cross_shard
                    .iter()
                    .any(|tx| tx.touches_shard(my_shard))
        })
    }

    fn should_shift(&self) -> bool {
        if self.shifted_in_dag {
            return false;
        }
        let reconfig = self.config.system.reconfig;
        // Condition 2: the replica proposed for K' rounds in this DAG.
        if self.rounds_proposed_in_dag >= reconfig.period_k_prime {
            return true;
        }
        let current = self.current_round.as_u64();
        let start = self.dag.start_round().as_u64();
        // Condition 1: some proposer has been silent for K rounds.
        if current >= start + reconfig.silent_rounds_k {
            for author in self.committee.replicas() {
                if author == self.id {
                    continue;
                }
                let seen = (current - reconfig.silent_rounds_k..current)
                    .any(|r| self.dag.by_author_round(author, Round::new(r)).is_some());
                if !seen {
                    return true;
                }
            }
        }
        // Condition 3: f + 1 Shift blocks in the previous round.
        if current > start {
            let shift_count = self
                .dag
                .at_round(self.current_round.prev())
                .iter()
                .filter(|v| v.block.is_shift())
                .count();
            if shift_count >= self.committee.validity_threshold() {
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    fn on_header(&mut self, from: ReplicaId, header: Header, block: Block) -> Vec<Outbound> {
        if header.dag > self.dag_id {
            self.future_messages
                .push((from, Message::Header { header, block }));
            return Vec::new();
        }
        if header.dag < self.dag_id
            || header.author != from
            || header.round < self.dag.start_round()
            || block.digest() != header.block_digest
        {
            return Vec::new();
        }
        vec![Outbound::to(
            from,
            Message::Ack {
                header_digest: header.digest(),
                dag: header.dag,
                round: header.round,
                signer: self.id,
            },
        )]
    }

    fn on_ack(&mut self, dag: DagId, header_digest: Digest, signer: ReplicaId) -> Vec<Outbound> {
        if dag != self.dag_id {
            return Vec::new();
        }
        let quorum = self.committee.quorum_threshold();
        let Some(pending) = self.my_header.as_mut() else {
            return Vec::new();
        };
        if pending.header.digest() != header_digest || pending.vertex_sent {
            return Vec::new();
        }
        pending.acks.insert(signer);
        if pending.acks.len() < quorum {
            return Vec::new();
        }
        pending.vertex_sent = true;
        let certificate =
            Certificate::for_header(&pending.header, pending.acks.iter().copied().collect());
        let vertex = Vertex::new(pending.header.clone(), pending.block.clone(), certificate);
        vec![Outbound::broadcast(Message::Vertex(Box::new(vertex)))]
    }

    fn on_vertex(&mut self, from: ReplicaId, vertex: Vertex, now: SimTime) -> Vec<Outbound> {
        if vertex.dag() > self.dag_id {
            self.future_messages
                .push((from, Message::Vertex(Box::new(vertex))));
            return Vec::new();
        }
        if vertex.dag() < self.dag_id {
            return Vec::new();
        }
        match self.dag.insert(vertex.clone()) {
            Ok(_) => {}
            Err(DagError::MissingParent { .. }) => {
                self.pending_vertices.push(vertex);
                return Vec::new();
            }
            Err(_) => return Vec::new(),
        }
        self.drain_pending_vertices();

        let mut out = Vec::new();
        out.extend(self.run_commit_loop(now));
        out.extend(self.maybe_advance(now));
        out
    }

    fn drain_pending_vertices(&mut self) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.pending_vertices);
            for vertex in pending {
                if vertex.dag() != self.dag_id {
                    continue;
                }
                match self.dag.insert(vertex.clone()) {
                    Ok(_) => progressed = true,
                    Err(DagError::MissingParent { .. }) => self.pending_vertices.push(vertex),
                    Err(_) => {}
                }
            }
            if !progressed {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit + reconfiguration
    // ------------------------------------------------------------------

    fn run_commit_loop(&mut self, now: SimTime) -> Vec<Outbound> {
        let mut out = Vec::new();
        let sub_dags = self.committer.try_commit(&self.dag);
        for sub_dag in sub_dags {
            let output = self.pipeline.process(&sub_dag, self.store.as_ref(), now);
            self.busy += output.busy;
            self.metrics.committed_txs += output.committed_count() as u64;
            self.metrics.single_shard_txs += output.single_shard_committed as u64;
            self.metrics.cross_shard_txs += output.cross_shard_committed as u64;
            self.metrics.invalid_blocks += output.invalid_blocks as u64;
            self.metrics.total_latency_secs += output.total_latency_secs;
            self.metrics.validate_busy += output.stage_validate;
            self.metrics.apply_busy += output.stage_apply;
            self.metrics.execute_busy += output.stage_execute;
            self.metrics.coalesced_batches += output.coalesced_batches;
            self.metrics.apply_calls += output.apply_calls;
            for latency in &output.latency_samples_secs {
                self.metrics.latency_hist.record_secs(*latency);
            }
            for (tx_id, _) in &output.committed {
                // FNV-1a fold over the commit order; honest replicas agree on
                // the sequence, so they agree on the digest.
                self.metrics.commit_order_digest = (self.metrics.commit_order_digest
                    ^ tx_id.as_inner())
                .wrapping_mul(0x0100_0000_01b3);
            }
            self.metrics.round_commits.push(RoundCommitSample {
                dag: self.dag_id.as_inner(),
                round: sub_dag.leader_round,
                committed_at: now,
                digest: self.metrics.commit_order_digest,
            });
            // Commit boundary: a durable backend persists the marker and
            // fsyncs everything before it, so recovery reproduces both the
            // state and the digest the replica had reached here.
            self.store.commit_marker(CommitMarker {
                dag: self.dag_id.as_inner(),
                round: sub_dag.leader_round.as_u64(),
                digest: self.metrics.commit_order_digest,
            });
            // Drop overlay entries for this replica's own delivered blocks.
            for vertex in &sub_dag.vertices {
                if vertex.author() == self.id {
                    let delivered_round = vertex.round();
                    while self
                        .overlay
                        .front()
                        .is_some_and(|(round, _)| *round <= delivered_round)
                    {
                        self.overlay.pop_front();
                    }
                }
            }
            // Reconfiguration: the first committed sub-DAG whose cumulative
            // Shift-block authors reach 2f + 1 fixes the ending round.
            for author in &output.shift_authors {
                self.shift_quorum_authors.insert(*author);
            }
            if self.shift_quorum_authors.len() >= self.committee.quorum_threshold() {
                out.extend(self.reconfigure(sub_dag.leader_round, now));
                return out;
            }
        }
        out
    }

    fn reconfigure(&mut self, ending_round: Round, now: SimTime) -> Vec<Outbound> {
        self.metrics.reconfigurations += 1;
        self.dag_id = DagId::new(self.dag_id.as_inner() + 1);
        self.assignment = self.assignment.next();
        self.dag = DagStore::new(self.committee, self.dag_id, ending_round);
        self.committer = Committer::new(self.committee, self.dag_id, ending_round);
        self.current_round = ending_round;
        self.proposed_current = false;
        self.my_header = None;
        self.pending_vertices.retain(|v| v.dag() == self.dag_id);
        self.overlay.clear();
        self.shifted_in_dag = false;
        self.rounds_proposed_in_dag = 0;
        self.shift_quorum_authors.clear();
        self.proposer.reassign(self.assignment.shard_of(self.id));

        let mut out = self.propose(now);
        // Replay buffered messages that were ahead of us.
        let buffered: Vec<(ReplicaId, Message)> = std::mem::take(&mut self.future_messages);
        for (from, msg) in buffered {
            out.extend(self.handle(from, msg, now));
        }
        out
    }

    fn maybe_advance(&mut self, now: SimTime) -> Vec<Outbound> {
        let mut out = Vec::new();
        while self.proposed_current && self.dag.round_has_quorum(self.current_round) {
            // Lockstep mode waits for the *complete* round — all n vertices,
            // not just a 2f+1 quorum — before advancing. With a complete DAG
            // the committed sub-DAG sequence is a pure function of the
            // transaction stream, which is what lets a real-TCP run be
            // digest-compared against an in-process sim run (see
            // `ClusterConfig::lockstep` for the crash-tolerance trade-off).
            if self.config.lockstep
                && self.dag.authors_at_round(self.current_round) < self.committee.size() as usize
            {
                break;
            }
            self.current_round = self.current_round.next();
            self.proposed_current = false;
            self.my_header = None;
            out.extend(self.propose(now));
        }
        out
    }
}

/// Committed storage plus the proposer's own uncommitted preplay writes.
struct OverlayRead<'a> {
    store: &'a dyn Store,
    overlay: &'a HashMap<Key, Value>,
}

impl KvRead for OverlayRead<'_> {
    fn get(&self, key: &Key) -> Value {
        self.overlay
            .get(key)
            .cloned()
            .unwrap_or_else(|| self.store.get(key))
    }

    fn get_versioned(&self, key: &Key) -> Versioned {
        match self.overlay.get(key) {
            Some(value) => {
                let base = self.store.get_versioned(key);
                Versioned::new(value.clone(), base.version + 1)
            }
            None => self.store.get_versioned(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ExecutionMode};
    use tb_types::{CeConfig, ClientId, ContractCall, SmallBankProcedure, SystemConfig, TxId};

    fn config(n: u32) -> ClusterConfig {
        let mut system = SystemConfig::with_replicas(n);
        system.ce = CeConfig::new(2, 64).without_synthetic_cost();
        system.validators = 2;
        ClusterConfig {
            system,
            mode: ExecutionMode::Thunderbolt,
            use_skip_blocks: false,
            seed: 7,
            label: None,
            byzantine: None,
            lockstep: false,
        }
    }

    fn payment(id: u64, from: u64, to: u64, n_shards: u32) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment {
                from,
                to,
                amount: 1,
            }),
            n_shards,
            SimTime::ZERO,
        )
    }

    /// Drives a set of replicas to completion by synchronously delivering
    /// every outbound message (no latency, no faults). Returns when no more
    /// messages are produced.
    fn run_synchronously(replicas: &mut [Replica], rounds_budget: usize) {
        let mut inbox: VecDeque<(ReplicaId, ReplicaId, Message)> = VecDeque::new();
        let now = SimTime::ZERO;
        let n = replicas.len();
        for replica in replicas.iter_mut() {
            for outbound in replica.start(now) {
                enqueue(&mut inbox, replica.id(), outbound, n);
            }
        }
        let mut steps = 0usize;
        let budget = rounds_budget * n * n * 20;
        while let Some((from, to, msg)) = inbox.pop_front() {
            steps += 1;
            if steps > budget {
                break;
            }
            let replica = &mut replicas[to.as_inner() as usize];
            if replica.current_round().as_u64() >= rounds_budget as u64 {
                continue;
            }
            for outbound in replica.handle(from, msg, now) {
                enqueue(&mut inbox, replica.id(), outbound, n);
            }
        }
    }

    fn enqueue(
        inbox: &mut VecDeque<(ReplicaId, ReplicaId, Message)>,
        from: ReplicaId,
        outbound: Outbound,
        n: usize,
    ) {
        match outbound.dest {
            Destination::Broadcast => {
                for to in 0..n {
                    inbox.push_back((from, ReplicaId::new(to as u32), outbound.msg.clone()));
                }
            }
            Destination::To(to) => inbox.push_back((from, to, outbound.msg.clone())),
        }
    }

    #[test]
    fn start_proposes_a_header_for_round_zero() {
        let mut replica = Replica::new(ReplicaId::new(0), config(4));
        let out = replica.start(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind(), "header");
        assert_eq!(out[0].msg.round(), Round::ZERO);
        assert_eq!(replica.current_shard(), ShardId::new(0));
        assert_eq!(replica.current_dag(), DagId::new(0));
    }

    #[test]
    fn header_is_acknowledged_and_quorum_builds_a_vertex() {
        let cfg = config(4);
        let mut proposer = Replica::new(ReplicaId::new(0), cfg.clone());
        let mut other = Replica::new(ReplicaId::new(1), cfg);
        let out = proposer.start(SimTime::ZERO);
        let Message::Header { header, block } = out[0].msg.clone() else {
            panic!("expected header");
        };
        // Another replica acknowledges the header.
        let acks = other.handle(
            ReplicaId::new(0),
            Message::Header {
                header: header.clone(),
                block: block.clone(),
            },
            SimTime::ZERO,
        );
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].msg.kind(), "ack");
        assert_eq!(acks[0].dest, Destination::To(ReplicaId::new(0)));
        // Feed three distinct acks to the proposer: a vertex is broadcast.
        let mut vertex_msgs = Vec::new();
        for signer in 1..4u32 {
            let out = proposer.handle(
                ReplicaId::new(signer),
                Message::Ack {
                    header_digest: header.digest(),
                    dag: DagId::new(0),
                    round: Round::ZERO,
                    signer: ReplicaId::new(signer),
                },
                SimTime::ZERO,
            );
            vertex_msgs.extend(out);
        }
        assert_eq!(vertex_msgs.len(), 1);
        assert_eq!(vertex_msgs[0].msg.kind(), "vertex");
    }

    #[test]
    fn four_replicas_commit_single_shard_payments_end_to_end() {
        let cfg = config(4);
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| {
                let mut r = Replica::new(ReplicaId::new(i), cfg.clone());
                r.load_state(tb_workload::initial_smallbank_state(16, 1_000));
                r
            })
            .collect();
        // Give shard 0's proposer (replica 0) some single-shard payments
        // (accounts 0 and 4 are both in shard 0 of 4).
        for i in 0..10u64 {
            assert!(replicas[0].enqueue(payment(i, 0, 4, 4)));
        }
        run_synchronously(&mut replicas, 8);

        for replica in &replicas {
            assert!(
                replica.metrics().committed_txs >= 10,
                "replica {} committed only {}",
                replica.id(),
                replica.metrics().committed_txs
            );
            assert_eq!(replica.metrics().invalid_blocks, 0);
            // The payments moved 10 units from account 0 to account 4.
            assert_eq!(
                replica.store().get(&Key::checking(0)),
                Value::int(1_000 - 10)
            );
            assert_eq!(
                replica.store().get(&Key::checking(4)),
                Value::int(1_000 + 10)
            );
        }
        // All replicas agree on the final state.
        let reference = replicas[0].store().snapshot();
        for replica in &replicas[1..] {
            let diff = replica.store().snapshot().diff_values(&reference);
            assert!(diff.is_empty(), "state divergence on {diff:?}");
        }
    }

    #[test]
    fn cross_shard_transactions_commit_on_every_replica() {
        let cfg = config(4);
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| {
                let mut r = Replica::new(ReplicaId::new(i), cfg.clone());
                r.load_state(tb_workload::initial_smallbank_state(16, 1_000));
                r
            })
            .collect();
        // A cross-shard payment from account 0 (shard 0) to account 1
        // (shard 1), routed to its home shard proposer (replica 0).
        assert!(replicas[0].enqueue(payment(1, 0, 1, 4)));
        run_synchronously(&mut replicas, 8);
        for replica in &replicas {
            assert!(replica.metrics().cross_shard_txs >= 1);
            assert_eq!(replica.store().get(&Key::checking(0)), Value::int(999));
            assert_eq!(replica.store().get(&Key::checking(1)), Value::int(1_001));
        }
    }

    #[test]
    fn tusk_mode_commits_the_same_state_without_preplay() {
        let mut cfg = config(4);
        cfg.mode = ExecutionMode::Tusk;
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| {
                let mut r = Replica::new(ReplicaId::new(i), cfg.clone());
                r.load_state(tb_workload::initial_smallbank_state(16, 1_000));
                r
            })
            .collect();
        for i in 0..6u64 {
            replicas[0].enqueue(payment(i, 0, 4, 4));
        }
        run_synchronously(&mut replicas, 8);
        for replica in &replicas {
            assert!(replica.metrics().committed_txs >= 6);
            assert_eq!(
                replica.metrics().single_shard_txs,
                0,
                "Tusk never ships preplayed payloads"
            );
            assert_eq!(replica.store().get(&Key::checking(0)), Value::int(994));
        }
    }

    #[test]
    fn periodic_reconfiguration_rotates_shards_without_stopping() {
        let mut cfg = config(4);
        cfg.system.reconfig = tb_types::ReconfigConfig::new(3, 4);
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| Replica::new(ReplicaId::new(i), cfg.clone()))
            .collect();
        run_synchronously(&mut replicas, 20);
        for replica in &replicas {
            assert!(
                replica.metrics().reconfigurations >= 1,
                "replica {} never reconfigured",
                replica.id()
            );
            assert!(replica.current_dag().as_inner() >= 1);
        }
        // After one reconfiguration replica 0 serves shard n-1 … i.e. the
        // assignment rotated.
        let r0 = &replicas[0];
        assert_ne!(r0.current_shard(), ShardId::new(0));
    }

    #[test]
    fn overlay_lets_consecutive_blocks_chain_on_hot_keys() {
        // Two consecutive batches touching the same account must both
        // validate: the second preplay has to observe the first one's writes
        // even though they are not committed yet.
        let cfg = config(4);
        let mut replicas: Vec<Replica> = (0..4)
            .map(|i| {
                let mut r = Replica::new(ReplicaId::new(i), cfg.clone());
                r.load_state(tb_workload::initial_smallbank_state(16, 1_000));
                r
            })
            .collect();
        for i in 0..40u64 {
            replicas[0].enqueue(payment(i, 0, 4, 4));
        }
        run_synchronously(&mut replicas, 12);
        for replica in &replicas {
            assert_eq!(replica.metrics().invalid_blocks, 0);
            assert!(replica.metrics().committed_txs >= 40);
            assert_eq!(replica.store().get(&Key::checking(0)), Value::int(960));
        }
    }
}
