//! The fluent, scenario-first entry point to the cluster simulation.
//!
//! [`ScenarioBuilder`] assembles everything a system experiment needs —
//! execution engine, workload, round budget, fault plan, seed, label — and
//! produces a ready [`ClusterSimulation`] (or directly its [`RunReport`]).
//! It is the public face of the harness; `ClusterConfig` surgery is only
//! needed for knobs the builder does not expose, and even those are
//! reachable through [`ScenarioBuilder::tune`].
//!
//! ```
//! use tb_workload::KvWorkloadConfig;
//! use tb_core::scenario::ScenarioBuilder;
//! use tb_core::ExecutionMode;
//!
//! let report = ScenarioBuilder::new(4)
//!     .engine(ExecutionMode::Thunderbolt)
//!     .workload(KvWorkloadConfig {
//!         keys: 64,
//!         cross_shard_fraction: 0.2,
//!         ..KvWorkloadConfig::default()
//!     })
//!     .executors(2, 32)
//!     .rounds(8)
//!     .seed(7)
//!     .label("kv-demo")
//!     .run();
//! assert!(report.committed_txs > 0);
//! assert_eq!(report.workload, "kv-hot");
//! ```

use crate::cluster::{ClusterConfig, ClusterSimulation, ExecutionMode};
use crate::metrics::RunReport;
use crate::proposer::ByzantineBehavior;
use std::fmt;
use tb_network::FaultPlan;
use tb_types::{CeConfig, LatencyModel, ReconfigConfig, ReplicaId, StorageConfig, SystemConfig};
use tb_workload::{SmallBankConfig, Workload};

/// Which transport a scenario targets.
///
/// [`TransportKind::Sim`] (the default) runs the whole committee in-process
/// over the discrete-event [`SimNetwork`](tb_network::SimNetwork);
/// [`TransportKind::Tcp`] describes an out-of-process cluster where each
/// replica is its own OS process speaking length-prefixed frames over
/// `std::net::TcpStream` (see `docs/NET.md`). The TCP transport cannot
/// inject simulated faults, so [`ScenarioBuilder::build_real_net`] rejects
/// scenarios carrying a fault plan instead of silently ignoring it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process discrete-event simulation (the default).
    #[default]
    Sim,
    /// Out-of-process cluster over real localhost TCP.
    Tcp,
}

/// Why a scenario cannot be taken out-of-process over TCP.
///
/// Returned by [`ScenarioBuilder::build_real_net`]. Each variant names a
/// capability the real transport does not have; the fix is always to drop
/// the offending knob or stay on [`TransportKind::Sim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The scenario carries a fault plan, but crashes, censoring, partitions
    /// and message loss are injected *into the simulated network* — a real
    /// TCP transport has no hook for them. This is a hard error rather than
    /// the sim path's stderr warning: a fault plan that cannot apply must
    /// not no-op silently.
    FaultsUnsupported {
        /// Number of scheduled faults in the rejected plan.
        scheduled: usize,
    },
    /// The scenario uses a workload the node processes cannot re-generate
    /// from a compact spec. Real-net nodes rebuild the client stream
    /// independently from a [`SmallBankConfig`], so only workloads set via
    /// [`ScenarioBuilder::smallbank`] (or the default) are supported.
    WorkloadUnsupported {
        /// Name of the rejected workload.
        name: String,
    },
    /// Byzantine proposer behaviour is driven by the simulation harness and
    /// is not available out-of-process.
    ByzantineUnsupported,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::FaultsUnsupported { scheduled } => write!(
                f,
                "the TCP transport cannot inject simulated faults \
                 ({scheduled} scheduled); drop the fault plan or use the \
                 sim transport"
            ),
            ScenarioError::WorkloadUnsupported { name } => write!(
                f,
                "real-net nodes can only re-generate SmallBank streams; \
                 workload {name:?} has no compact wire spec"
            ),
            ScenarioError::ByzantineUnsupported => write!(
                f,
                "byzantine proposer behaviour is simulation-only and cannot \
                 run out-of-process"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Everything a launcher needs to run a scenario as N OS processes over
/// localhost TCP: the per-replica cluster configuration plus the compact
/// workload spec each node process expands into the shared client stream.
///
/// Built by [`ScenarioBuilder::build_real_net`]; consumed by `tb-launcher`.
#[derive(Clone, Debug)]
pub struct RealNetPlan {
    /// Per-replica configuration (engine, system knobs, seed, lockstep).
    pub config: ClusterConfig,
    /// The SmallBank spec every node re-generates the client stream from.
    pub smallbank: SmallBankConfig,
}

/// Fluent builder for cluster scenarios.
///
/// Defaults: Thunderbolt engine, the default SmallBank workload, no
/// faults, and the `SystemConfig` defaults for the given committee size
/// (the same starting point as [`ClusterConfig::thunderbolt`]).
pub struct ScenarioBuilder {
    config: ClusterConfig,
    workload: Box<dyn Workload>,
    faults: FaultPlan,
    transport: TransportKind,
    /// The compact spec behind `workload`, kept whenever the workload was
    /// set as a `SmallBankConfig` — the only workload the real-net path can
    /// ship to node processes. `None` after [`ScenarioBuilder::workload`]
    /// installs an opaque generator.
    smallbank: Option<SmallBankConfig>,
}

impl ScenarioBuilder {
    /// Starts a scenario on a committee of `replicas` replicas.
    pub fn new(replicas: u32) -> Self {
        ScenarioBuilder {
            config: ClusterConfig::thunderbolt(replicas),
            workload: SmallBankConfig::default().into(),
            faults: FaultPlan::none(),
            transport: TransportKind::Sim,
            smallbank: Some(SmallBankConfig::default()),
        }
    }

    /// Selects the execution engine (Thunderbolt, Thunderbolt-OCC, Tusk).
    pub fn engine(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Selects the workload: a config (`SmallBankConfig`,
    /// `ContractWorkloadConfig`, `KvWorkloadConfig`), a ready generator, or
    /// any boxed custom [`Workload`]. The builder retargets it to the
    /// committee's shard count and folds the scenario seed into its stream
    /// when the simulation is built.
    pub fn workload(mut self, workload: impl Into<Box<dyn Workload>>) -> Self {
        self.workload = workload.into();
        self.smallbank = None;
        self
    }

    /// Selects a SmallBank workload *and* remembers its compact spec, which
    /// is what allows the scenario to go out-of-process: real-net node
    /// processes re-generate the client stream from the spec instead of
    /// receiving transactions from the harness. Equivalent to
    /// [`ScenarioBuilder::workload`] on the sim path.
    pub fn smallbank(mut self, config: SmallBankConfig) -> Self {
        self.workload = config.into();
        self.smallbank = Some(config);
        self
    }

    /// Selects the transport the scenario targets. [`TransportKind::Sim`]
    /// (the default) is consumed by [`ScenarioBuilder::build`] /
    /// [`ScenarioBuilder::run`]; [`TransportKind::Tcp`] by
    /// [`ScenarioBuilder::build_real_net`].
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Makes every replica wait for the *complete* previous round (all `n`
    /// vertices, not just a `2f + 1` quorum) before advancing. With a
    /// complete DAG the commit order is a pure function of the client
    /// stream, so a real-TCP run can be digest-compared against an
    /// in-process sim run of the same scenario. Only meaningful for
    /// fault-free runs — a single crashed replica halts a lockstep cluster.
    pub fn lockstep(mut self) -> Self {
        self.config.lockstep = true;
        self
    }

    /// Sets the leader-round budget of the run (`SystemConfig::max_rounds`).
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.config.system.max_rounds = rounds;
        self
    }

    /// Sets the seed for network jitter and workload generation, so
    /// experiments can sweep seeds without touching any config struct.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the engine label recorded in reports (e.g. to distinguish
    /// two parameterisations of the same engine).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = Some(label.into());
        self
    }

    /// Injects a fault plan (crashes, censoring, partitions). If the plan's
    /// schedule outlives the run, the resulting [`RunReport`] records the
    /// count in `faults_unapplied` and the run warns on stderr — a fault
    /// plan must not no-op silently.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Makes `replica`'s proposer Byzantine (chaos campaigns): it equivocates,
    /// tampers with declared write sets, or violates the batching rules
    /// depending on `behavior`.
    pub fn byzantine(mut self, replica: ReplicaId, behavior: ByzantineBehavior) -> Self {
        self.config.byzantine = Some((replica, behavior));
        self
    }

    /// Selects the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.system.latency = latency;
        self
    }

    /// Sizes the preplay stage: `workers` executor threads and `batch`
    /// transactions per block. The validation pool is a separate knob
    /// ([`ScenarioBuilder::validators`]) and keeps its `SystemConfig`
    /// default when untouched.
    pub fn executors(mut self, workers: usize, batch: usize) -> Self {
        self.config.system.ce = CeConfig::new(workers, batch);
        self
    }

    /// Sizes the post-consensus validation worker pool.
    pub fn validators(mut self, workers: usize) -> Self {
        self.config.system.validators = workers;
        self
    }

    /// Enables reconfiguration with the given `K` / `K'` parameters.
    pub fn reconfig(mut self, reconfig: ReconfigConfig) -> Self {
        self.config.system.reconfig = reconfig;
        self
    }

    /// Selects the storage backend every replica keeps its committed state
    /// in: [`StorageConfig::mem`] (the default) or [`StorageConfig::wal`]
    /// for a durable cluster whose replicas can be killed and recovered
    /// from disk (see `docs/STORAGE.md`).
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.config.system.storage = storage;
        self
    }

    /// Prefers skip blocks over converting single-shard transactions when
    /// preplay recovery triggers (rules P3/P4, Section 5.4).
    pub fn skip_blocks(mut self, enabled: bool) -> Self {
        self.config.use_skip_blocks = enabled;
        self
    }

    /// Escape hatch for every remaining [`SystemConfig`] knob (synthetic op
    /// cost, pipelined commit, …) without leaving the fluent chain.
    pub fn tune(mut self, f: impl FnOnce(&mut SystemConfig)) -> Self {
        f(&mut self.config.system);
        self
    }

    /// The assembled cluster configuration (for inspection in tests).
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Builds the in-process simulation without running it (the
    /// [`TransportKind::Sim`] path, regardless of the
    /// [`ScenarioBuilder::transport`] setting — use
    /// [`ScenarioBuilder::build_real_net`] for the TCP path).
    pub fn build(self) -> ClusterSimulation {
        ClusterSimulation::new(self.config, self.workload, self.faults)
    }

    /// Builds the simulation, runs it to completion and returns the report.
    pub fn run(self) -> RunReport {
        self.build().run()
    }

    /// Validates the scenario for the real TCP transport and returns the
    /// [`RealNetPlan`] a launcher expands into N OS processes.
    ///
    /// Errors instead of warning: capabilities the real transport lacks —
    /// simulated fault injection, byzantine proposers, opaque workloads —
    /// reject the scenario at build time rather than silently testing
    /// something else (contrast the sim path's `faults_unapplied` stderr
    /// warning, which fires only *after* a run).
    pub fn build_real_net(self) -> Result<RealNetPlan, ScenarioError> {
        if !self.faults.is_empty() {
            return Err(ScenarioError::FaultsUnsupported {
                scheduled: self.faults.len(),
            });
        }
        if self.config.byzantine.is_some() {
            return Err(ScenarioError::ByzantineUnsupported);
        }
        let Some(smallbank) = self.smallbank else {
            return Err(ScenarioError::WorkloadUnsupported {
                name: self.workload.name().to_string(),
            });
        };
        // The spec ships untransformed: every node applies the same
        // `configure_for_cluster(n, seed)` retargeting the sim harness does,
        // so both paths expand the identical client stream.
        Ok(RealNetPlan {
            config: self.config,
            smallbank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{ReplicaId, SimTime};
    use tb_workload::ContractWorkloadConfig;

    fn tiny(builder: ScenarioBuilder) -> ScenarioBuilder {
        builder
            .executors(2, 32)
            .validators(2)
            .rounds(8)
            .latency(LatencyModel::Fixed { micros: 100 })
            .tune(|system| system.ce = system.ce.without_synthetic_cost())
    }

    #[test]
    fn builder_defaults_produce_a_smallbank_thunderbolt_run() {
        let report = tiny(ScenarioBuilder::new(4)).run();
        assert!(report.committed_txs > 0);
        assert_eq!(report.label, "Thunderbolt");
        assert_eq!(report.workload, "smallbank");
        assert_eq!(report.replicas, 4);
    }

    #[test]
    fn every_knob_lands_in_the_cluster_config() {
        let builder = ScenarioBuilder::new(7)
            .engine(ExecutionMode::Tusk)
            .rounds(17)
            .seed(99)
            .label("custom")
            .latency(LatencyModel::Fixed { micros: 5 })
            .executors(3, 48)
            .validators(5)
            .reconfig(ReconfigConfig::new(4, 10))
            .skip_blocks(true)
            .byzantine(ReplicaId::new(2), ByzantineBehavior::Equivocate)
            .storage(StorageConfig::wal("/tmp/tb-scenario-test"))
            .tune(|system| system.pipelined_commit = false);
        let config = builder.config();
        assert_eq!(config.system.n_replicas, 7);
        assert_eq!(config.mode, ExecutionMode::Tusk);
        assert_eq!(config.system.max_rounds, 17);
        assert_eq!(config.seed, 99);
        assert_eq!(config.label.as_deref(), Some("custom"));
        assert_eq!(config.system.latency, LatencyModel::Fixed { micros: 5 });
        assert_eq!(config.system.ce.executors, 3);
        assert_eq!(config.system.ce.batch_size, 48);
        assert_eq!(config.system.validators, 5);
        assert_eq!(config.system.reconfig, ReconfigConfig::new(4, 10));
        assert!(config.use_skip_blocks);
        assert!(!config.system.pipelined_commit);
        assert_eq!(
            config.byzantine,
            Some((ReplicaId::new(2), ByzantineBehavior::Equivocate))
        );
        assert_eq!(
            config.system.storage,
            StorageConfig::wal("/tmp/tb-scenario-test")
        );
        assert_eq!(config.label(), "custom");
    }

    #[test]
    fn builder_runs_non_smallbank_workloads_with_faults() {
        let report = tiny(ScenarioBuilder::new(4))
            .workload(ContractWorkloadConfig {
                slots: 64,
                ..ContractWorkloadConfig::default()
            })
            .faults(FaultPlan::crash_replicas(4, 1, SimTime::ZERO))
            .run();
        assert!(report.committed_txs > 0, "f=1 crash must not halt commits");
        assert_eq!(report.workload, "contract");
    }

    #[test]
    fn real_net_build_rejects_sim_only_capabilities() {
        // A fault plan on the TCP transport is a build-time error, not a
        // post-run stderr warning.
        let err = ScenarioBuilder::new(4)
            .transport(TransportKind::Tcp)
            .faults(FaultPlan::crash_replicas(4, 1, SimTime::ZERO))
            .build_real_net()
            .unwrap_err();
        assert_eq!(err, ScenarioError::FaultsUnsupported { scheduled: 1 });
        assert!(err.to_string().contains("cannot inject simulated faults"));

        let err = ScenarioBuilder::new(4)
            .byzantine(ReplicaId::new(1), ByzantineBehavior::Equivocate)
            .build_real_net()
            .unwrap_err();
        assert_eq!(err, ScenarioError::ByzantineUnsupported);

        let err = ScenarioBuilder::new(4)
            .workload(ContractWorkloadConfig::default())
            .build_real_net()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::WorkloadUnsupported {
                name: "contract".to_string()
            }
        );
    }

    #[test]
    fn real_net_build_ships_the_smallbank_spec_and_lockstep() {
        let spec = tb_workload::SmallBankConfig {
            accounts: 128,
            seed: 11,
            ..tb_workload::SmallBankConfig::default()
        };
        let plan = ScenarioBuilder::new(4)
            .transport(TransportKind::Tcp)
            .smallbank(spec)
            .lockstep()
            .rounds(8)
            .build_real_net()
            .expect("fault-free smallbank scenario must be launchable");
        assert!(plan.config.lockstep);
        assert_eq!(plan.config.system.max_rounds, 8);
        assert_eq!(plan.smallbank.accounts, 128);
        // The spec ships untransformed; nodes retarget it themselves.
        assert_eq!(plan.smallbank.seed, 11);
    }

    #[test]
    fn smallbank_spec_survives_the_builder_where_opaque_workloads_do_not() {
        // The default workload is launchable out of the box.
        assert!(ScenarioBuilder::new(4).build_real_net().is_ok());
    }

    #[test]
    fn build_exposes_the_simulation_for_inspection() {
        let mut sim = tiny(ScenarioBuilder::new(4)).seed(3).build();
        let report = sim.run();
        assert!(report.committed_txs > 0);
        assert!(sim.replica(ReplicaId::new(0)).metrics().committed_txs > 0);
        assert_eq!(sim.workload_name(), "smallbank");
    }
}
