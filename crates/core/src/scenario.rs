//! The fluent, scenario-first entry point to the cluster simulation.
//!
//! [`ScenarioBuilder`] assembles everything a system experiment needs —
//! execution engine, workload, round budget, fault plan, seed, label — and
//! produces a ready [`ClusterSimulation`] (or directly its [`RunReport`]).
//! It is the public face of the harness; `ClusterConfig` surgery is only
//! needed for knobs the builder does not expose, and even those are
//! reachable through [`ScenarioBuilder::tune`].
//!
//! ```
//! use tb_workload::KvWorkloadConfig;
//! use tb_core::scenario::ScenarioBuilder;
//! use tb_core::ExecutionMode;
//!
//! let report = ScenarioBuilder::new(4)
//!     .engine(ExecutionMode::Thunderbolt)
//!     .workload(KvWorkloadConfig {
//!         keys: 64,
//!         cross_shard_fraction: 0.2,
//!         ..KvWorkloadConfig::default()
//!     })
//!     .executors(2, 32)
//!     .rounds(8)
//!     .seed(7)
//!     .label("kv-demo")
//!     .run();
//! assert!(report.committed_txs > 0);
//! assert_eq!(report.workload, "kv-hot");
//! ```

use crate::cluster::{ClusterConfig, ClusterSimulation, ExecutionMode};
use crate::metrics::RunReport;
use crate::proposer::ByzantineBehavior;
use tb_network::FaultPlan;
use tb_types::{CeConfig, LatencyModel, ReconfigConfig, ReplicaId, SystemConfig};
use tb_workload::{SmallBankConfig, Workload};

/// Fluent builder for cluster scenarios.
///
/// Defaults: Thunderbolt engine, the default SmallBank workload, no
/// faults, and the `SystemConfig` defaults for the given committee size
/// (the same starting point as [`ClusterConfig::thunderbolt`]).
pub struct ScenarioBuilder {
    config: ClusterConfig,
    workload: Box<dyn Workload>,
    faults: FaultPlan,
}

impl ScenarioBuilder {
    /// Starts a scenario on a committee of `replicas` replicas.
    pub fn new(replicas: u32) -> Self {
        ScenarioBuilder {
            config: ClusterConfig::thunderbolt(replicas),
            workload: SmallBankConfig::default().into(),
            faults: FaultPlan::none(),
        }
    }

    /// Selects the execution engine (Thunderbolt, Thunderbolt-OCC, Tusk).
    pub fn engine(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Selects the workload: a config (`SmallBankConfig`,
    /// `ContractWorkloadConfig`, `KvWorkloadConfig`), a ready generator, or
    /// any boxed custom [`Workload`]. The builder retargets it to the
    /// committee's shard count and folds the scenario seed into its stream
    /// when the simulation is built.
    pub fn workload(mut self, workload: impl Into<Box<dyn Workload>>) -> Self {
        self.workload = workload.into();
        self
    }

    /// Sets the leader-round budget of the run (`SystemConfig::max_rounds`).
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.config.system.max_rounds = rounds;
        self
    }

    /// Sets the seed for network jitter and workload generation, so
    /// experiments can sweep seeds without touching any config struct.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the engine label recorded in reports (e.g. to distinguish
    /// two parameterisations of the same engine).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = Some(label.into());
        self
    }

    /// Injects a fault plan (crashes, censoring, partitions). If the plan's
    /// schedule outlives the run, the resulting [`RunReport`] records the
    /// count in `faults_unapplied` and the run warns on stderr — a fault
    /// plan must not no-op silently.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Makes `replica`'s proposer Byzantine (chaos campaigns): it equivocates,
    /// tampers with declared write sets, or violates the batching rules
    /// depending on `behavior`.
    pub fn byzantine(mut self, replica: ReplicaId, behavior: ByzantineBehavior) -> Self {
        self.config.byzantine = Some((replica, behavior));
        self
    }

    /// Selects the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.system.latency = latency;
        self
    }

    /// Sizes the preplay stage: `workers` executor threads and `batch`
    /// transactions per block. The validation pool is a separate knob
    /// ([`ScenarioBuilder::validators`]) and keeps its `SystemConfig`
    /// default when untouched.
    pub fn executors(mut self, workers: usize, batch: usize) -> Self {
        self.config.system.ce = CeConfig::new(workers, batch);
        self
    }

    /// Sizes the post-consensus validation worker pool.
    pub fn validators(mut self, workers: usize) -> Self {
        self.config.system.validators = workers;
        self
    }

    /// Enables reconfiguration with the given `K` / `K'` parameters.
    pub fn reconfig(mut self, reconfig: ReconfigConfig) -> Self {
        self.config.system.reconfig = reconfig;
        self
    }

    /// Prefers skip blocks over converting single-shard transactions when
    /// preplay recovery triggers (rules P3/P4, Section 5.4).
    pub fn skip_blocks(mut self, enabled: bool) -> Self {
        self.config.use_skip_blocks = enabled;
        self
    }

    /// Escape hatch for every remaining [`SystemConfig`] knob (synthetic op
    /// cost, pipelined commit, …) without leaving the fluent chain.
    pub fn tune(mut self, f: impl FnOnce(&mut SystemConfig)) -> Self {
        f(&mut self.config.system);
        self
    }

    /// The assembled cluster configuration (for inspection in tests).
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Builds the simulation without running it.
    pub fn build(self) -> ClusterSimulation {
        ClusterSimulation::new(self.config, self.workload, self.faults)
    }

    /// Builds the simulation, runs it to completion and returns the report.
    pub fn run(self) -> RunReport {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{ReplicaId, SimTime};
    use tb_workload::ContractWorkloadConfig;

    fn tiny(builder: ScenarioBuilder) -> ScenarioBuilder {
        builder
            .executors(2, 32)
            .validators(2)
            .rounds(8)
            .latency(LatencyModel::Fixed { micros: 100 })
            .tune(|system| system.ce = system.ce.without_synthetic_cost())
    }

    #[test]
    fn builder_defaults_produce_a_smallbank_thunderbolt_run() {
        let report = tiny(ScenarioBuilder::new(4)).run();
        assert!(report.committed_txs > 0);
        assert_eq!(report.label, "Thunderbolt");
        assert_eq!(report.workload, "smallbank");
        assert_eq!(report.replicas, 4);
    }

    #[test]
    fn every_knob_lands_in_the_cluster_config() {
        let builder = ScenarioBuilder::new(7)
            .engine(ExecutionMode::Tusk)
            .rounds(17)
            .seed(99)
            .label("custom")
            .latency(LatencyModel::Fixed { micros: 5 })
            .executors(3, 48)
            .validators(5)
            .reconfig(ReconfigConfig::new(4, 10))
            .skip_blocks(true)
            .byzantine(ReplicaId::new(2), ByzantineBehavior::Equivocate)
            .tune(|system| system.pipelined_commit = false);
        let config = builder.config();
        assert_eq!(config.system.n_replicas, 7);
        assert_eq!(config.mode, ExecutionMode::Tusk);
        assert_eq!(config.system.max_rounds, 17);
        assert_eq!(config.seed, 99);
        assert_eq!(config.label.as_deref(), Some("custom"));
        assert_eq!(config.system.latency, LatencyModel::Fixed { micros: 5 });
        assert_eq!(config.system.ce.executors, 3);
        assert_eq!(config.system.ce.batch_size, 48);
        assert_eq!(config.system.validators, 5);
        assert_eq!(config.system.reconfig, ReconfigConfig::new(4, 10));
        assert!(config.use_skip_blocks);
        assert!(!config.system.pipelined_commit);
        assert_eq!(
            config.byzantine,
            Some((ReplicaId::new(2), ByzantineBehavior::Equivocate))
        );
        assert_eq!(config.label(), "custom");
    }

    #[test]
    fn builder_runs_non_smallbank_workloads_with_faults() {
        let report = tiny(ScenarioBuilder::new(4))
            .workload(ContractWorkloadConfig {
                slots: 64,
                ..ContractWorkloadConfig::default()
            })
            .faults(FaultPlan::crash_replicas(4, 1, SimTime::ZERO))
            .run();
        assert!(report.committed_txs > 0, "f=1 crash must not halt commits");
        assert_eq!(report.workload, "contract");
    }

    #[test]
    fn build_exposes_the_simulation_for_inspection() {
        let mut sim = tiny(ScenarioBuilder::new(4)).seed(3).build();
        let report = sim.run();
        assert!(report.committed_txs > 0);
        assert!(sim.replica(ReplicaId::new(0)).metrics().committed_txs > 0);
        assert_eq!(sim.workload_name(), "smallbank");
    }
}
