//! One out-of-process replica: a [`Replica`] state machine driven by a real
//! [`TcpTransport`] instead of the discrete-event simulator.
//!
//! The launcher (`tb-launcher`) expands a
//! [`RealNetPlan`](crate::scenario::RealNetPlan) into one [`NodeSpec`] per
//! replica, ships each spec to a child process (hex-encoded in an
//! environment variable), and collects one [`NodeReport`] per process from
//! stdout. Both structs implement [`Wire`], so the whole exchange uses the
//! same versioned encoding as the replica-to-replica protocol.
//!
//! # Determinism
//!
//! A node does not receive client transactions from anywhere: it expands the
//! SmallBank spec into the *shared* client stream locally and enqueues the
//! transactions whose home shard it currently serves, exactly as the sim
//! harness routes them. Under lockstep (complete rounds) with full batches,
//! block `r` of shard `i` contains positions `[r·b, (r+1)·b)` of the
//! shard-`i` subsequence of that stream regardless of wall-clock timing —
//! which is why a TCP run and a sim run of the same scenario commit the same
//! order (see `docs/NET.md`).

use crate::cluster::{ClusterConfig, ExecutionMode};
use crate::messages::Message;
use crate::metrics::{RoundCommitSample, RunReport};
use crate::replica::{Destination, Replica};
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::{Duration, Instant};
use tb_network::{RecvError, TcpPeer, TcpTransport, Transport};
use tb_types::wire::{Wire, WireError, WireReader, WireWriter};
use tb_types::{CeConfig, ReplicaId, SimTime, StorageBackend, StorageConfig};
use tb_workload::{SmallBankConfig, SmallBankWorkload, Workload};

/// How long a node keeps serving acks and vertices after reaching its own
/// commit target, so slower peers can finish their last rounds.
const LINGER: Duration = Duration::from_millis(500);

/// Receive poll granularity of the node event loop.
const RECV_TIMEOUT: Duration = Duration::from_millis(50);

/// Everything one node process needs to run: its identity, the full peer
/// table, the scalar cluster knobs, and the compact SmallBank spec it
/// expands into the shared client stream.
///
/// The cluster configuration is rebuilt via [`NodeSpec::cluster_config`]
/// from [`ClusterConfig::thunderbolt`] defaults plus the listed overrides;
/// the launcher's in-process sim twin MUST use the same reconstruction so
/// both paths run the identical configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// This node's replica id (index into `ports`).
    pub node: u32,
    /// Committee size.
    pub replicas: u32,
    /// Localhost TCP port of every replica, indexed by replica id.
    pub ports: Vec<u16>,
    /// Execution engine.
    pub mode: ExecutionMode,
    /// Cluster seed (folded into the workload stream, as in the sim).
    pub seed: u64,
    /// Wait for complete rounds before advancing (digest comparability).
    pub lockstep: bool,
    /// Prefer skip blocks on preplay recovery.
    pub use_skip_blocks: bool,
    /// Leader-round budget; the node stops after `max_rounds / 2` commits.
    pub max_rounds: u64,
    /// Preplay executor threads.
    pub executors: u32,
    /// Transactions per block.
    pub batch: u32,
    /// Validation worker threads.
    pub validators: u32,
    /// Synthetic per-operation cost in nanoseconds (0 for smoke runs).
    pub op_cost_ns: u64,
    /// Report label (empty string = engine default).
    pub label: String,
    /// Hard wall-clock deadline for the whole run, in milliseconds.
    pub run_deadline_millis: u64,
    /// The SmallBank spec, shipped untransformed; the node applies the same
    /// `configure_for_cluster(replicas, seed)` retargeting as the sim.
    pub smallbank: SmallBankConfig,
    /// Storage backend the node keeps its committed state in. A durable
    /// backend writes under `storage.data_dir/replica-<node>`, so a node
    /// restarted with the same spec recovers its pre-crash state.
    pub storage: StorageConfig,
}

impl NodeSpec {
    /// Rebuilds the per-replica cluster configuration this spec describes.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::thunderbolt(self.replicas);
        config.mode = self.mode;
        config.seed = self.seed;
        config.lockstep = self.lockstep;
        config.use_skip_blocks = self.use_skip_blocks;
        config.system.max_rounds = self.max_rounds;
        let mut ce = CeConfig::new(self.executors as usize, self.batch as usize);
        ce.synthetic_op_cost_ns = self.op_cost_ns;
        config.system.ce = ce;
        config.system.validators = self.validators as usize;
        config.system.storage = self.storage.clone();
        if !self.label.is_empty() {
            config.label = Some(self.label.clone());
        }
        config
    }

    /// The peer table as socket addresses on localhost.
    pub fn peers(&self) -> Vec<TcpPeer> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, &port)| TcpPeer {
                id: ReplicaId::new(i as u32),
                addr: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port),
            })
            .collect()
    }

    /// Rounds the node must see committed before it stops (the same target
    /// as [`ClusterSimulation::run`](crate::cluster::ClusterSimulation)).
    pub fn target_commits(&self) -> usize {
        (self.max_rounds / 2).max(1) as usize
    }
}

impl Wire for NodeSpec {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.node);
        w.put_u32(self.replicas);
        w.put_len(self.ports.len());
        for &port in &self.ports {
            w.put_u16(port);
        }
        w.put_u8(match self.mode {
            ExecutionMode::Thunderbolt => 0,
            ExecutionMode::ThunderboltOcc => 1,
            ExecutionMode::Tusk => 2,
        });
        w.put_u64(self.seed);
        w.put_bool(self.lockstep);
        w.put_bool(self.use_skip_blocks);
        w.put_u64(self.max_rounds);
        w.put_u32(self.executors);
        w.put_u32(self.batch);
        w.put_u32(self.validators);
        w.put_u64(self.op_cost_ns);
        self.label.encode(w);
        w.put_u64(self.run_deadline_millis);
        w.put_u64(self.smallbank.accounts);
        w.put_f64(self.smallbank.theta);
        w.put_f64(self.smallbank.pr_read);
        w.put_f64(self.smallbank.cross_shard_fraction);
        w.put_u32(self.smallbank.n_shards);
        w.put_i64(self.smallbank.max_amount);
        w.put_i64(self.smallbank.initial_balance);
        w.put_u64(self.smallbank.seed);
        w.put_u8(match self.storage.backend {
            StorageBackend::Mem => 0,
            StorageBackend::Wal => 1,
        });
        self.storage.data_dir.encode(w);
        w.put_u64(self.storage.compact_wal_bytes);
        w.put_u64(self.storage.flush_buffered_writes);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = r.u32()?;
        let replicas = r.u32()?;
        let n_ports = r.seq_len()?;
        let mut ports = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            ports.push(r.u16()?);
        }
        let mode = match r.u8()? {
            0 => ExecutionMode::Thunderbolt,
            1 => ExecutionMode::ThunderboltOcc,
            2 => ExecutionMode::Tusk,
            tag => {
                return Err(WireError::InvalidTag {
                    type_name: "ExecutionMode",
                    tag: u32::from(tag),
                })
            }
        };
        Ok(NodeSpec {
            node,
            replicas,
            ports,
            mode,
            seed: r.u64()?,
            lockstep: r.bool()?,
            use_skip_blocks: r.bool()?,
            max_rounds: r.u64()?,
            executors: r.u32()?,
            batch: r.u32()?,
            validators: r.u32()?,
            op_cost_ns: r.u64()?,
            label: String::decode(r)?,
            run_deadline_millis: r.u64()?,
            smallbank: SmallBankConfig {
                accounts: r.u64()?,
                theta: r.f64()?,
                pr_read: r.f64()?,
                cross_shard_fraction: r.f64()?,
                n_shards: r.u32()?,
                max_amount: r.i64()?,
                initial_balance: r.i64()?,
                seed: r.u64()?,
            },
            storage: StorageConfig {
                backend: match r.u8()? {
                    0 => StorageBackend::Mem,
                    1 => StorageBackend::Wal,
                    tag => {
                        return Err(WireError::InvalidTag {
                            type_name: "StorageBackend",
                            tag: u32::from(tag),
                        })
                    }
                },
                data_dir: String::decode(r)?,
                compact_wal_bytes: r.u64()?,
                flush_buffered_writes: r.u64()?,
            },
        })
    }
}

/// What one node process reports back to the launcher when it stops.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// The reporting replica.
    pub node: u32,
    /// Committed transactions (single-shard + cross-shard).
    pub committed_txs: u64,
    /// Committed single-shard transactions.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions.
    pub cross_shard_txs: u64,
    /// Preplayed blocks discarded by validation.
    pub invalid_blocks: u64,
    /// Highest DAG round reached.
    pub highest_round: u64,
    /// Run duration up to the last commit, in (wall-clock) microseconds.
    pub duration_micros: u64,
    /// Summed per-transaction commit latencies in seconds.
    pub total_latency_secs: f64,
    /// Median per-transaction commit latency in seconds.
    pub latency_p50_secs: f64,
    /// 99th-percentile per-transaction commit latency in seconds.
    pub latency_p99_secs: f64,
    /// Final FNV-1a commit-order digest.
    pub commit_digest: u64,
    /// Per-round commit samples (digest snapshots included), the basis of
    /// both cross-node and sim-vs-TCP agreement checks.
    pub round_commits: Vec<RoundCommitSample>,
    /// Messages handed to the transport.
    pub msgs_sent: u64,
    /// Messages delivered to this node.
    pub msgs_delivered: u64,
    /// Messages that could not be sent (peer connect/write failures).
    pub msgs_dropped: u64,
    /// Wire-encoded payload bytes sent.
    pub bytes_sent: u64,
    /// Wire-encoded payload bytes delivered.
    pub bytes_delivered: u64,
}

impl Wire for NodeReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.node);
        w.put_u64(self.committed_txs);
        w.put_u64(self.single_shard_txs);
        w.put_u64(self.cross_shard_txs);
        w.put_u64(self.invalid_blocks);
        w.put_u64(self.highest_round);
        w.put_u64(self.duration_micros);
        w.put_f64(self.total_latency_secs);
        w.put_f64(self.latency_p50_secs);
        w.put_f64(self.latency_p99_secs);
        w.put_u64(self.commit_digest);
        self.round_commits.encode(w);
        w.put_u64(self.msgs_sent);
        w.put_u64(self.msgs_delivered);
        w.put_u64(self.msgs_dropped);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.bytes_delivered);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeReport {
            node: r.u32()?,
            committed_txs: r.u64()?,
            single_shard_txs: r.u64()?,
            cross_shard_txs: r.u64()?,
            invalid_blocks: r.u64()?,
            highest_round: r.u64()?,
            duration_micros: r.u64()?,
            total_latency_secs: r.f64()?,
            latency_p50_secs: r.f64()?,
            latency_p99_secs: r.f64()?,
            commit_digest: r.u64()?,
            round_commits: Vec::<RoundCommitSample>::decode(r)?,
            msgs_sent: r.u64()?,
            msgs_delivered: r.u64()?,
            msgs_dropped: r.u64()?,
            bytes_sent: r.u64()?,
            bytes_delivered: r.u64()?,
        })
    }
}

impl NodeReport {
    /// Folds this node's counters into a [`RunReport`] shaped like a sim
    /// run's, so real-net rows can reuse the report tooling.
    pub fn to_run_report(&self, label: &str, workload: &str, replicas: u32) -> RunReport {
        RunReport {
            label: label.to_string(),
            workload: workload.to_string(),
            replicas,
            committed_txs: self.committed_txs,
            single_shard_txs: self.single_shard_txs,
            cross_shard_txs: self.cross_shard_txs,
            invalid_blocks: self.invalid_blocks,
            duration: SimTime::from_micros(self.duration_micros),
            total_latency_secs: self.total_latency_secs,
            latency_p50_secs: self.latency_p50_secs,
            latency_p99_secs: self.latency_p99_secs,
            commit_order_digest: format!("{:016x}", self.commit_digest),
            round_commits: self.round_commits.clone(),
            highest_round: tb_types::Round::new(self.highest_round),
            msgs_sent: self.msgs_sent,
            msgs_delivered: self.msgs_delivered,
            msgs_dropped: self.msgs_dropped,
            bytes_sent: self.bytes_sent,
            bytes_delivered: self.bytes_delivered,
            ..RunReport::default()
        }
    }
}

/// Runs one replica over real TCP to completion, per `spec`.
///
/// Binds the node's listener, dials peers lazily on first send (with the
/// transport's connect deadline absorbing start-up skew), expands the
/// client stream locally, and drives the replica until it has seen
/// [`NodeSpec::target_commits`] round commits (plus a short linger for
/// slower peers) or the wall-clock deadline expires.
pub fn run_node(spec: NodeSpec) -> io::Result<NodeReport> {
    let config = spec.cluster_config();
    let batch = config.system.ce.batch_size;
    let id = ReplicaId::new(spec.node);
    let mut replica = Replica::new(id, config);

    let mut workload: Box<dyn Workload> = Box::new(SmallBankWorkload::new(spec.smallbank));
    workload.configure_for_cluster(spec.replicas, spec.seed);
    replica.load_state(workload.initial_state());

    let peers = spec.peers();
    let mut transport: TcpTransport<Message> = TcpTransport::bind(id, peers)?;

    let started = Instant::now();
    let deadline = started + Duration::from_millis(spec.run_deadline_millis.max(1));
    let target_commits = spec.target_commits();

    // Prime the client queue before the first proposal, as the sim does.
    top_up(
        &mut replica,
        workload.as_mut(),
        batch,
        spec.replicas,
        SimTime::ZERO,
    );
    let outbound = replica.start(SimTime::ZERO);
    let _ = replica.take_busy();
    dispatch(&mut transport, id, outbound);

    let mut linger_until: Option<Instant> = None;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if let Some(until) = linger_until {
            if now >= until {
                break;
            }
        }
        match transport.recv_timeout(RECV_TIMEOUT) {
            Ok(inbound) => {
                let at = SimTime::from_micros(started.elapsed().as_micros() as u64);
                let outbound = replica.handle(inbound.from, inbound.msg, at);
                // Execution cost was paid in real time on this thread; the
                // busy tracker only matters to the simulated clock.
                let _ = replica.take_busy();
                dispatch(&mut transport, id, outbound);
                if replica.pending_client_txs() < batch {
                    top_up(&mut replica, workload.as_mut(), batch, spec.replicas, at);
                }
            }
            Err(RecvError::TimedOut) => {}
            Err(RecvError::Closed) => break,
        }
        if linger_until.is_none() && replica.metrics().round_commits.len() >= target_commits {
            linger_until = Some(Instant::now() + LINGER);
        }
    }

    let stats = transport.stats();
    transport.shutdown();

    let metrics = replica.metrics();
    let duration_micros = metrics
        .round_commits
        .last()
        .map(|sample| sample.committed_at.as_micros())
        .unwrap_or_else(|| started.elapsed().as_micros() as u64);
    Ok(NodeReport {
        node: spec.node,
        committed_txs: metrics.committed_txs,
        single_shard_txs: metrics.single_shard_txs,
        cross_shard_txs: metrics.cross_shard_txs,
        invalid_blocks: metrics.invalid_blocks,
        highest_round: replica.current_round().as_u64(),
        duration_micros,
        total_latency_secs: metrics.total_latency_secs,
        latency_p50_secs: metrics.latency_hist.quantile_secs(0.5),
        latency_p99_secs: metrics.latency_hist.quantile_secs(0.99),
        commit_digest: metrics.commit_order_digest,
        round_commits: metrics.round_commits.clone(),
        msgs_sent: stats.sent,
        msgs_delivered: stats.delivered,
        msgs_dropped: stats.dropped,
        bytes_sent: stats.bytes_sent,
        bytes_delivered: stats.bytes_delivered,
    })
}

/// Generates the shared client stream and enqueues this replica's share
/// until its queue holds two batches — the open-loop client. Transactions
/// homed on other shards are *generated and discarded*: stream positions
/// must advance identically on every node.
fn top_up(
    replica: &mut Replica,
    workload: &mut dyn Workload,
    batch: usize,
    replicas: u32,
    now: SimTime,
) {
    let goal = batch * 2;
    // The shard filter passes roughly 1/n of the stream, so the generation
    // cap scales with the committee where the sim's (which routes every
    // transaction to some replica) does not.
    let cap = batch * 8 * replicas.max(1) as usize;
    let mut generated = 0usize;
    while replica.pending_client_txs() < goal && generated < cap {
        let tx = workload.next_transaction(now);
        generated += 1;
        if tx.home_shard() == replica.current_shard() {
            replica.enqueue(tx);
        }
    }
}

fn dispatch(
    transport: &mut TcpTransport<Message>,
    from: ReplicaId,
    outbound: Vec<crate::replica::Outbound>,
) {
    for out in outbound {
        // Send failures surface in the transport's dropped counters; a
        // lockstep run that loses a frame stalls and hits the deadline,
        // which the launcher reports as the node falling short of target.
        let _ = match out.dest {
            Destination::Broadcast => transport.broadcast(from, out.msg),
            Destination::To(to) => transport.send(from, to, out.msg),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec {
            node: 1,
            replicas: 4,
            ports: vec![9001, 9002, 9003, 9004],
            mode: ExecutionMode::ThunderboltOcc,
            seed: 42,
            lockstep: true,
            use_skip_blocks: false,
            max_rounds: 8,
            executors: 2,
            batch: 32,
            validators: 2,
            op_cost_ns: 0,
            label: "real-net".to_string(),
            run_deadline_millis: 30_000,
            smallbank: SmallBankConfig {
                accounts: 128,
                seed: 11,
                ..SmallBankConfig::default()
            },
            storage: StorageConfig::wal("/tmp/tb-node-test"),
        }
    }

    #[test]
    fn node_spec_round_trips_and_rebuilds_the_config() {
        let spec = spec();
        let bytes = spec.to_wire_bytes();
        assert_eq!(NodeSpec::from_wire_bytes(&bytes), Ok(spec.clone()));

        let config = spec.cluster_config();
        assert_eq!(config.system.n_replicas, 4);
        assert_eq!(config.mode, ExecutionMode::ThunderboltOcc);
        assert!(config.lockstep);
        assert_eq!(config.system.ce.batch_size, 32);
        assert_eq!(config.system.validators, 2);
        assert_eq!(
            config.system.storage,
            StorageConfig::wal("/tmp/tb-node-test")
        );
        assert_eq!(config.label.as_deref(), Some("real-net"));
        assert_eq!(spec.target_commits(), 4);
        assert_eq!(spec.peers()[2].id, ReplicaId::new(2));
        assert_eq!(spec.peers()[2].addr.port(), 9003);
    }

    #[test]
    fn node_report_round_trips_and_converts_to_a_run_report() {
        let report = NodeReport {
            node: 2,
            committed_txs: 640,
            single_shard_txs: 640,
            cross_shard_txs: 0,
            invalid_blocks: 0,
            highest_round: 9,
            duration_micros: 1_500_000,
            total_latency_secs: 12.5,
            latency_p50_secs: 0.02,
            latency_p99_secs: 0.08,
            commit_digest: 0xdead_beef,
            round_commits: vec![RoundCommitSample {
                dag: 0,
                round: tb_types::Round::new(1),
                committed_at: SimTime::from_millis(250),
                digest: 0xdead_beef,
            }],
            msgs_sent: 100,
            msgs_delivered: 90,
            msgs_dropped: 0,
            bytes_sent: 40_000,
            bytes_delivered: 36_000,
        };
        let bytes = report.to_wire_bytes();
        assert_eq!(NodeReport::from_wire_bytes(&bytes), Ok(report.clone()));

        let run = report.to_run_report("Thunderbolt", "smallbank", 4);
        assert_eq!(run.committed_txs, 640);
        assert_eq!(run.commit_order_digest, format!("{:016x}", 0xdead_beefu64));
        assert!((run.throughput_tps() - 640.0 / 1.5).abs() < 1e-6);
        assert_eq!(run.bytes_sent, 40_000);
    }
}
