//! Thunderbolt: concurrent smart contract execution with non-blocking
//! reconfiguration for sharded DAGs (EDBT 2026) — reproduction.
//!
//! Every replica doubles as a *shard proposer*: it preplays the single-shard
//! transactions of its shard with the concurrent executor (`tb-executor`),
//! ships the preplay outcomes in a block through a Tusk-style DAG
//! (`tb-dag`), and validates the preplay results of every other shard after
//! consensus. Cross-shard transactions bypass the preplay (rule P1) and are
//! executed deterministically in commit order. Shift blocks rotate the
//! shard-to-replica assignment without pausing the DAG (Section 6).
//!
//! The crate is organised as:
//!
//! * [`messages`] — the wire protocol between replicas,
//! * [`proposer`] — the shard proposer (client queues, rules P1–P6, Shift
//!   decisions),
//! * [`commit`] — the post-consensus pipeline (G1/G2 ordering, parallel
//!   validation, deterministic cross-shard execution, storage apply),
//! * [`replica`] — the per-replica state machine tying DAG construction,
//!   commit and reconfiguration together,
//! * [`cluster`] — the multi-replica simulation harness used by the
//!   examples, the integration tests and every system benchmark
//!   (Figures 13–17),
//! * [`scenario`] — the fluent [`ScenarioBuilder`] assembling engine,
//!   workload, rounds, faults, seed and label into a runnable simulation,
//! * [`metrics`] — run reports (throughput, latency, per-round commit times),
//! * [`campaign`] — the chaos campaign: adversarial scenarios (Byzantine
//!   proposers, healing partitions, WAN tails, crashes + reconfiguration)
//!   with machine-checked safety/liveness invariants.
//!
//! The library is named `tb_core`; downstream users normally reach it
//! through the workspace façade crate `thunderbolt` and its prelude
//! (`use thunderbolt::prelude::*`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cluster;
pub mod commit;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod proposer;
pub mod replica;
pub mod scenario;

pub use campaign::{
    assert_honest_agreement, check_honest_agreement, default_campaign, run_campaign,
    CampaignProfile, CampaignScenario, Invariant, InvariantContext, ScenarioResult,
};
pub use cluster::{ClusterConfig, ClusterSimulation, ExecutionMode};
pub use commit::{CommitOutput, CommitPipeline, PostCommitExecution};
pub use messages::Message;
pub use metrics::{LatencyHistogram, RoundCommitSample, RunReport};
pub use node::{run_node, NodeReport, NodeSpec};
pub use proposer::{ByzantineBehavior, ProposalDecision, ShardProposer};
pub use replica::{Destination, Outbound, Replica};
pub use scenario::{RealNetPlan, ScenarioBuilder, ScenarioError, TransportKind};
