//! Regression gate for the `coalesced_batches: 0` pathology (the closed
//! ROADMAP item 2).
//!
//! The pipelined commit path's applier thread drains every write batch that
//! queued up into a single [`MemStore::apply_many`] call, and
//! `CommitOutput::coalesced_batches` counts how many batches were drained
//! together with at least one other. Three consecutive committed
//! `BENCH_report.json` baselines recorded `coalesced_batches: 0` on every
//! scenario: the old one-batch mpsc handoff woke the applier per batch, and
//! because a `MemStore` apply is far cheaper than validating the next
//! block, the applier never fell behind — the coalescing machinery was dead
//! weight on every measured configuration.
//!
//! The bounded drain-on-wake `ApplyQueue` fixed this: the applier now waits
//! until a second batch is queued (or the queue closes) before draining, so
//! every sub-DAG with two or more valid blocks coalesces *deterministically*
//! on any scheduler, including a single hardware thread. This file pins the
//! fix from both sides:
//!
//! * the accounting stays exclusive to the pipelined applier (the staged
//!   path never reports coalescing) and a deep backlog commits identically
//!   on both paths;
//! * the formerly-`#[ignore]`d red anchor — a backlogged pipelined commit
//!   must actually coalesce — is now a hard CI gate. If it ever goes red
//!   again, the drain policy regressed to one-batch handoffs.

use tb_core::commit::{CommitPipeline, PostCommitExecution};
use tb_dag::{CommittedSubDag, DagBuilder};
use tb_executor::ConcurrentExecutor;
use tb_storage::MemStore;
use tb_types::{
    BlockKind, BlockPayload, CeConfig, ClientId, Committee, ContractCall, DagId, PreplayedTx,
    ReplicaId, Round, SimTime, SmallBankProcedure, Transaction, TxId,
};

fn funded_store(accounts: u64) -> MemStore {
    let store = MemStore::new();
    store.load(tb_workload::initial_smallbank_state(
        accounts,
        tb_contracts::SMALLBANK_DEFAULT_BALANCE,
    ));
    store
}

fn payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
    Transaction::new(
        TxId::new(id),
        ClientId::new(0),
        ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
        1,
        SimTime::ZERO,
    )
}

/// Preplays `rounds` consecutive SmallBank payment blocks, each chained on
/// the previous block's writes, and wraps them in one committed sub-DAG —
/// the shape the pipelined G1 path overlaps on.
fn backlogged_sub_dag(accounts: u64, rounds: usize, per_block: usize) -> CommittedSubDag {
    let scratch = funded_store(accounts);
    let ce = ConcurrentExecutor::new(CeConfig::new(2, 64).without_synthetic_cost());
    let mut blocks: Vec<Vec<PreplayedTx>> = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..rounds {
        let txs: Vec<Transaction> = (0..per_block)
            .map(|i| {
                next_id += 1;
                payment(next_id, 0, ((i as u64) % (accounts / 2)) * 2, 1)
            })
            .collect();
        let result = ce.preplay(&txs, &scratch);
        result.apply_to(&scratch);
        blocks.push(result.preplayed);
    }

    let committee = Committee::new(4);
    let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
    let mut vertices = Vec::new();
    for (i, block) in blocks.into_iter().enumerate() {
        let payload = BlockPayload {
            single_shard: block,
            cross_shard: vec![],
        };
        vertices.push(builder.make_vertex(
            ReplicaId::new((i % 4) as u32),
            Round::new(i as u64 / 4),
            BlockKind::Normal,
            payload,
            vec![],
        ));
    }
    let leader = vertices.last().expect("at least one vertex").clone();
    CommittedSubDag {
        leader,
        leader_round: Round::new(rounds as u64 / 4 + 1),
        vertices,
    }
}

/// Green half of the anchor: `coalesced_batches` is an exclusive property
/// of the pipelined applier (the staged path always reports zero), and a
/// deep backlog of chained blocks commits identically on both paths — the
/// same transactions in the same order ending in the same state — whether
/// or not the applier happened to coalesce.
#[test]
fn coalescing_accounting_is_pipelined_only_and_backlogs_stay_correct() {
    let sub_dag = backlogged_sub_dag(16, 40, 8);

    let staged_store = funded_store(16);
    let staged = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
    let staged_out = staged.process(&sub_dag, &staged_store, SimTime::from_secs(1));
    assert_eq!(
        staged_out.coalesced_batches, 0,
        "the staged path has no applier thread, so it must never coalesce"
    );
    assert_eq!(staged_out.invalid_blocks, 0);

    // The staged path applies one batch per valid block.
    assert_eq!(staged_out.apply_calls, 40);

    let pipelined_store = funded_store(16);
    let pipelined = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
    let pipelined_out = pipelined.process(&sub_dag, &pipelined_store, SimTime::from_secs(1));
    assert_eq!(pipelined_out.invalid_blocks, 0);
    // The pipelined applier drains at least two batches per wake-up, so it
    // needs strictly fewer apply calls than there are blocks.
    assert!(
        pipelined_out.apply_calls < 40,
        "pipelined path made {} apply calls for 40 blocks — no coalescing",
        pipelined_out.apply_calls
    );

    // Identical commit sequence and state regardless of coalescing.
    assert_eq!(staged_out.committed, pipelined_out.committed);
    assert_eq!(
        staged_out.single_shard_committed,
        pipelined_out.single_shard_committed
    );
    let diff = staged_store
        .snapshot()
        .diff_values(&pipelined_store.snapshot());
    assert!(diff.is_empty(), "state divergence on {diff:?}");
}

/// The promoted red anchor of ROADMAP item 2, now a hard gate: a pipelined
/// commit of 160 chained blocks must coalesce. With the drain-on-wake
/// `ApplyQueue` the applier waits for a second batch before draining, so
/// this holds deterministically on any scheduler — `#[ignore]` removed the
/// day the drain policy made coalescing a property of the design instead of
/// an accident of preemption.
#[test]
fn backlogged_pipelined_commit_actually_coalesces() {
    let sub_dag = backlogged_sub_dag(16, 160, 4);
    let store = funded_store(16);
    let pipeline = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
    let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
    assert_eq!(output.invalid_blocks, 0);
    assert!(
        output.coalesced_batches > 0,
        "160 back-to-back blocks never coalesced: the drain policy in \
         commit_preplayed_pipelined regressed to one-batch handoffs \
         (the coalesced_batches:0 pathology)"
    );
    // 160 blocks drained at >= 2 batches per wake-up (plus at most one
    // single-batch flush at close) bounds the apply calls at 81.
    assert!(
        output.apply_calls <= 81,
        "{} apply calls for 160 blocks",
        output.apply_calls
    );
}
