//! Regression anchor for the `coalesced_batches: 0` pathology (ROADMAP
//! item 2).
//!
//! The pipelined commit path's applier thread drains every write batch that
//! queued up while it was busy into a single [`MemStore::apply_many`] call,
//! and `CommitOutput::coalesced_batches` counts how many batches were
//! drained together with at least one other. Every committed
//! `BENCH_report.json` so far records `coalesced_batches: 0` on every
//! scenario: storage apply is so much faster than validation that the
//! applier never falls behind, so the coalescing machinery is dead weight on
//! the measured configurations.
//!
//! This file pins that situation from both sides:
//!
//! * a green test proving the accounting is exclusive to the pipelined
//!   applier and that a backlog, when it does occur, is *correct* (the
//!   pipelined result matches the staged path exactly, coalesced or not);
//! * an `#[ignore]`d red anchor asserting that a deliberately backlogged
//!   pipelined commit actually coalesces. It stays ignored because whether
//!   the applier falls behind depends on OS scheduling (on a single
//!   hardware thread the applier can only run when the validator is
//!   preempted); run it with `cargo test -p tb-core --test
//!   coalescing_regression -- --ignored` when working on ROADMAP item 2.
//!   The day the pipeline reliably produces overlap (e.g. an apply cost
//!   model, or batch-size-aware draining), promote it to a normal test and
//!   drop this note.

use tb_core::commit::{CommitPipeline, PostCommitExecution};
use tb_dag::{CommittedSubDag, DagBuilder};
use tb_executor::ConcurrentExecutor;
use tb_storage::MemStore;
use tb_types::{
    BlockKind, BlockPayload, CeConfig, ClientId, Committee, ContractCall, DagId, PreplayedTx,
    ReplicaId, Round, SimTime, SmallBankProcedure, Transaction, TxId,
};

fn funded_store(accounts: u64) -> MemStore {
    let store = MemStore::new();
    store.load(tb_workload::initial_smallbank_state(
        accounts,
        tb_contracts::SMALLBANK_DEFAULT_BALANCE,
    ));
    store
}

fn payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
    Transaction::new(
        TxId::new(id),
        ClientId::new(0),
        ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
        1,
        SimTime::ZERO,
    )
}

/// Preplays `rounds` consecutive SmallBank payment blocks, each chained on
/// the previous block's writes, and wraps them in one committed sub-DAG —
/// the shape the pipelined G1 path overlaps on.
fn backlogged_sub_dag(accounts: u64, rounds: usize, per_block: usize) -> CommittedSubDag {
    let scratch = funded_store(accounts);
    let ce = ConcurrentExecutor::new(CeConfig::new(2, 64).without_synthetic_cost());
    let mut blocks: Vec<Vec<PreplayedTx>> = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..rounds {
        let txs: Vec<Transaction> = (0..per_block)
            .map(|i| {
                next_id += 1;
                payment(next_id, 0, ((i as u64) % (accounts / 2)) * 2, 1)
            })
            .collect();
        let result = ce.preplay(&txs, &scratch);
        result.apply_to(&scratch);
        blocks.push(result.preplayed);
    }

    let committee = Committee::new(4);
    let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
    let mut vertices = Vec::new();
    for (i, block) in blocks.into_iter().enumerate() {
        let payload = BlockPayload {
            single_shard: block,
            cross_shard: vec![],
        };
        vertices.push(builder.make_vertex(
            ReplicaId::new((i % 4) as u32),
            Round::new(i as u64 / 4),
            BlockKind::Normal,
            payload,
            vec![],
        ));
    }
    let leader = vertices.last().expect("at least one vertex").clone();
    CommittedSubDag {
        leader,
        leader_round: Round::new(rounds as u64 / 4 + 1),
        vertices,
    }
}

/// Green half of the anchor: `coalesced_batches` is an exclusive property
/// of the pipelined applier (the staged path always reports zero), and a
/// deep backlog of chained blocks commits identically on both paths — the
/// same transactions in the same order ending in the same state — whether
/// or not the applier happened to coalesce.
#[test]
fn coalescing_accounting_is_pipelined_only_and_backlogs_stay_correct() {
    let sub_dag = backlogged_sub_dag(16, 40, 8);

    let staged_store = funded_store(16);
    let staged = CommitPipeline::new(PostCommitExecution::Parallel { workers: 2 });
    let staged_out = staged.process(&sub_dag, &staged_store, SimTime::from_secs(1));
    assert_eq!(
        staged_out.coalesced_batches, 0,
        "the staged path has no applier thread, so it must never coalesce"
    );
    assert_eq!(staged_out.invalid_blocks, 0);

    let pipelined_store = funded_store(16);
    let pipelined = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
    let pipelined_out = pipelined.process(&sub_dag, &pipelined_store, SimTime::from_secs(1));
    assert_eq!(pipelined_out.invalid_blocks, 0);

    // Identical commit sequence and state regardless of coalescing.
    assert_eq!(staged_out.committed, pipelined_out.committed);
    assert_eq!(
        staged_out.single_shard_committed,
        pipelined_out.single_shard_committed
    );
    let diff = staged_store
        .snapshot()
        .diff_values(&pipelined_store.snapshot());
    assert!(diff.is_empty(), "state divergence on {diff:?}");
}

/// Red anchor for ROADMAP item 2: a pipelined commit of 160 chained blocks
/// should leave the applier behind the validator at least once, making
/// `coalesced_batches > 0`. On the benchmark configurations it never does —
/// `BENCH_report.json` pins `coalesced_batches: 0` on every scenario — and
/// even this engineered backlog only coalesces when the OS preempts the
/// validator, so the assertion is documentation, not CI. See the module
/// docs for when to promote it.
#[test]
#[ignore = "documents the coalesced_batches:0 pathology (ROADMAP item 2); scheduling-dependent"]
fn backlogged_pipelined_commit_actually_coalesces() {
    let sub_dag = backlogged_sub_dag(16, 160, 4);
    let store = funded_store(16);
    let pipeline = CommitPipeline::new(PostCommitExecution::Pipelined { workers: 2 });
    let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
    assert_eq!(output.invalid_blocks, 0);
    assert!(
        output.coalesced_batches > 0,
        "160 back-to-back blocks never backlogged the applier: the \
         coalescing machinery in commit_preplayed_pipelined is dead code \
         on this machine (the coalesced_batches:0 pathology)"
    );
}
