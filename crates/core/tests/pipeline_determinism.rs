//! The staged commit pipeline must be a pure wall-clock optimisation:
//! commit order and applied state are identical between the pipelined and
//! the strictly staged (and the serial) commit paths, and on a multi-core
//! machine the pipelined path is measurably faster.

use std::collections::VecDeque;
use std::time::Instant;
use tb_core::commit::{CommitPipeline, PostCommitExecution};
use tb_core::{ClusterConfig, ExecutionMode, Message, Replica};
use tb_dag::{CommittedSubDag, DagBuilder};
use tb_executor::{strict_figures_enabled, ConcurrentExecutor};
use tb_storage::MemStore;
use tb_types::{
    BlockKind, BlockPayload, CeConfig, Committee, DagId, PreplayedTx, ReplicaId, Round, SimTime,
    SystemConfig, Transaction,
};
use tb_workload::{SmallBankConfig, SmallBankWorkload};

fn seeded_workload(accounts: u64, seed: u64) -> SmallBankWorkload {
    SmallBankWorkload::new(SmallBankConfig {
        accounts,
        n_shards: 1,
        theta: 0.85,
        seed,
        ..SmallBankConfig::default()
    })
}

fn funded_store(workload: &SmallBankWorkload) -> MemStore {
    let store = MemStore::new();
    store.load(workload.initial_state());
    store
}

/// Preplays `rounds` consecutive blocks of a seeded SmallBank workload, each
/// chained on the state the previous block left behind.
fn seeded_blocks(rounds: usize, per_block: usize, op_cost_ns: u64) -> Vec<Vec<PreplayedTx>> {
    let mut workload = seeded_workload(64, 7);
    let scratch = funded_store(&workload);
    let mut config = CeConfig::new(4, per_block);
    config.synthetic_op_cost_ns = op_cost_ns;
    let ce = ConcurrentExecutor::new(config);
    let mut blocks = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let txs = workload.batch(per_block, SimTime::ZERO);
        let result = ce.preplay(&txs, &scratch);
        result.apply_to(&scratch);
        blocks.push(result.preplayed);
    }
    blocks
}

fn sub_dag_of(blocks: &[Vec<PreplayedTx>]) -> CommittedSubDag {
    let committee = Committee::new(4);
    let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
    let mut vertices = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let payload = BlockPayload {
            single_shard: block.clone(),
            cross_shard: vec![],
        };
        vertices.push(builder.make_vertex(
            ReplicaId::new((i % 4) as u32),
            Round::new((i / 4) as u64),
            BlockKind::Normal,
            payload,
            vec![],
        ));
    }
    let leader = vertices.last().expect("at least one block").clone();
    CommittedSubDag {
        leader,
        leader_round: Round::new(1),
        vertices,
    }
}

/// Acceptance gate of the pipelined commit engine: a seeded 20-block
/// SmallBank run commits with >= 1.2x the throughput of the sequential
/// path (`PostCommitExecution::Serial`: one validation worker, no overlap
/// — the Tusk-style baseline), with identical final storage state. The
/// speedup combines parallel validation with the validate/apply overlap;
/// the overlap alone is not gated on wall-clock (the apply stage is a few
/// percent of stage time — see `pipeline.apply_share` in
/// `BENCH_report.json`), its correctness is what
/// `pipelined_and_staged_clusters_commit_identically` below pins down.
/// State equality is asserted unconditionally; the wall-clock inequality
/// only under `TB_STRICT_FIGURES=1` on a machine with at least two cores,
/// like every other wall-clock figure in the suite.
#[test]
fn pipelined_commit_beats_the_sequential_path_on_twenty_blocks() {
    let blocks = seeded_blocks(20, 100, 20_000);
    let sub_dag = sub_dag_of(&blocks);
    let workload = seeded_workload(64, 7);

    let run = |execution: PostCommitExecution| {
        let store = funded_store(&workload);
        let pipeline = CommitPipeline::with_op_cost(execution, 20_000);
        let started = Instant::now();
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        (store, output, started.elapsed())
    };

    let (serial_store, serial_out, serial_elapsed) = run(PostCommitExecution::Serial);
    let (pipelined_store, pipelined_out, pipelined_elapsed) =
        run(PostCommitExecution::Pipelined { workers: 8 });

    assert_eq!(serial_out.invalid_blocks, 0, "honest blocks must validate");
    assert_eq!(pipelined_out.invalid_blocks, 0);
    assert_eq!(serial_out.committed, pipelined_out.committed);
    let diff = serial_store
        .snapshot()
        .diff_values(&pipelined_store.snapshot());
    assert!(diff.is_empty(), "state divergence on {diff:?}");

    if strict_figures_enabled() {
        let speedup = serial_elapsed.as_secs_f64() / pipelined_elapsed.as_secs_f64().max(1e-9);
        assert!(
            speedup >= 1.2,
            "pipelined commit path is only {speedup:.2}x faster than the sequential path \
             (serial {serial_elapsed:?}, pipelined {pipelined_elapsed:?})"
        );
    }
}

/// All three post-commit execution paths — pipelined/parallel and
/// staged/serial — must commit byte-identical sequences: the FNV-1a fold
/// over the committed transaction ids (the same digest replicas and
/// `BENCH_report.json` carry) is pinned equal across every mode and worker
/// count, for honest and tampered inputs alike.
#[test]
fn all_commit_paths_agree_on_the_fnv1a_commit_digest() {
    let fnv = |committed: &[(tb_types::TxId, SimTime)]| -> u64 {
        committed
            .iter()
            .fold(tb_core::replica::COMMIT_DIGEST_SEED, |digest, (id, _)| {
                (digest ^ id.as_inner()).wrapping_mul(0x0100_0000_01b3)
            })
    };
    let mut blocks = seeded_blocks(8, 40, 0);
    // One tampered block: the digest agreement must also hold when the
    // paths discard a block (its transactions never enter the fold).
    blocks[3][0].outcome.write_set[0].value = tb_types::Value::int(999_999);
    let sub_dag = sub_dag_of(&blocks);
    let workload = seeded_workload(64, 7);

    let run = |execution: PostCommitExecution| {
        let store = funded_store(&workload);
        let pipeline = CommitPipeline::new(execution);
        let output = pipeline.process(&sub_dag, &store, SimTime::from_secs(1));
        (
            fnv(&output.committed),
            output.invalid_blocks,
            store.snapshot(),
        )
    };

    let (serial_digest, serial_invalid, serial_state) = run(PostCommitExecution::Serial);
    assert!(serial_invalid >= 1, "the tampered block must be discarded");
    for execution in [
        PostCommitExecution::Parallel { workers: 2 },
        PostCommitExecution::Parallel { workers: 8 },
        PostCommitExecution::Pipelined { workers: 2 },
        PostCommitExecution::Pipelined { workers: 8 },
    ] {
        let (digest, invalid, state) = run(execution);
        assert_eq!(invalid, serial_invalid, "{execution:?} discard divergence");
        assert_eq!(
            digest, serial_digest,
            "{execution:?} committed a different order than Serial"
        );
        let diff = state.diff_values(&serial_state);
        assert!(diff.is_empty(), "{execution:?} state diverged on {diff:?}");
    }
}

// ---------------------------------------------------------------------------
// Deterministic cluster comparison: pipelined vs strictly staged replicas
// must commit the same sequence and end in the same state.
// ---------------------------------------------------------------------------

fn cluster_config(pipelined: bool) -> ClusterConfig {
    cluster_config_with(pipelined, 4)
}

fn cluster_config_with(pipelined: bool, executors: usize) -> ClusterConfig {
    let mut system = SystemConfig::with_replicas(4);
    // Multi-worker preplay is safe here: the concurrent executor finalizes
    // its serialized order deterministically (batch order), so the emitted
    // blocks are independent of worker count and scheduling — pinned by
    // `executor_count_does_not_change_the_committed_sequence` below.
    system.ce = CeConfig::new(executors, 64).without_synthetic_cost();
    system.validators = 2;
    system.pipelined_commit = pipelined;
    ClusterConfig {
        system,
        mode: ExecutionMode::Thunderbolt,
        use_skip_blocks: false,
        seed: 7,
        label: None,
        byzantine: None,
        lockstep: false,
    }
}

/// Synchronous, wall-clock-free message driver (FIFO delivery, zero
/// latency): both runs see the exact same message schedule, so any
/// divergence can only come from the commit path itself.
fn run_synchronously(replicas: &mut [Replica], rounds_budget: usize) {
    let mut inbox: VecDeque<(ReplicaId, ReplicaId, Message)> = VecDeque::new();
    let now = SimTime::ZERO;
    let n = replicas.len();
    let enqueue = |inbox: &mut VecDeque<(ReplicaId, ReplicaId, Message)>,
                   from: ReplicaId,
                   outbound: tb_core::replica::Outbound| {
        match outbound.dest {
            tb_core::replica::Destination::Broadcast => {
                for to in 0..n {
                    inbox.push_back((from, ReplicaId::new(to as u32), outbound.msg.clone()));
                }
            }
            tb_core::replica::Destination::To(to) => inbox.push_back((from, to, outbound.msg)),
        }
    };
    for replica in replicas.iter_mut() {
        for outbound in replica.start(now) {
            enqueue(&mut inbox, replica.id(), outbound);
        }
    }
    let mut steps = 0usize;
    let budget = rounds_budget * n * n * 20;
    while let Some((from, to, msg)) = inbox.pop_front() {
        steps += 1;
        if steps > budget {
            break;
        }
        let replica = &mut replicas[to.as_inner() as usize];
        if replica.current_round().as_u64() >= rounds_budget as u64 {
            continue;
        }
        for outbound in replica.handle(from, msg, now) {
            enqueue(&mut inbox, replica.id(), outbound);
        }
    }
}

fn run_cluster(pipelined: bool) -> Vec<Replica> {
    run_cluster_with(cluster_config(pipelined))
}

fn run_cluster_with(cfg: ClusterConfig) -> Vec<Replica> {
    let mut workload = SmallBankWorkload::new(SmallBankConfig {
        accounts: 64,
        n_shards: 4,
        cross_shard_fraction: 0.2,
        seed: 99,
        ..SmallBankConfig::default()
    });
    let mut replicas: Vec<Replica> = (0..4)
        .map(|i| {
            let mut replica = Replica::new(ReplicaId::new(i), cfg.clone());
            replica.load_state(workload.initial_state());
            replica
        })
        .collect();
    // Route a seeded stream of transactions to the replica serving each
    // transaction's home shard (replica i serves shard i in DAG 0).
    let txs: Vec<Transaction> = (0..400)
        .map(|_| workload.next_transaction(SimTime::ZERO))
        .collect();
    for tx in txs {
        let home = tx.home_shard().as_inner() as usize;
        replicas[home].enqueue(tx);
    }
    run_synchronously(&mut replicas, 10);
    replicas
}

#[test]
fn pipelined_and_staged_clusters_commit_identically() {
    let pipelined = run_cluster(true);
    let staged = run_cluster(false);
    for (a, b) in pipelined.iter().zip(staged.iter()) {
        assert!(
            a.metrics().committed_txs > 0,
            "replica {} committed nothing",
            a.id()
        );
        assert_eq!(
            a.metrics().committed_txs,
            b.metrics().committed_txs,
            "replica {} committed different amounts",
            a.id()
        );
        assert_eq!(
            a.metrics().commit_order_digest,
            b.metrics().commit_order_digest,
            "replica {} committed a different order",
            a.id()
        );
        let diff = a.store().snapshot().diff_values(&b.store().snapshot());
        assert!(
            diff.is_empty(),
            "replica {} state diverged on {diff:?}",
            a.id()
        );
    }
    // The pipelined cluster must not be slower in *simulated* work: same
    // committed sequence means same round commits.
    assert_eq!(
        pipelined[0].metrics().round_commits.len(),
        staged[0].metrics().round_commits.len()
    );
}

#[test]
fn executor_count_does_not_change_the_committed_sequence() {
    // The pipelined commit path runs digest-gated in production with
    // multi-worker preplay; the deterministic finalize pass must make the
    // committed sequence a pure function of the scenario, whatever the
    // executor count.
    let reference = run_cluster_with(cluster_config_with(true, 1));
    assert!(reference
        .iter()
        .all(|replica| replica.metrics().committed_txs > 0));
    for executors in [2usize, 4, 8] {
        let run = run_cluster_with(cluster_config_with(true, executors));
        for (a, b) in run.iter().zip(reference.iter()) {
            assert_eq!(
                a.metrics().committed_txs,
                b.metrics().committed_txs,
                "replica {} committed different amounts with {executors} executors",
                a.id()
            );
            assert_eq!(
                a.metrics().commit_order_digest,
                b.metrics().commit_order_digest,
                "replica {} committed a different order with {executors} executors",
                a.id()
            );
            let diff = a.store().snapshot().diff_values(&b.store().snapshot());
            assert!(
                diff.is_empty(),
                "replica {} state diverged on {diff:?} with {executors} executors",
                a.id()
            );
        }
    }
}
