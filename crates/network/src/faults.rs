//! Declarative fault plans.
//!
//! The failure experiments (Figures 15–17) crash or silence specific replicas
//! at specific points of a run. A [`FaultPlan`] collects those actions up
//! front so a benchmark configuration fully describes the faults it injects,
//! and the cluster driver applies them when the simulated clock reaches the
//! scheduled time.

use crate::sim::SimNetwork;
use serde::{Deserialize, Serialize};
use tb_types::{ReplicaId, SimTime};

/// A single fault action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Crash the replica (no sending, no receiving).
    Crash(ReplicaId),
    /// Recover a crashed replica.
    Recover(ReplicaId),
    /// Silence the replica (it stops disseminating but keeps receiving) —
    /// the censorship behaviour reconfiguration defends against.
    Silence(ReplicaId),
    /// Undo a silence.
    Unsilence(ReplicaId),
    /// Block the directed link `from → to` (messages in that direction are
    /// dropped). Blocking one direction only yields an *asymmetric* partition.
    BlockLink(ReplicaId, ReplicaId),
    /// Heal a previously blocked directed link.
    UnblockLink(ReplicaId, ReplicaId),
}

/// A scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered collection of faults to inject during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crashes `count` replicas (the highest-numbered ones, matching the
    /// paper's "f replicas stop working" setup) at time `at`.
    pub fn crash_replicas(n: u32, count: u32, at: SimTime) -> Self {
        let mut plan = FaultPlan::none();
        for i in 0..count.min(n) {
            plan.push(at, FaultAction::Crash(ReplicaId::new(n - 1 - i)));
        }
        plan
    }

    /// Silences one replica from the start of the run (a censoring shard
    /// proposer).
    pub fn silence_from_start(replica: ReplicaId) -> Self {
        let mut plan = FaultPlan::none();
        plan.push(SimTime::ZERO, FaultAction::Silence(replica));
        plan
    }

    /// Silences a replica at `from` and restores it at `until` — censorship
    /// that begins mid-run and later stops (delayed silence).
    pub fn silence_between(replica: ReplicaId, from: SimTime, until: SimTime) -> Self {
        let mut plan = FaultPlan::none();
        plan.push(from, FaultAction::Silence(replica));
        plan.push(until, FaultAction::Unsilence(replica));
        plan
    }

    /// Blocks every directed link from `sources` to `targets` at `from`, and
    /// heals them at `heal_at`. Only the `sources → targets` direction is
    /// blocked, so this models an *asymmetric* partition: the targets keep
    /// reaching the sources while the reverse traffic is dropped.
    pub fn asymmetric_partition(
        sources: &[ReplicaId],
        targets: &[ReplicaId],
        from: SimTime,
        heal_at: SimTime,
    ) -> Self {
        let mut plan = FaultPlan::none();
        for &src in sources {
            for &dst in targets {
                if src != dst {
                    plan.push(from, FaultAction::BlockLink(src, dst));
                    plan.push(heal_at, FaultAction::UnblockLink(src, dst));
                }
            }
        }
        plan
    }

    /// Adds a fault, keeping the plan sorted by activation time.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.faults.push(ScheduledFault { at, action });
        self.faults.sort_by_key(|f| f.at);
    }

    /// Number of faults in the plan (applied or not).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault whose activation time is `<= now` and has not been
    /// applied yet. Returns the number of faults applied.
    pub fn apply_due<M>(&mut self, now: SimTime, network: &mut SimNetwork<M>) -> usize {
        let mut applied = 0;
        while self.cursor < self.faults.len() && self.faults[self.cursor].at <= now {
            match self.faults[self.cursor].action {
                FaultAction::Crash(r) => network.crash(r),
                FaultAction::Recover(r) => network.recover(r),
                FaultAction::Silence(r) => network.silence(r),
                FaultAction::Unsilence(r) => network.unsilence(r),
                FaultAction::BlockLink(from, to) => network.block_link(from, to),
                FaultAction::UnblockLink(from, to) => network.unblock_link(from, to),
            }
            self.cursor += 1;
            applied += 1;
        }
        applied
    }

    /// True once every fault has been applied.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.faults.len()
    }

    /// Number of faults already applied by [`apply_due`](Self::apply_due).
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Number of scheduled faults not yet applied. A run that finishes with
    /// `remaining() > 0` had a fault schedule that outlived it — the faults
    /// silently never happened, which usually means a mis-scheduled campaign.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::LatencyModel;

    #[test]
    fn crash_plan_targets_the_highest_replicas() {
        let plan = FaultPlan::crash_replicas(16, 2, SimTime::from_secs(1));
        assert_eq!(plan.len(), 2);
        let mut net: SimNetwork<()> = SimNetwork::new(16, LatencyModel::Instant, 0);
        let mut plan = plan;
        assert_eq!(plan.apply_due(SimTime::from_millis(500), &mut net), 0);
        assert!(!net.is_crashed(ReplicaId::new(15)));
        assert_eq!(plan.apply_due(SimTime::from_secs(1), &mut net), 2);
        assert!(net.is_crashed(ReplicaId::new(15)));
        assert!(net.is_crashed(ReplicaId::new(14)));
        assert!(!net.is_crashed(ReplicaId::new(0)));
        assert!(plan.exhausted());
    }

    #[test]
    fn faults_apply_in_time_order_and_only_once() {
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::from_secs(2),
            FaultAction::Recover(ReplicaId::new(3)),
        );
        plan.push(SimTime::from_secs(1), FaultAction::Crash(ReplicaId::new(3)));
        let mut net: SimNetwork<()> = SimNetwork::new(4, LatencyModel::Instant, 0);
        assert_eq!(plan.apply_due(SimTime::from_secs(1), &mut net), 1);
        assert!(net.is_crashed(ReplicaId::new(3)));
        assert_eq!(plan.apply_due(SimTime::from_secs(3), &mut net), 1);
        assert!(!net.is_crashed(ReplicaId::new(3)));
        assert_eq!(plan.apply_due(SimTime::from_secs(4), &mut net), 0);
    }

    #[test]
    fn asymmetric_partition_blocks_one_direction_then_heals() {
        let a = ReplicaId::new(2);
        let b = ReplicaId::new(0);
        let mut plan = FaultPlan::asymmetric_partition(
            &[a],
            &[b],
            SimTime::from_millis(1),
            SimTime::from_millis(5),
        );
        assert_eq!(plan.len(), 2);
        let mut net: SimNetwork<u8> = SimNetwork::new(4, LatencyModel::Instant, 0);
        assert_eq!(plan.apply_due(SimTime::from_millis(1), &mut net), 1);
        assert_eq!(plan.applied(), 1);
        assert_eq!(plan.remaining(), 1);
        // a → b is dropped; b → a still flows (asymmetry).
        net.send(a, b, 1);
        assert!(net.next_event().is_none());
        net.send(b, a, 2);
        assert!(net.next_event().is_some());
        // After the heal the link carries traffic again.
        assert_eq!(plan.apply_due(SimTime::from_millis(5), &mut net), 1);
        assert!(plan.exhausted());
        assert_eq!(plan.remaining(), 0);
        net.send(a, b, 3);
        assert!(net.next_event().is_some());
    }

    #[test]
    fn silence_between_censors_only_inside_the_window() {
        let mut plan = FaultPlan::silence_between(
            ReplicaId::new(1),
            SimTime::from_millis(2),
            SimTime::from_millis(4),
        );
        let mut net: SimNetwork<u8> = SimNetwork::new(4, LatencyModel::Instant, 0);
        plan.apply_due(SimTime::from_millis(2), &mut net);
        net.send(ReplicaId::new(1), ReplicaId::new(0), 1);
        assert!(net.next_event().is_none());
        plan.apply_due(SimTime::from_millis(4), &mut net);
        net.send(ReplicaId::new(1), ReplicaId::new(0), 2);
        assert!(net.next_event().is_some());
    }

    #[test]
    fn silence_plan_is_applied_at_time_zero() {
        let mut plan = FaultPlan::silence_from_start(ReplicaId::new(1));
        assert!(!plan.is_empty());
        let mut net: SimNetwork<u8> = SimNetwork::new(4, LatencyModel::Instant, 0);
        plan.apply_due(SimTime::ZERO, &mut net);
        net.send(ReplicaId::new(1), ReplicaId::new(0), 1);
        assert!(net.next_event().is_none());
    }
}
