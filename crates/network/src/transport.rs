//! The [`Transport`] abstraction: how a replica talks to its peers.
//!
//! A transport moves opaque messages between `ReplicaId`-addressed peers and
//! reports traffic statistics in both messages and bytes. Two implementations
//! exist:
//!
//! - [`crate::sim::SimNetwork`] — the discrete-event simulator every
//!   in-process scenario runs on (latency models, fault injection,
//!   deterministic under a seed), and
//! - [`crate::tcp::TcpTransport`] — a threaded `std::net::TcpStream`-per-peer
//!   transport with length-prefixed frames, used by the `thunderbolt-node`
//!   binary to run a cluster as N OS processes on localhost.
//!
//! The trait is deliberately small and object-safe so a node runtime can hold
//! a `Box<dyn Transport<Message>>`. Fault injection is *not* part of the
//! contract — [`Transport::supports_fault_injection`] advertises whether the
//! implementation can honor a `FaultPlan`, and scenario builders refuse to
//! schedule faults on transports that cannot (see
//! `tb_core::scenario::ScenarioBuilder::build_real_net`).

use crate::sim::{NetEvent, NetworkStats, SimNetwork};
use std::fmt;
use std::time::Duration;
use tb_types::ReplicaId;

/// Size of a message on the wire, used for byte-level traffic accounting.
///
/// The simulated transport needs this to charge byte counters without ever
/// serializing; real transports measure the encoded frames they actually
/// write. Message types implement it by delegating to their
/// [`tb_types::wire::Wire`] encoding so both transports report the same
/// number for the same message.
pub trait WireSized {
    /// Encoded payload size in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSized for &str {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSized for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSized for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSized for u8 {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSized for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

/// A message delivered by a transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inbound<M> {
    /// The sending replica.
    pub from: ReplicaId,
    /// The receiving replica (always the local replica on real transports).
    pub to: ReplicaId,
    /// The payload.
    pub msg: M,
}

/// Errors surfaced by [`Transport::send`] / [`Transport::broadcast`].
///
/// The simulated network never fails a send (faults silently drop, as real
/// packet loss would); the TCP transport reports peers it cannot reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination id is not a member of this transport's peer set.
    UnknownPeer(ReplicaId),
    /// The connection to a peer could not be established or broke mid-write.
    Disconnected {
        /// The unreachable peer.
        peer: ReplicaId,
        /// Human-readable cause (the underlying I/O error).
        detail: String,
    },
    /// The transport was already shut down.
    ShutDown,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(peer) => write!(f, "unknown peer {peer}"),
            TransportError::Disconnected { peer, detail } => {
                write!(f, "disconnected from {peer}: {detail}")
            }
            TransportError::ShutDown => f.write_str("transport is shut down"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Errors surfaced by [`Transport::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    TimedOut,
    /// The transport has shut down and no further message can arrive.
    Closed,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::TimedOut => f.write_str("receive timed out"),
            RecvError::Closed => f.write_str("transport closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Moves messages between `ReplicaId`-addressed peers.
pub trait Transport<M> {
    /// Number of replicas attached to the transport (committee size).
    fn replicas(&self) -> u32;

    /// Sends `msg` from `from` to `to`.
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) -> Result<(), TransportError>;

    /// Broadcasts `msg` from `from` to every replica **including the sender**
    /// (DAG protocols rely on local loop-back delivery).
    fn broadcast(&mut self, from: ReplicaId, msg: M) -> Result<(), TransportError>;

    /// Blocks up to `timeout` for the next inbound message.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Inbound<M>, RecvError>;

    /// Traffic statistics so far, in messages and bytes.
    fn stats(&self) -> NetworkStats;

    /// Whether a `FaultPlan` (crashes, partitions, message loss) can be
    /// injected into this transport. Real networks cannot fake faults, so
    /// the default is `false`.
    fn supports_fault_injection(&self) -> bool {
        false
    }

    /// Tears the transport down: closes connections, stops worker threads
    /// and discards undelivered messages.
    fn shutdown(&mut self);
}

impl<M: Clone + WireSized> Transport<M> for SimNetwork<M> {
    fn replicas(&self) -> u32 {
        self.size()
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) -> Result<(), TransportError> {
        SimNetwork::send(self, from, to, msg);
        Ok(())
    }

    fn broadcast(&mut self, from: ReplicaId, msg: M) -> Result<(), TransportError> {
        SimNetwork::broadcast(self, from, msg);
        Ok(())
    }

    /// Pops the next pending *message* event, advancing the simulated clock.
    /// Timer events are handed to the simulation driver through
    /// [`SimNetwork::next_event`] and are skipped here. The timeout is
    /// ignored: simulated time jumps straight to the next event, and an
    /// empty queue means nothing will ever arrive.
    fn recv_timeout(&mut self, _timeout: Duration) -> Result<Inbound<M>, RecvError> {
        while let Some((_, event)) = self.next_event() {
            if let NetEvent::Message { from, to, msg } = event {
                return Ok(Inbound { from, to, msg });
            }
        }
        Err(RecvError::TimedOut)
    }

    fn stats(&self) -> NetworkStats {
        SimNetwork::stats(self)
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn shutdown(&mut self) {
        while self.next_event().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::LatencyModel;

    fn sim() -> SimNetwork<&'static str> {
        SimNetwork::new(4, LatencyModel::Instant, 7)
    }

    #[test]
    fn sim_network_implements_the_transport_contract() {
        let mut net = sim();
        let t: &mut dyn Transport<&'static str> = &mut net;
        assert_eq!(t.replicas(), 4);
        assert!(t.supports_fault_injection());
        t.send(ReplicaId::new(0), ReplicaId::new(1), "direct")
            .unwrap();
        t.broadcast(ReplicaId::new(2), "fanout").unwrap();
        let mut seen = Vec::new();
        while let Ok(inbound) = t.recv_timeout(Duration::from_millis(1)) {
            seen.push((inbound.from, inbound.to, inbound.msg));
        }
        assert_eq!(seen.len(), 5, "1 direct + 4 broadcast deliveries");
        let stats = t.stats();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(
            stats.bytes_sent,
            "direct".len() as u64 + 4 * "fanout".len() as u64
        );
        assert_eq!(stats.bytes_delivered, stats.bytes_sent);
    }

    #[test]
    fn sim_recv_skips_timer_events() {
        let mut net = sim();
        net.set_timer(ReplicaId::new(0), 9, tb_types::SimTime::from_millis(1));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "late");
        let inbound = Transport::recv_timeout(&mut net, Duration::ZERO).unwrap();
        assert_eq!(inbound.msg, "late");
        assert_eq!(
            Transport::recv_timeout(&mut net, Duration::ZERO),
            Err(RecvError::TimedOut)
        );
    }

    #[test]
    fn sim_shutdown_discards_pending_traffic() {
        let mut net = sim();
        net.broadcast(ReplicaId::new(0), "pending");
        Transport::shutdown(&mut net);
        assert!(net.is_idle());
    }
}
