//! Simulated transport for multi-replica experiments.
//!
//! The paper evaluates Thunderbolt on clusters of up to 64 machines; this
//! reproduction runs the same protocol logic over a **discrete-event
//! simulated network** instead (see DESIGN.md, "Substitutions"). Replicas
//! are deterministic state machines; every message is scheduled for delivery
//! after a latency drawn from a configurable model (LAN / WAN), and the
//! simulation clock jumps from event to event. Crash faults, censoring
//! (silenced) replicas, link partitions and random message loss can be
//! injected at any point, which is how the failure and reconfiguration
//! experiments (Figures 15–17) are driven.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use faults::{FaultAction, FaultPlan, ScheduledFault};
pub use sim::{NetEvent, NetworkStats, SimNetwork};
pub use tcp::{TcpPeer, TcpTransport};
pub use transport::{Inbound, RecvError, Transport, TransportError, WireSized};
