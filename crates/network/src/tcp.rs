//! A threaded, std-only TCP transport: one `std::net::TcpStream` per peer.
//!
//! This is the second [`Transport`] implementation, used by the
//! `thunderbolt-node` binary to run a cluster as N OS processes. The design
//! is deliberately boring:
//!
//! - **Outbound**: one lazily-dialed `TcpStream` per peer, used only for
//!   writing. Dialing retries with backoff until [`CONNECT_DEADLINE`] so
//!   peers may start in any order; a stream that breaks mid-run is re-dialed
//!   once per send before the message counts as dropped.
//! - **Inbound**: a listener thread accepts connections; each accepted
//!   stream gets a reader thread that decodes frames and pushes them into an
//!   in-process channel. A peer that reconnects simply gets a fresh reader
//!   thread (reconnect-on-accept); the stale reader exits on EOF.
//! - **Framing**: every connection starts with a fixed hello
//!   (`magic`, wire-format version, sender id), then carries length-prefixed
//!   frames: `[u32 LE payload length][payload]` where the payload is the
//!   message's [`Wire`] encoding. Frames above [`MAX_FRAME_BYTES`] are
//!   rejected — a corrupt length prefix must not allocate gigabytes.
//! - **Loop-back**: sends addressed to the local replica bypass TCP and go
//!   straight into the inbound channel (DAG broadcasts include the sender).
//!
//! Statistics count payload bytes (the `Wire` encoding), matching the
//! simulator's [`crate::transport::WireSized`] accounting, so sim and TCP runs of the same
//! scenario report comparable `bytes_sent` / `bytes_delivered`.

use crate::sim::NetworkStats;
use crate::transport::{Inbound, RecvError, Transport, TransportError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tb_types::wire::Wire;
use tb_types::ReplicaId;

/// Connection hello magic: `"TBN1"` little-endian.
pub const TCP_MAGIC: u32 = 0x314e_4254;
/// Version of the framing layer (bumped together with the message wire
/// format, see `tb_core::messages::WIRE_FORMAT_VERSION`).
pub const TCP_FRAME_VERSION: u16 = 1;
/// Upper bound on a single frame's payload, far above any real block.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;
/// How long a dial keeps retrying before the peer counts as unreachable.
pub const CONNECT_DEADLINE: Duration = Duration::from_secs(10);
/// Poll interval used by the accept loop and reader timeouts so worker
/// threads notice shutdown promptly.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A peer of the TCP transport: its committee id and socket address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpPeer {
    /// Committee id of the peer.
    pub id: ReplicaId,
    /// Address the peer listens on.
    pub addr: SocketAddr,
}

#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_delivered: AtomicU64,
    bytes_dropped: AtomicU64,
}

/// The threaded TCP transport. See the module docs for the design.
pub struct TcpTransport<M> {
    local: ReplicaId,
    peers: Vec<TcpPeer>,
    outbound: HashMap<ReplicaId, TcpStream>,
    inbound_rx: mpsc::Receiver<Inbound<M>>,
    loopback_tx: mpsc::Sender<Inbound<M>>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    shut_down: bool,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", &self.local)
            .field("peers", &self.peers)
            .field("shut_down", &self.shut_down)
            .finish_non_exhaustive()
    }
}

impl<M: Wire + Send + 'static> TcpTransport<M> {
    /// Binds the local replica's listener and starts the accept loop.
    ///
    /// `peers` must contain every replica of the committee including the
    /// local one (whose address is the one bound). Outbound connections are
    /// dialed lazily on first send so peers may start in any order.
    pub fn bind(local: ReplicaId, peers: Vec<TcpPeer>) -> std::io::Result<Self> {
        let local_addr = peers
            .iter()
            .find(|p| p.id == local)
            .map(|p| p.addr)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("local replica {local} missing from peer list"),
                )
            })?;
        let listener = TcpListener::bind(local_addr)?;
        listener.set_nonblocking(true)?;

        let (tx, rx) = mpsc::channel();
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let listener_thread = {
            let tx = tx.clone();
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("tb-accept-{}", local.as_inner()))
                .spawn(move || accept_loop(listener, local, tx, counters, stop))?
        };

        Ok(TcpTransport {
            local,
            peers,
            outbound: HashMap::new(),
            inbound_rx: rx,
            loopback_tx: tx,
            counters,
            stop,
            listener_thread: Some(listener_thread),
            shut_down: false,
        })
    }

    /// The local replica id.
    pub fn local(&self) -> ReplicaId {
        self.local
    }

    fn peer_addr(&self, id: ReplicaId) -> Option<SocketAddr> {
        self.peers.iter().find(|p| p.id == id).map(|p| p.addr)
    }

    /// Dials `addr` with retry/backoff, then writes the hello frame.
    fn dial(&self, peer: ReplicaId, addr: SocketAddr) -> Result<TcpStream, TransportError> {
        let deadline = Instant::now() + CONNECT_DEADLINE;
        let mut backoff = Duration::from_millis(10);
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    let mut hello = Vec::with_capacity(10);
                    hello.extend_from_slice(&TCP_MAGIC.to_le_bytes());
                    hello.extend_from_slice(&TCP_FRAME_VERSION.to_le_bytes());
                    hello.extend_from_slice(&self.local.as_inner().to_le_bytes());
                    stream
                        .write_all(&hello)
                        .map_err(|e| TransportError::Disconnected {
                            peer,
                            detail: e.to_string(),
                        })?;
                    return Ok(stream);
                }
                Err(e) => {
                    if Instant::now() + backoff > deadline {
                        return Err(TransportError::Disconnected {
                            peer,
                            detail: e.to_string(),
                        });
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(250));
                }
            }
        }
    }

    fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
        })?;
        stream.write_all(&len.to_le_bytes())?;
        stream.write_all(payload)
    }

    /// Sends `payload` to `to`, re-dialing once if the cached stream broke.
    fn send_payload(&mut self, to: ReplicaId, payload: &[u8]) -> Result<(), TransportError> {
        let addr = self.peer_addr(to).ok_or(TransportError::UnknownPeer(to))?;
        for attempt in 0..2 {
            if !self.outbound.contains_key(&to) {
                let stream = self.dial(to, addr)?;
                self.outbound.insert(to, stream);
            }
            let stream = self.outbound.get_mut(&to).expect("just inserted");
            match Self::write_frame(stream, payload) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.outbound.remove(&to);
                    if attempt == 1 {
                        return Err(TransportError::Disconnected {
                            peer: to,
                            detail: e.to_string(),
                        });
                    }
                }
            }
        }
        unreachable!("loop always returns by the second attempt")
    }

    fn send_encoded(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        msg: M,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        if self.shut_down {
            return Err(TransportError::ShutDown);
        }
        let size = payload.len() as u64;
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_sent.fetch_add(size, Ordering::Relaxed);
        if to == self.local {
            // Loop-back: skip the wire entirely.
            if self.loopback_tx.send(Inbound { from, to, msg }).is_err() {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_dropped
                    .fetch_add(size, Ordering::Relaxed);
                return Err(TransportError::ShutDown);
            }
            self.counters.delivered.fetch_add(1, Ordering::Relaxed);
            self.counters
                .bytes_delivered
                .fetch_add(size, Ordering::Relaxed);
            return Ok(());
        }
        match self.send_payload(to, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_dropped
                    .fetch_add(size, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

impl<M: Wire + Send + Clone + 'static> Transport<M> for TcpTransport<M> {
    fn replicas(&self) -> u32 {
        self.peers.len() as u32
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) -> Result<(), TransportError> {
        let payload = msg.to_wire_bytes();
        self.send_encoded(from, to, msg, &payload)
    }

    fn broadcast(&mut self, from: ReplicaId, msg: M) -> Result<(), TransportError> {
        // Encode once, write the same payload to every peer. Delivery is
        // best-effort per peer: an unreachable peer counts as dropped but
        // does not stop the remaining sends (matching how real packet loss
        // behaves); the first error is reported after the fan-out.
        let payload = msg.to_wire_bytes();
        let ids: Vec<ReplicaId> = self.peers.iter().map(|p| p.id).collect();
        let mut first_err = None;
        for to in ids {
            if let Err(e) = self.send_encoded(from, to, msg.clone(), &payload) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Inbound<M>, RecvError> {
        match self.inbound_rx.recv_timeout(timeout) {
            Ok(inbound) => Ok(inbound),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn stats(&self) -> NetworkStats {
        NetworkStats {
            sent: self.counters.sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            timers_fired: 0,
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_delivered: self.counters.bytes_delivered.load(Ordering::Relaxed),
            bytes_dropped: self.counters.bytes_dropped.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        self.stop.store(true, Ordering::SeqCst);
        // Closing the outbound streams makes peer readers see EOF.
        self.outbound.clear();
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.shut_down = true;
        self.stop.store(true, Ordering::SeqCst);
        self.outbound.clear();
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Accept loop: non-blocking accept + sleep so shutdown is noticed quickly.
fn accept_loop<M: Wire + Send + 'static>(
    listener: TcpListener,
    local: ReplicaId,
    tx: mpsc::Sender<Inbound<M>>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let counters = Arc::clone(&counters);
                let stop = Arc::clone(&stop);
                let name = format!("tb-read-{}", local.as_inner());
                if std::thread::Builder::new()
                    .name(name)
                    .spawn(move || reader_loop(stream, local, tx, counters, stop))
                    .is_err()
                {
                    // Thread spawn failure: drop the connection; the peer
                    // will reconnect and try again.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transport shutting down",
            ));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed connection",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout tick: loop to re-check the stop flag.
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Per-connection reader: validate the hello, then decode frames until EOF,
/// error or shutdown.
fn reader_loop<M: Wire>(
    mut stream: TcpStream,
    local: ReplicaId,
    tx: mpsc::Sender<Inbound<M>>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();

    let mut hello = [0u8; 10];
    if read_exact_interruptible(&mut stream, &mut hello, &stop).is_err() {
        return;
    }
    let magic = u32::from_le_bytes([hello[0], hello[1], hello[2], hello[3]]);
    let version = u16::from_le_bytes([hello[4], hello[5]]);
    if magic != TCP_MAGIC || version != TCP_FRAME_VERSION {
        return;
    }
    let from = ReplicaId::new(u32::from_le_bytes([hello[6], hello[7], hello[8], hello[9]]));

    let mut len_buf = [0u8; 4];
    loop {
        if read_exact_interruptible(&mut stream, &mut len_buf, &stop).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_BYTES {
            return;
        }
        let mut payload = vec![0u8; len as usize];
        if read_exact_interruptible(&mut stream, &mut payload, &stop).is_err() {
            return;
        }
        match M::from_wire_bytes(&payload) {
            Ok(msg) => {
                counters.delivered.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_delivered
                    .fetch_add(u64::from(len), Ordering::Relaxed);
                if tx
                    .send(Inbound {
                        from,
                        to: local,
                        msg,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Err(_) => {
                // A frame that does not decode means the peer speaks a
                // different wire format; nothing later on this stream can
                // be trusted either.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers_for(n: u32) -> Vec<TcpPeer> {
        // Bind throwaway listeners to reserve distinct ports, then release
        // them. The window between drop and re-bind is acceptable for tests.
        (0..n)
            .map(|i| {
                let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
                let addr = probe.local_addr().expect("probe addr");
                drop(probe);
                TcpPeer {
                    id: ReplicaId::new(i),
                    addr,
                }
            })
            .collect()
    }

    #[test]
    fn two_processes_worth_of_transports_exchange_frames() {
        let peers = peers_for(2);
        let mut a: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(0), peers.clone()).expect("bind a");
        let mut b: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(1), peers).expect("bind b");

        a.send(ReplicaId::new(0), ReplicaId::new(1), 42).unwrap();
        let inbound = b.recv_timeout(Duration::from_secs(5)).expect("deliver");
        assert_eq!(inbound.from, ReplicaId::new(0));
        assert_eq!(inbound.to, ReplicaId::new(1));
        assert_eq!(inbound.msg, 42);

        b.send(ReplicaId::new(1), ReplicaId::new(0), 7).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().msg, 7);

        let stats = a.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.bytes_sent, 8);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn broadcast_includes_local_loopback() {
        let peers = peers_for(2);
        let mut a: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(0), peers.clone()).expect("bind a");
        let mut b: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(1), peers).expect("bind b");

        a.broadcast(ReplicaId::new(0), 5).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().msg, 5);
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().msg, 5);
        assert_eq!(a.stats().sent, 2);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reconnect_on_accept_survives_a_peer_restart() {
        let peers = peers_for(2);
        let mut b: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(1), peers.clone()).expect("bind b");
        {
            let mut a: TcpTransport<u64> =
                TcpTransport::bind(ReplicaId::new(0), peers.clone()).expect("bind a");
            a.send(ReplicaId::new(0), ReplicaId::new(1), 1).unwrap();
            assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().msg, 1);
            a.shutdown();
        }
        // A "restarted" replica 0 dials b again; b's listener accepts the
        // fresh connection alongside the dead one.
        let mut a2: TcpTransport<u64> =
            TcpTransport::bind(ReplicaId::new(0), peers).expect("rebind a");
        a2.send(ReplicaId::new(0), ReplicaId::new(1), 2).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().msg, 2);
        a2.shutdown();
        b.shutdown();
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let peers = peers_for(1);
        let mut a: TcpTransport<u64> = TcpTransport::bind(ReplicaId::new(0), peers).expect("bind");
        assert_eq!(
            a.send(ReplicaId::new(0), ReplicaId::new(9), 1),
            Err(TransportError::UnknownPeer(ReplicaId::new(9)))
        );
        // The failed send still counts in the message/byte accounting.
        assert_eq!(a.stats().dropped, 1);
        a.shutdown();
    }
}
