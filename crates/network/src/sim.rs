//! The discrete-event network simulator.

use crate::transport::WireSized;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use tb_types::{LatencyModel, ReplicaId, SimTime};

/// An event surfaced to the cluster driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetEvent<M> {
    /// A message delivered to a replica.
    Message {
        /// Sender.
        from: ReplicaId,
        /// Receiver.
        to: ReplicaId,
        /// The payload.
        msg: M,
    },
    /// A timer armed by a replica has fired.
    Timer {
        /// The replica whose timer fired.
        replica: ReplicaId,
        /// The token passed when the timer was armed.
        token: u64,
    },
}

/// Aggregate statistics of a transport (simulated or real).
///
/// Counts are tracked in both messages and bytes so that a simulated run and
/// a real-TCP run of the same scenario report comparable traffic figures.
/// Byte counts measure the wire encoding of the message payload (the
/// [`WireSized`] size; length prefixes and connection handshakes are
/// excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by faults (crashes, silenced senders, partitions,
    /// random loss).
    pub dropped: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Payload bytes delivered to their destination.
    pub bytes_delivered: u64,
    /// Payload bytes dropped by faults.
    pub bytes_dropped: u64,
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    /// Wire size of the payload, captured at send time so delivery-side
    /// accounting does not need to re-measure (or re-bound) the message.
    size: u64,
    event: NetEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event network connecting `n` simulated replicas.
#[derive(Debug)]
pub struct SimNetwork<M> {
    n: u32,
    latency: LatencyModel,
    rng: StdRng,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    next_seq: u64,
    crashed: HashSet<ReplicaId>,
    silenced: HashSet<ReplicaId>,
    blocked_links: HashSet<(ReplicaId, ReplicaId)>,
    drop_probability: f64,
    stats: NetworkStats,
}

impl<M> SimNetwork<M> {
    /// Creates a network for `n` replicas with the given latency model and
    /// RNG seed (the seed makes latency jitter and random loss
    /// reproducible).
    pub fn new(n: u32, latency: LatencyModel, seed: u64) -> Self {
        SimNetwork {
            n,
            latency,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            crashed: HashSet::new(),
            silenced: HashSet::new(),
            blocked_links: HashSet::new(),
            drop_probability: 0.0,
            stats: NetworkStats::default(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of replicas attached to the network.
    pub fn size(&self) -> u32 {
        self.n
    }

    /// Run statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Marks a replica as crashed: nothing is delivered to or sent from it
    /// any more.
    pub fn crash(&mut self, replica: ReplicaId) {
        self.crashed.insert(replica);
    }

    /// Undoes [`Self::crash`]. Messages dropped while crashed are not
    /// replayed.
    pub fn recover(&mut self, replica: ReplicaId) {
        self.crashed.remove(&replica);
    }

    /// True if the replica is currently crashed.
    pub fn is_crashed(&self, replica: ReplicaId) -> bool {
        self.crashed.contains(&replica)
    }

    /// Silences a replica: messages *from* it are dropped (it still receives
    /// traffic). This models a censoring proposer that stops disseminating
    /// its blocks.
    pub fn silence(&mut self, replica: ReplicaId) {
        self.silenced.insert(replica);
    }

    /// Undoes [`Self::silence`].
    pub fn unsilence(&mut self, replica: ReplicaId) {
        self.silenced.remove(&replica);
    }

    /// Blocks the directed link `from -> to`.
    pub fn block_link(&mut self, from: ReplicaId, to: ReplicaId) {
        self.blocked_links.insert((from, to));
    }

    /// Unblocks the directed link `from -> to`.
    pub fn unblock_link(&mut self, from: ReplicaId, to: ReplicaId) {
        self.blocked_links.remove(&(from, to));
    }

    /// Sets the probability that any individual message is lost.
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_probability = p.clamp(0.0, 1.0);
    }

    fn sample_latency(&mut self) -> SimTime {
        match self.latency {
            LatencyModel::Instant => SimTime::ZERO,
            LatencyModel::Fixed { micros } => SimTime::from_micros(micros),
            LatencyModel::Jittered {
                base_micros,
                jitter_micros,
            } => {
                let low = base_micros.saturating_sub(jitter_micros);
                let high = base_micros + jitter_micros;
                SimTime::from_micros(self.rng.gen_range(low..=high))
            }
        }
    }

    fn schedule(&mut self, at: SimTime, size: u64, event: NetEvent<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            size,
            event,
        }));
    }

    /// Arms a timer for `replica` that fires after `delay`.
    pub fn set_timer(&mut self, replica: ReplicaId, token: u64, delay: SimTime) {
        let at = self.now + delay;
        self.schedule(at, 0, NetEvent::Timer { replica, token });
    }

    /// Pops the next event, advancing the simulated clock to its timestamp.
    /// Events addressed to crashed replicas are skipped (and counted as
    /// dropped).
    pub fn next_event(&mut self) -> Option<(SimTime, NetEvent<M>)> {
        while let Some(Reverse(scheduled)) = self.queue.pop() {
            self.now = self.now.max(scheduled.at);
            match &scheduled.event {
                NetEvent::Message { to, .. } => {
                    if self.crashed.contains(to) {
                        self.stats.dropped += 1;
                        self.stats.bytes_dropped += scheduled.size;
                        continue;
                    }
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += scheduled.size;
                }
                NetEvent::Timer { replica, .. } => {
                    if self.crashed.contains(replica) {
                        continue;
                    }
                    self.stats.timers_fired += 1;
                }
            }
            return Some((scheduled.at, scheduled.event));
        }
        None
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<M: WireSized> SimNetwork<M> {
    /// Sends a message from `from` to `to`, applying faults and latency.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) {
        self.send_delayed(from, to, msg, SimTime::ZERO);
    }

    /// Sends a message whose emission is delayed by `extra` beyond the
    /// current simulated time (used to model the sender being busy executing
    /// transactions when it produced the message).
    pub fn send_delayed(&mut self, from: ReplicaId, to: ReplicaId, msg: M, extra: SimTime) {
        let size = msg.wire_size() as u64;
        self.send_delayed_sized(from, to, msg, extra, size);
    }

    fn send_delayed_sized(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        msg: M,
        extra: SimTime,
        size: u64,
    ) {
        self.stats.sent += 1;
        self.stats.bytes_sent += size;
        if self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.silenced.contains(&from)
            || self.blocked_links.contains(&(from, to))
            || (self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability)
        {
            self.stats.dropped += 1;
            self.stats.bytes_dropped += size;
            return;
        }
        let latency = if from == to {
            SimTime::ZERO
        } else {
            self.sample_latency()
        };
        let at = self.now + extra + latency;
        self.schedule(at, size, NetEvent::Message { from, to, msg });
    }
}

impl<M: Clone + WireSized> SimNetwork<M> {
    /// Broadcasts a message from `from` to every replica (including itself,
    /// which models the local loop-back delivery DAG protocols rely on).
    pub fn broadcast(&mut self, from: ReplicaId, msg: M) {
        self.broadcast_delayed(from, msg, SimTime::ZERO);
    }

    /// Broadcasts with an extra emission delay (see [`Self::send_delayed`]).
    pub fn broadcast_delayed(&mut self, from: ReplicaId, msg: M, extra: SimTime) {
        // The payload is measured once; every per-recipient clone has the
        // same wire size.
        let size = msg.wire_size() as u64;
        for to in 0..self.n {
            self.send_delayed_sized(from, ReplicaId::new(to), msg.clone(), extra, size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Net = SimNetwork<&'static str>;

    fn lan() -> Net {
        SimNetwork::new(4, LatencyModel::lan(), 7)
    }

    #[test]
    fn events_are_delivered_in_timestamp_order() {
        let mut net: Net = SimNetwork::new(2, LatencyModel::Instant, 1);
        net.set_timer(ReplicaId::new(0), 1, SimTime::from_millis(5));
        net.set_timer(ReplicaId::new(0), 2, SimTime::from_millis(1));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "hello");
        let mut order = Vec::new();
        while let Some((at, event)) = net.next_event() {
            order.push((at, event));
        }
        assert_eq!(order.len(), 3);
        assert!(order.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(matches!(order[0].1, NetEvent::Message { .. }));
        assert!(matches!(order[1].1, NetEvent::Timer { token: 2, .. }));
        assert!(matches!(order[2].1, NetEvent::Timer { token: 1, .. }));
        assert!(net.is_idle());
    }

    #[test]
    fn latency_advances_the_clock() {
        let mut net: Net = SimNetwork::new(2, LatencyModel::Fixed { micros: 500 }, 1);
        net.send(ReplicaId::new(0), ReplicaId::new(1), "x");
        let (at, _) = net.next_event().unwrap();
        assert_eq!(at, SimTime::from_micros(500));
        assert_eq!(net.now(), SimTime::from_micros(500));
    }

    #[test]
    fn self_sends_are_immediate() {
        let mut net = lan();
        net.send(ReplicaId::new(2), ReplicaId::new(2), "loopback");
        let (at, _) = net.next_event().unwrap();
        assert_eq!(at, SimTime::ZERO);
    }

    #[test]
    fn crashed_replicas_neither_send_nor_receive() {
        let mut net = lan();
        net.crash(ReplicaId::new(1));
        assert!(net.is_crashed(ReplicaId::new(1)));
        net.send(ReplicaId::new(1), ReplicaId::new(0), "from crashed");
        net.send(ReplicaId::new(0), ReplicaId::new(1), "to crashed");
        assert!(net.next_event().is_none());
        assert_eq!(net.stats().dropped, 2);
        net.recover(ReplicaId::new(1));
        net.send(ReplicaId::new(1), ReplicaId::new(0), "after recovery");
        assert!(net.next_event().is_some());
    }

    #[test]
    fn silenced_replicas_still_receive() {
        let mut net = lan();
        net.silence(ReplicaId::new(0));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "censored");
        net.send(ReplicaId::new(1), ReplicaId::new(0), "inbound");
        let mut delivered = 0;
        while net.next_event().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, 1);
        net.unsilence(ReplicaId::new(0));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "now audible");
        assert!(net.next_event().is_some());
    }

    #[test]
    fn blocked_links_are_directional() {
        let mut net = lan();
        net.block_link(ReplicaId::new(0), ReplicaId::new(1));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "blocked");
        net.send(ReplicaId::new(1), ReplicaId::new(0), "open");
        let mut received = Vec::new();
        while let Some((_, NetEvent::Message { msg, .. })) = net.next_event() {
            received.push(msg);
        }
        assert_eq!(received, vec!["open"]);
        net.unblock_link(ReplicaId::new(0), ReplicaId::new(1));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "unblocked");
        assert!(net.next_event().is_some());
    }

    #[test]
    fn broadcast_reaches_every_replica_including_self() {
        let mut net = lan();
        net.broadcast(ReplicaId::new(0), "hi");
        let mut recipients = Vec::new();
        while let Some((_, NetEvent::Message { to, .. })) = net.next_event() {
            recipients.push(to.as_inner());
        }
        recipients.sort_unstable();
        assert_eq!(recipients, vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_loss_drops_roughly_the_requested_fraction() {
        let mut net: Net = SimNetwork::new(2, LatencyModel::Instant, 99);
        net.set_drop_probability(0.5);
        for _ in 0..1_000 {
            net.send(ReplicaId::new(0), ReplicaId::new(1), "maybe");
        }
        let dropped = net.stats().dropped as f64;
        assert!((dropped / 1_000.0 - 0.5).abs() < 0.08, "dropped {dropped}");
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let run = |seed: u64| {
            let mut net: Net = SimNetwork::new(4, LatencyModel::wan(), seed);
            for i in 0..20u32 {
                net.send(ReplicaId::new(i % 4), ReplicaId::new((i + 1) % 4), "m");
            }
            let mut times = Vec::new();
            while let Some((at, _)) = net.next_event() {
                times.push(at);
            }
            times
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn stats_count_sent_delivered_and_timers() {
        let mut net = lan();
        net.send(ReplicaId::new(0), ReplicaId::new(1), "a");
        net.set_timer(ReplicaId::new(2), 9, SimTime::from_millis(1));
        while net.next_event().is_some() {}
        let stats = net.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.timers_fired, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.bytes_sent, 1);
        assert_eq!(stats.bytes_delivered, 1);
        assert_eq!(stats.bytes_dropped, 0);
        assert_eq!(net.pending(), 0);
    }

    #[test]
    fn byte_accounting_tracks_payload_sizes_through_faults() {
        let mut net: Net = SimNetwork::new(2, LatencyModel::Instant, 1);
        net.send(ReplicaId::new(0), ReplicaId::new(1), "four");
        net.block_link(ReplicaId::new(0), ReplicaId::new(1));
        net.send(ReplicaId::new(0), ReplicaId::new(1), "dropped!");
        while net.next_event().is_some() {}
        let stats = net.stats();
        assert_eq!(stats.bytes_sent, 4 + 8);
        assert_eq!(stats.bytes_delivered, 4);
        assert_eq!(stats.bytes_dropped, 8);
    }
}
