//! Property-based tests of [`FaultPlan`]'s scheduling contract:
//!
//! * pushes in arbitrary (out-of-order) timestamp order still apply in
//!   non-decreasing activation-time order;
//! * `apply_due` is idempotent at the same `SimTime` — a second call at the
//!   same instant applies nothing;
//! * `applied() + remaining() == len()` and `exhausted()` agree with the
//!   counters at every step of any application schedule.

use proptest::prelude::*;
use tb_network::{FaultAction, FaultPlan, SimNetwork};
use tb_types::{LatencyModel, ReplicaId, SimTime};

const N: u32 = 8;

/// Strategy producing one fault action over a small committee. Pairs are
/// arbitrary (including `from == to`: the plan schedules whatever it is
/// given; only the helper constructors filter self-links).
fn action() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        (0..N).prop_map(|r| FaultAction::Crash(ReplicaId::new(r))),
        (0..N).prop_map(|r| FaultAction::Recover(ReplicaId::new(r))),
        (0..N).prop_map(|r| FaultAction::Silence(ReplicaId::new(r))),
        (0..N).prop_map(|r| FaultAction::Unsilence(ReplicaId::new(r))),
        (0..N, 0..N)
            .prop_map(|(a, b)| FaultAction::BlockLink(ReplicaId::new(a), ReplicaId::new(b))),
        (0..N, 0..N)
            .prop_map(|(a, b)| FaultAction::UnblockLink(ReplicaId::new(a), ReplicaId::new(b))),
    ]
}

/// A schedule: faults with arbitrary micro-timestamps, in push order.
fn schedule() -> impl Strategy<Value = Vec<(u64, FaultAction)>> {
    prop::collection::vec((0u64..5_000, action()), 0..24)
}

fn plan_of(faults: &[(u64, FaultAction)]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(at, action) in faults {
        plan.push(SimTime::from_micros(at), action);
    }
    plan
}

fn net() -> SimNetwork<u8> {
    SimNetwork::new(N, LatencyModel::Instant, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever order the faults were pushed in, advancing the clock one
    /// fault at a time applies them in non-decreasing activation-time
    /// order, and sweeping past the last timestamp exhausts the plan.
    #[test]
    fn out_of_order_pushes_apply_in_time_order(faults in schedule()) {
        let mut plan = plan_of(&faults);
        prop_assert_eq!(plan.len(), faults.len());
        let mut network = net();

        let mut times: Vec<u64> = faults.iter().map(|&(at, _)| at).collect();
        times.sort_unstable();
        let mut applied_so_far = 0usize;
        for &at in &times {
            plan.apply_due(SimTime::from_micros(at), &mut network);
            // Everything at or before `at` is applied, nothing later is.
            let due = times.iter().filter(|&&t| t <= at).count();
            prop_assert_eq!(plan.applied(), due);
            prop_assert!(plan.applied() >= applied_so_far);
            applied_so_far = plan.applied();
        }
        prop_assert!(plan.exhausted());
        prop_assert_eq!(plan.remaining(), 0);
    }

    /// `apply_due` at the same instant twice applies nothing the second
    /// time: a driver that polls the plan repeatedly at one virtual time
    /// must not double-apply faults.
    #[test]
    fn apply_due_is_idempotent_at_the_same_time(faults in schedule(), at in 0u64..6_000) {
        let mut plan = plan_of(&faults);
        let mut network = net();
        let now = SimTime::from_micros(at);
        let first = plan.apply_due(now, &mut network);
        prop_assert_eq!(first, faults.iter().filter(|&&(t, _)| t <= at).count());
        let again = plan.apply_due(now, &mut network);
        prop_assert_eq!(again, 0);
        prop_assert_eq!(plan.applied(), first);
    }

    /// The accounting identity `applied() + remaining() == len()` holds at
    /// every step of an arbitrary monotone application schedule, and
    /// `exhausted()` flips exactly when `remaining()` reaches zero.
    #[test]
    fn counters_stay_consistent_under_any_schedule(
        faults in schedule(),
        probes in prop::collection::vec(0u64..6_000, 1..8),
    ) {
        let mut plan = plan_of(&faults);
        let mut network = net();
        let mut probes = probes;
        probes.sort_unstable();
        let mut total_applied = 0usize;
        for &at in &probes {
            total_applied += plan.apply_due(SimTime::from_micros(at), &mut network);
            prop_assert_eq!(plan.applied(), total_applied);
            prop_assert_eq!(plan.applied() + plan.remaining(), plan.len());
            prop_assert_eq!(plan.exhausted(), plan.remaining() == 0);
        }
        // `is_empty` must agree with `len` — the comparison is the point here,
        // so clippy's "just call is_empty" suggestion would erase the check.
        #[allow(clippy::len_zero)]
        let len_is_zero = plan.len() == 0;
        prop_assert_eq!(plan.is_empty(), len_is_zero);
    }
}
