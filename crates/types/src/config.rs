//! Configuration for the concurrent executor, the protocol and the network
//! simulation.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Configuration of the concurrent executor (paper Section 7) and of the
/// baseline executors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CeConfig {
    /// Number of executor workers executing transactions in parallel.
    pub executors: usize,
    /// Number of transactions per preplay batch (the paper evaluates 300 and
    /// 500).
    pub batch_size: usize,
    /// Upper bound on re-executions per transaction before the batch run
    /// falls back to executing the straggler serially. The paper does not
    /// bound re-executions; the bound only protects the test-suite from
    /// pathological livelock and is never hit in the evaluation workloads.
    pub max_retries: usize,
    /// Synthetic CPU cost charged per state operation, in nanoseconds.
    ///
    /// The paper executes contracts inside an EVM, so each operation carries
    /// real interpretation overhead; the native SmallBank procedures here are
    /// nearly free, which would make every executor bottleneck on its central
    /// coordination structure instead of on execution. Charging a small,
    /// configurable busy-wait per operation (outside any critical section)
    /// restores the paper's cost balance. See DESIGN.md, "Substitutions".
    pub synthetic_op_cost_ns: u64,
}

impl Default for CeConfig {
    fn default() -> Self {
        CeConfig {
            executors: 16,
            batch_size: 500,
            max_retries: 1_000,
            synthetic_op_cost_ns: 2_000,
        }
    }
}

impl CeConfig {
    /// Convenience constructor used throughout benches and tests.
    pub fn new(executors: usize, batch_size: usize) -> Self {
        CeConfig {
            executors,
            batch_size,
            ..CeConfig::default()
        }
    }

    /// Disables the synthetic per-operation cost (useful in unit tests).
    pub fn without_synthetic_cost(mut self) -> Self {
        self.synthetic_op_cost_ns = 0;
        self
    }
}

/// Reconfiguration parameters (paper Section 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigConfig {
    /// `K`: a replica emits a Shift block if a shard proposer has been silent
    /// for `K` rounds.
    pub silent_rounds_k: u64,
    /// `K'`: a replica emits a Shift block after proposing for `K'` rounds in
    /// the current DAG (periodic rotation). Must be greater than `K`.
    pub period_k_prime: u64,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            // Large enough that a replica which is merely busy executing is
            // not mistaken for a censoring proposer; experiments that test
            // censorship set a smaller K explicitly.
            silent_rounds_k: 50,
            // Large enough to effectively disable periodic rotation unless an
            // experiment asks for it, matching the paper's default setup.
            period_k_prime: u64::MAX / 2,
        }
    }
}

impl ReconfigConfig {
    /// Creates a configuration with the given `K` and `K'`.
    pub fn new(silent_rounds_k: u64, period_k_prime: u64) -> Self {
        assert!(
            period_k_prime > silent_rounds_k,
            "K' must be greater than K (paper Section 6)"
        );
        ReconfigConfig {
            silent_rounds_k,
            period_k_prime,
        }
    }

    /// A configuration that never triggers periodic rotation (used when
    /// evaluating without reconfiguration).
    pub fn disabled() -> Self {
        ReconfigConfig::default()
    }
}

/// Message latency models used by the simulated transport.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Zero-latency delivery, for deterministic unit tests.
    Instant,
    /// Fixed one-way latency in microseconds.
    Fixed {
        /// One-way delay.
        micros: u64,
    },
    /// Uniformly jittered latency in `[base - jitter, base + jitter]`.
    Jittered {
        /// Mean one-way delay in microseconds.
        base_micros: u64,
        /// Maximum deviation from the mean in microseconds.
        jitter_micros: u64,
    },
}

impl LatencyModel {
    /// Typical single-datacenter latency (~0.5 ms round trip): the LAN
    /// setting of the evaluation.
    pub fn lan() -> Self {
        LatencyModel::Jittered {
            base_micros: 250,
            jitter_micros: 100,
        }
    }

    /// Typical cross-continent latency (~150 ms round trip): the WAN setting
    /// of the evaluation.
    pub fn wan() -> Self {
        LatencyModel::Jittered {
            base_micros: 75_000,
            jitter_micros: 15_000,
        }
    }

    /// The mean one-way delay of the model.
    pub fn mean(&self) -> SimTime {
        match self {
            LatencyModel::Instant => SimTime::ZERO,
            LatencyModel::Fixed { micros } => SimTime::from_micros(*micros),
            LatencyModel::Jittered { base_micros, .. } => SimTime::from_micros(*base_micros),
        }
    }
}

/// Which storage backend a replica keeps its committed state in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageBackend {
    /// The striped in-memory store: volatile, nearly free, the default.
    #[default]
    Mem,
    /// The durable WAL-backed store: every committed batch is logged to an
    /// append-only, CRC-guarded write-ahead log (fsynced at commit
    /// boundaries) and periodically compacted into on-disk snapshots, so a
    /// crashed replica recovers its exact pre-crash state and commit
    /// digest from disk. See `docs/STORAGE.md`.
    Wal,
}

/// Storage backend selection and tuning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// The backend every replica of the cluster uses.
    pub backend: StorageBackend,
    /// Root directory for durable backends. Each replica stores its files
    /// under `<data_dir>/replica-<id>`. Ignored by [`StorageBackend::Mem`].
    pub data_dir: String,
    /// Compact the WAL into a snapshot once it exceeds this many bytes
    /// (checked at commit boundaries). Ignored by [`StorageBackend::Mem`].
    pub compact_wal_bytes: u64,
    /// Flush the write-buffer into the in-memory stripes once it holds this
    /// many pending writes. Ignored by [`StorageBackend::Mem`].
    pub flush_buffered_writes: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: StorageBackend::Mem,
            data_dir: String::new(),
            compact_wal_bytes: 4 * 1024 * 1024,
            flush_buffered_writes: 1024,
        }
    }
}

impl StorageConfig {
    /// The volatile in-memory backend (the default).
    pub fn mem() -> Self {
        StorageConfig::default()
    }

    /// The durable WAL backend rooted at `data_dir`.
    pub fn wal(data_dir: impl Into<String>) -> Self {
        StorageConfig {
            backend: StorageBackend::Wal,
            data_dir: data_dir.into(),
            ..StorageConfig::default()
        }
    }
}

/// Top-level configuration of a multi-replica experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of replicas (and therefore shards).
    pub n_replicas: u32,
    /// Concurrent-executor configuration used by every shard proposer.
    pub ce: CeConfig,
    /// Number of validator workers re-checking preplay results after
    /// consensus (the paper uses 16).
    pub validators: usize,
    /// Overlap post-consensus validation of block N+1 with the storage apply
    /// of block N (the staged commit pipeline). Disable to force the
    /// strictly staged path; commit order and applied state are identical
    /// either way.
    pub pipelined_commit: bool,
    /// Reconfiguration parameters.
    pub reconfig: ReconfigConfig,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Timeout a shard proposer waits for the leader's proposal before
    /// converting its single-shard transactions to cross-shard (rule P6).
    pub leader_timeout: SimTime,
    /// Maximum number of rounds an experiment runs for.
    pub max_rounds: u64,
    /// Storage backend every replica keeps its committed state in.
    pub storage: StorageConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_replicas: 4,
            ce: CeConfig::default(),
            validators: 16,
            pipelined_commit: true,
            reconfig: ReconfigConfig::default(),
            latency: LatencyModel::lan(),
            leader_timeout: SimTime::from_millis(50),
            max_rounds: 50,
            storage: StorageConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Creates a configuration for `n_replicas` replicas with defaults for
    /// everything else.
    pub fn with_replicas(n_replicas: u32) -> Self {
        SystemConfig {
            n_replicas,
            ..SystemConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_defaults_match_the_paper_setup() {
        let ce = CeConfig::default();
        assert_eq!(ce.executors, 16);
        assert_eq!(ce.batch_size, 500);
    }

    #[test]
    #[should_panic(expected = "K' must be greater than K")]
    fn reconfig_rejects_k_prime_not_greater_than_k() {
        let _ = ReconfigConfig::new(5, 5);
    }

    #[test]
    fn reconfig_constructor_stores_values() {
        let r = ReconfigConfig::new(2, 6);
        assert_eq!(r.silent_rounds_k, 2);
        assert_eq!(r.period_k_prime, 6);
    }

    #[test]
    fn latency_models_expose_their_mean() {
        assert_eq!(LatencyModel::Instant.mean(), SimTime::ZERO);
        assert_eq!(
            LatencyModel::Fixed { micros: 42 }.mean(),
            SimTime::from_micros(42)
        );
        assert!(LatencyModel::wan().mean() > LatencyModel::lan().mean());
    }

    #[test]
    fn system_config_with_replicas() {
        let cfg = SystemConfig::with_replicas(16);
        assert_eq!(cfg.n_replicas, 16);
        assert_eq!(cfg.ce, CeConfig::default());
        assert_eq!(cfg.storage, StorageConfig::mem());
    }

    #[test]
    fn storage_config_constructors() {
        assert_eq!(StorageConfig::mem().backend, StorageBackend::Mem);
        let wal = StorageConfig::wal("/tmp/tb-data");
        assert_eq!(wal.backend, StorageBackend::Wal);
        assert_eq!(wal.data_dir, "/tmp/tb-data");
        assert!(wal.compact_wal_bytes > 0);
        assert!(wal.flush_buffered_writes > 0);
    }
}
