//! Identifier newtypes used across the system.
//!
//! Every identifier is a thin, `Copy`, ordered wrapper around an integer so
//! they can be used as map keys and serialized cheaply, while keeping the
//! type system able to distinguish e.g. a replica index from a shard index.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Creates a new identifier from the raw integer.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            pub const fn as_inner(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }
    };
}

id_type!(
    /// Index of a replica in the committee (`0..n`). Each replica also acts as
    /// a shard proposer for exactly one shard at a time (paper Section 3.1).
    ReplicaId,
    u32,
    "R"
);

id_type!(
    /// Identifier of a data shard. Every key is statically assigned to one
    /// shard (its `SID`); the replica currently responsible for the shard is
    /// given by the [`crate::committee::ShardAssignment`].
    ShardId,
    u32,
    "S"
);

id_type!(
    /// Identifier of a client submitting transactions.
    ClientId,
    u32,
    "C"
);

id_type!(
    /// Globally unique transaction identifier.
    TxId,
    u64,
    "T"
);

id_type!(
    /// Monotonically increasing sequence number (per proposer or per client).
    SeqNo,
    u64,
    "#"
);

id_type!(
    /// Identifier of one DAG instance. A new DAG (with a new `DagId`) is
    /// started on every non-blocking reconfiguration (paper Section 6).
    DagId,
    u64,
    "D"
);

/// A DAG round. Rounds advance in lock step inside one DAG instance; the
/// round counter restarts from the *ending round* when a new DAG begins.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Round(pub u64);

impl Round {
    /// The first round of a DAG.
    pub const ZERO: Round = Round(0);

    /// Creates a round from the raw counter.
    pub const fn new(raw: u64) -> Self {
        Round(raw)
    }

    /// Returns the next round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns the previous round, saturating at zero.
    pub const fn prev(self) -> Round {
        Round(self.0.saturating_sub(1))
    }

    /// Returns the raw counter.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this round elects a leader. Tusk commits a leader vertex every
    /// two rounds; we follow the paper's convention of electing leaders on
    /// odd rounds (Figure 4 selects leaders in rounds 1, 3, 5, ...).
    pub const fn is_leader_round(self) -> bool {
        self.0 % 2 == 1
    }

    /// Distance (in rounds) to an earlier round; zero if `earlier` is newer.
    pub fn saturating_distance(self, earlier: Round) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(raw: u64) -> Self {
        Round(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(ReplicaId::new(3).to_string(), "R3");
        assert_eq!(ShardId::new(7).to_string(), "S7");
        assert_eq!(TxId::new(42).to_string(), "T42");
        assert_eq!(DagId::new(1).to_string(), "D1");
        assert_eq!(Round::new(5).to_string(), "r5");
    }

    #[test]
    fn round_arithmetic() {
        let r = Round::new(4);
        assert_eq!(r.next(), Round::new(5));
        assert_eq!(r.prev(), Round::new(3));
        assert_eq!(Round::ZERO.prev(), Round::ZERO);
        assert_eq!(r.saturating_distance(Round::new(1)), 3);
        assert_eq!(Round::new(1).saturating_distance(r), 0);
    }

    #[test]
    fn leader_rounds_are_odd() {
        assert!(!Round::new(0).is_leader_round());
        assert!(Round::new(1).is_leader_round());
        assert!(!Round::new(2).is_leader_round());
        assert!(Round::new(3).is_leader_round());
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ReplicaId::new(1) < ReplicaId::new(2));
        assert!(TxId::new(10) > TxId::new(9));
    }

    #[test]
    fn conversion_round_trips() {
        let id: ReplicaId = 9u32.into();
        let raw: u32 = id.into();
        assert_eq!(raw, 9);
        assert_eq!(ReplicaId::new(9).as_inner(), 9);
    }
}
