//! DAG vertices, headers and certificates.
//!
//! Following Narwhal/Tusk (paper Section 2), every round each replica
//! broadcasts a *header* describing its block and referencing at least
//! `2f + 1` certificates from the previous round. Once `2f + 1` replicas
//! acknowledge the header, a *certificate* is formed; certificates of round
//! `r` become the parents of headers in round `r + 1`. A [`Vertex`] bundles a
//! certified header with its block payload, which is what the local DAG
//! stores.

use crate::block::Block;
use crate::committee::Committee;
use crate::digest::{Digest, Hashable, StructuralHasher};
use crate::ids::{DagId, ReplicaId, Round};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The header of a DAG vertex: everything except the block body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// DAG instance the header belongs to.
    pub dag: DagId,
    /// Round the header was proposed in.
    pub round: Round,
    /// Authoring replica.
    pub author: ReplicaId,
    /// Digest of the block carried by the vertex.
    pub block_digest: Digest,
    /// Digests of the parent certificates from round `round - 1`
    /// (empty only in the first round of a DAG).
    pub parents: Vec<Digest>,
    /// Simulated creation time.
    pub created_at: SimTime,
}

impl Header {
    /// Creates a header.
    pub fn new(
        dag: DagId,
        round: Round,
        author: ReplicaId,
        block_digest: Digest,
        parents: Vec<Digest>,
        created_at: SimTime,
    ) -> Self {
        Header {
            dag,
            round,
            author,
            block_digest,
            parents,
            created_at,
        }
    }
}

impl Hashable for Header {
    fn absorb(&self, h: &mut StructuralHasher) {
        h.write_u64(self.dag.as_inner());
        h.write_u64(self.round.as_u64());
        h.write_u64(u64::from(self.author.as_inner()));
        h.write_digest(&self.block_digest);
        h.write_u64(self.parents.len() as u64);
        for p in &self.parents {
            h.write_digest(p);
        }
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Header[{} {} {} parents={}]",
            self.dag,
            self.round,
            self.author,
            self.parents.len()
        )
    }
}

/// A certificate: proof that `2f + 1` replicas acknowledged a header.
///
/// Signatures are modelled as an explicit, deduplicated list of signer ids;
/// [`Certificate::is_valid`] checks the quorum threshold against the
/// committee (see DESIGN.md "Substitutions" for why this is equivalent for
/// the protocol logic).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Digest of the certified header.
    pub header_digest: Digest,
    /// DAG instance of the certified header.
    pub dag: DagId,
    /// Round of the certified header.
    pub round: Round,
    /// Author of the certified header.
    pub author: ReplicaId,
    /// Replicas that acknowledged the header (deduplicated, sorted).
    pub signers: Vec<ReplicaId>,
}

impl Certificate {
    /// Creates a certificate, normalizing the signer list.
    pub fn new(
        header_digest: Digest,
        dag: DagId,
        round: Round,
        author: ReplicaId,
        mut signers: Vec<ReplicaId>,
    ) -> Self {
        signers.sort_unstable();
        signers.dedup();
        Certificate {
            header_digest,
            dag,
            round,
            author,
            signers,
        }
    }

    /// Builds the certificate for a header given the acknowledging replicas.
    pub fn for_header(header: &Header, signers: Vec<ReplicaId>) -> Self {
        Certificate::new(
            header.digest(),
            header.dag,
            header.round,
            header.author,
            signers,
        )
    }

    /// True if the certificate carries a `2f + 1` quorum of distinct,
    /// committee-member signers.
    pub fn is_valid(&self, committee: &Committee) -> bool {
        let distinct_members = self
            .signers
            .iter()
            .filter(|s| committee.contains(**s))
            .count();
        distinct_members >= committee.quorum_threshold()
    }
}

impl Hashable for Certificate {
    fn absorb(&self, h: &mut StructuralHasher) {
        h.write_digest(&self.header_digest);
        h.write_u64(self.dag.as_inner());
        h.write_u64(self.round.as_u64());
        h.write_u64(u64::from(self.author.as_inner()));
        // Signer identity does not change which vertex the certificate
        // certifies, so signers are deliberately not absorbed: two
        // certificates for the same header are interchangeable parents.
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cert[{} {} {} signers={}]",
            self.dag,
            self.round,
            self.author,
            self.signers.len()
        )
    }
}

/// A certified DAG vertex: header, block body and certificate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vertex {
    /// The vertex header.
    pub header: Header,
    /// The block carried by the vertex.
    pub block: Block,
    /// The certificate proving `2f + 1` replicas acknowledged the header.
    pub certificate: Certificate,
}

impl Vertex {
    /// Creates a vertex.
    pub fn new(header: Header, block: Block, certificate: Certificate) -> Self {
        Vertex {
            header,
            block,
            certificate,
        }
    }

    /// The digest identifying this vertex (the certificate digest, which is
    /// derived from the header digest).
    pub fn id(&self) -> Digest {
        self.certificate.digest()
    }

    /// Round of the vertex.
    pub fn round(&self) -> Round {
        self.header.round
    }

    /// Author of the vertex.
    pub fn author(&self) -> ReplicaId {
        self.header.author
    }

    /// DAG instance of the vertex.
    pub fn dag(&self) -> DagId {
        self.header.dag
    }

    /// Digests of the parent certificates.
    pub fn parents(&self) -> &[Digest] {
        &self.header.parents
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vertex[{} {} {} {}]",
            self.dag(),
            self.round(),
            self.author(),
            self.block.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockPayload;
    use crate::ids::{SeqNo, ShardId};

    fn committee4() -> Committee {
        Committee::new(4)
    }

    fn header(author: u32, round: u64) -> Header {
        Header::new(
            DagId::new(0),
            Round::new(round),
            ReplicaId::new(author),
            Digest::ZERO,
            vec![],
            SimTime::ZERO,
        )
    }

    fn block(author: u32, round: u64) -> Block {
        Block::normal(
            DagId::new(0),
            Round::new(round),
            ReplicaId::new(author),
            ShardId::new(author),
            SeqNo::new(0),
            BlockPayload::empty(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn certificate_quorum_validation() {
        let committee = committee4();
        let h = header(0, 1);
        let ok = Certificate::for_header(
            &h,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        assert!(ok.is_valid(&committee));

        let too_few = Certificate::for_header(&h, vec![ReplicaId::new(0), ReplicaId::new(1)]);
        assert!(!too_few.is_valid(&committee));

        // Duplicate signers are collapsed and do not count twice.
        let dupes = Certificate::for_header(
            &h,
            vec![ReplicaId::new(0), ReplicaId::new(0), ReplicaId::new(1)],
        );
        assert!(!dupes.is_valid(&committee));

        // Signers outside the committee do not count.
        let outsiders = Certificate::for_header(
            &h,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(99)],
        );
        assert!(!outsiders.is_valid(&committee));
    }

    #[test]
    fn certificate_digest_ignores_signers() {
        let h = header(1, 2);
        let a = Certificate::for_header(
            &h,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        let b = Certificate::for_header(
            &h,
            vec![ReplicaId::new(1), ReplicaId::new(2), ReplicaId::new(3)],
        );
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn header_digest_depends_on_parents() {
        let mut a = header(0, 3);
        let b = header(0, 3);
        assert_eq!(a.digest(), b.digest());
        a.parents.push(42u64.digest());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn vertex_accessors() {
        let h = header(2, 5);
        let c = Certificate::for_header(
            &h,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        let v = Vertex::new(h.clone(), block(2, 5), c.clone());
        assert_eq!(v.round(), Round::new(5));
        assert_eq!(v.author(), ReplicaId::new(2));
        assert_eq!(v.dag(), DagId::new(0));
        assert_eq!(v.id(), c.digest());
        assert!(v.parents().is_empty());
    }
}
