//! Keys and their static shard assignment.
//!
//! The paper's data model (Section 3.1) assigns every key a shard id (`SID`)
//! before it can be used; the assignment is known by all replicas and routes
//! transactions to the right shard proposer. We model keys as a
//! `(key space, row)` pair — SmallBank uses two key spaces (checking and
//! savings) — and derive the shard deterministically from the row number so
//! that both accounts of a `SendPayment` land in predictable shards.

use crate::ids::ShardId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical table / namespace a key belongs to.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum KeySpace {
    /// SmallBank checking balances.
    #[default]
    Checking,
    /// SmallBank savings balances.
    Savings,
    /// Storage used by deployed contract programs.
    Contract,
    /// Free-form keys used by tests and examples.
    Scratch,
}

impl KeySpace {
    /// Stable small integer tag used for hashing and display.
    pub const fn tag(self) -> u16 {
        match self {
            KeySpace::Checking => 0,
            KeySpace::Savings => 1,
            KeySpace::Contract => 2,
            KeySpace::Scratch => 3,
        }
    }

    /// All key spaces, useful for property tests.
    pub const ALL: [KeySpace; 4] = [
        KeySpace::Checking,
        KeySpace::Savings,
        KeySpace::Contract,
        KeySpace::Scratch,
    ];
}

impl fmt::Display for KeySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            KeySpace::Checking => "checking",
            KeySpace::Savings => "savings",
            KeySpace::Contract => "contract",
            KeySpace::Scratch => "scratch",
        };
        f.write_str(name)
    }
}

/// A data key: a row inside a [`KeySpace`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Key {
    /// The namespace the key lives in.
    pub space: KeySpace,
    /// Row identifier inside the namespace (e.g. the SmallBank account id).
    pub row: u64,
}

impl Key {
    /// Creates a key in the given space.
    pub const fn new(space: KeySpace, row: u64) -> Self {
        Key { space, row }
    }

    /// SmallBank checking balance of `account`.
    pub const fn checking(account: u64) -> Self {
        Key::new(KeySpace::Checking, account)
    }

    /// SmallBank savings balance of `account`.
    pub const fn savings(account: u64) -> Self {
        Key::new(KeySpace::Savings, account)
    }

    /// A contract-storage key.
    pub const fn contract(slot: u64) -> Self {
        Key::new(KeySpace::Contract, slot)
    }

    /// A scratch key for tests.
    pub const fn scratch(row: u64) -> Self {
        Key::new(KeySpace::Scratch, row)
    }

    /// Static shard assignment: the `SID` of this key among `n_shards` shards.
    ///
    /// All key spaces of the same row map to the same shard so that a
    /// single-account SmallBank transaction (touching both its checking and
    /// savings balances) stays single-shard, exactly as in the paper's
    /// account-partitioned setup.
    pub fn shard(&self, n_shards: u32) -> ShardId {
        assert!(n_shards > 0, "the system needs at least one shard");
        ShardId::new((self.row % u64::from(n_shards)) as u32)
    }

    /// Compact 64-bit encoding used by hashers and dense maps.
    pub const fn encode(&self) -> u64 {
        ((self.space.tag() as u64) << 56) | (self.row & 0x00FF_FFFF_FFFF_FFFF)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.space, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_space_independent() {
        let n = 8;
        for row in 0..100u64 {
            let c = Key::checking(row).shard(n);
            let s = Key::savings(row).shard(n);
            assert_eq!(c, s, "checking and savings of one account share a shard");
            assert_eq!(c, ShardId::new((row % 8) as u32));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Key::checking(1).shard(0);
    }

    #[test]
    fn encode_distinguishes_spaces_and_rows() {
        let a = Key::checking(5).encode();
        let b = Key::savings(5).encode();
        let c = Key::checking(6).encode();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Key::checking(3).to_string(), "checking/3");
        assert_eq!(Key::savings(9).to_string(), "savings/9");
        assert_eq!(Key::contract(1).to_string(), "contract/1");
        assert_eq!(Key::scratch(0).to_string(), "scratch/0");
    }

    #[test]
    fn keyspace_tags_are_unique() {
        let mut tags: Vec<u16> = KeySpace::ALL.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), KeySpace::ALL.len());
    }
}
