//! Hand-rolled binary wire codec for everything that crosses a process
//! boundary.
//!
//! The vendored serde shim (`shims/serde`) is serialize-only — `Deserialize`
//! is a methodless marker — so the real-network transport cannot use it. This
//! module provides the [`Wire`] trait instead: a compact, deterministic,
//! little-endian binary encoding with explicit enum tags and `u32`-prefixed
//! collections, implemented by hand for every type that appears inside a
//! consensus message ([`crate::vertex::Vertex`] and below).
//!
//! Format rules (see `docs/NET.md` for the full frame layout):
//!
//! - integers are fixed-width little-endian (`u8`/`u16`/`u32`/`u64`/`i64`);
//!   `f64` travels as its IEEE-754 bit pattern in a `u64`,
//! - enums are a `u8` tag followed by the variant fields in declaration
//!   order,
//! - collections (`Vec<T>`, byte strings, `String`) are a `u32` element
//!   count followed by the elements,
//! - structs are their fields in declaration order, no framing.
//!
//! Decoding is strict: unknown tags fail with [`WireError::InvalidTag`] and
//! [`Wire::from_wire_bytes`] rejects trailing garbage, so `encode → decode`
//! is identity and nothing else parses (pinned by proptest round-trips in
//! `tb-core`).

use crate::block::{Block, BlockKind, BlockPayload, PreplayedTx};
use crate::digest::Digest;
use crate::ids::{ClientId, DagId, ReplicaId, Round, SeqNo, ShardId, TxId};
use crate::key::{Key, KeySpace};
use crate::ops::{AccessRecord, ExecOutcome, Operation};
use crate::time::SimTime;
use crate::transaction::{ContractCall, SmallBankProcedure, Transaction};
use crate::value::Value;
use crate::vertex::{Certificate, Header, Vertex};
use bytes::Bytes;
use std::fmt;

/// Errors produced while decoding (or validating) a wire buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no matching variant.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// Bytes remained after the top-level value was fully decoded.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A message envelope carried the wrong magic number.
    BadMagic {
        /// The magic value found in the buffer.
        found: u32,
    },
    /// A message envelope carried a wire-format version we do not speak.
    UnsupportedVersion {
        /// The version found in the buffer.
        found: u16,
    },
    /// A length prefix was too large for the remaining buffer.
    LengthOverflow,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A hex string contained a non-hex character or had odd length.
    InvalidHex,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => f.write_str("unexpected end of wire buffer"),
            WireError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            WireError::BadMagic { found } => write!(f, "bad envelope magic {found:#010x}"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire format version {found}")
            }
            WireError::LengthOverflow => f.write_str("length prefix exceeds remaining buffer"),
            WireError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::InvalidHex => f.write_str("invalid hex string"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder. In *counting* mode it only tracks the encoded size,
/// which lets [`Wire::encoded_len`] measure a value without allocating.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    counting: bool,
    count: usize,
}

impl WireWriter {
    /// A writer that materializes bytes.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// A writer that only counts bytes (nothing is stored).
    pub fn counting() -> Self {
        WireWriter {
            buf: Vec::new(),
            counting: true,
            count: 0,
        }
    }

    /// Bytes written (or counted) so far.
    pub fn len(&self) -> usize {
        if self.counting {
            self.count
        } else {
            self.buf.len()
        }
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the writer, returning the encoded bytes. Empty in counting
    /// mode.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        if self.counting {
            self.count += bytes.len();
        } else {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.put_raw(&[v]);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.put_raw(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `u32` element-count prefix, failing loudly on overflow.
    pub fn put_len(&mut self, len: usize) {
        let len32 = u32::try_from(len).expect("collection length exceeds u32::MAX");
        self.put_u32(len32);
    }
}

/// Cursor over a wire buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Unread bytes left in the buffer.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                type_name: "bool",
                tag: u32::from(tag),
            }),
        }
    }

    /// Reads a `u32` element count, sanity-checked against the remaining
    /// buffer so a corrupt prefix cannot trigger huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        // Every encoded element occupies at least one byte, so a count
        // exceeding the remaining bytes is necessarily corrupt.
        if n > self.remaining() {
            return Err(WireError::LengthOverflow);
        }
        Ok(n)
    }

    /// Succeeds only if the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Deterministic binary encoding to / decoding from a byte buffer.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from the reader, advancing its cursor.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Size of the encoding in bytes, computed without allocating.
    fn encoded_len(&self) -> usize {
        let mut w = WireWriter::counting();
        self.encode(&mut w);
        w.len()
    }

    /// Encodes `self` into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a value that must occupy the whole buffer.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

macro_rules! wire_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    };
}

wire_prim!(u8, put_u8, u8);
wire_prim!(u16, put_u16, u16);
wire_prim!(u32, put_u32, u32);
wire_prim!(u64, put_u64, u64);
wire_prim!(i64, put_i64, i64);
wire_prim!(f64, put_f64, f64);
wire_prim!(bool, put_bool, bool);

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_len(self.len());
        w.put_raw(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Option",
                tag: u32::from(tag),
            }),
        }
    }
}

macro_rules! wire_id {
    ($ty:ty, $inner:ty, $put:ident, $get:ident) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(self.as_inner());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$ty>::new(r.$get()?))
            }
        }
    };
}

wire_id!(ReplicaId, u32, put_u32, u32);
wire_id!(ShardId, u32, put_u32, u32);
wire_id!(ClientId, u32, put_u32, u32);
wire_id!(TxId, u64, put_u64, u64);
wire_id!(SeqNo, u64, put_u64, u64);
wire_id!(DagId, u64, put_u64, u64);

impl Wire for Round {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.as_u64());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Round::new(r.u64()?))
    }
}

impl Wire for SimTime {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.as_micros());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SimTime::from_micros(r.u64()?))
    }
}

impl Wire for Digest {
    fn encode(&self, w: &mut WireWriter) {
        for limb in self.0 {
            w.put_u64(limb);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut limbs = [0u64; 4];
        for limb in &mut limbs {
            *limb = r.u64()?;
        }
        Ok(Digest(limbs))
    }
}

impl Wire for KeySpace {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag() as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(KeySpace::Checking),
            1 => Ok(KeySpace::Savings),
            2 => Ok(KeySpace::Contract),
            3 => Ok(KeySpace::Scratch),
            tag => Err(WireError::InvalidTag {
                type_name: "KeySpace",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for Key {
    fn encode(&self, w: &mut WireWriter) {
        self.space.encode(w);
        w.put_u64(self.row);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Key {
            space: KeySpace::decode(r)?,
            row: r.u64()?,
        })
    }
}

impl Wire for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::None => w.put_u8(0),
            Value::Int(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            Value::Bytes(b) => {
                w.put_u8(2);
                w.put_len(b.len());
                w.put_raw(&b[..]);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Value::None),
            1 => Ok(Value::Int(r.i64()?)),
            2 => {
                let n = r.seq_len()?;
                Ok(Value::Bytes(Bytes::copy_from_slice(r.take(n)?)))
            }
            tag => Err(WireError::InvalidTag {
                type_name: "Value",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for Operation {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Operation::Read { key } => {
                w.put_u8(0);
                Wire::encode(key, w);
            }
            Operation::Write { key, value } => {
                w.put_u8(1);
                Wire::encode(key, w);
                value.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Operation::Read {
                key: Key::decode(r)?,
            }),
            1 => Ok(Operation::Write {
                key: Key::decode(r)?,
                value: Value::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "Operation",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for AccessRecord {
    fn encode(&self, w: &mut WireWriter) {
        Wire::encode(&self.key, w);
        self.value.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AccessRecord {
            key: Key::decode(r)?,
            value: Value::decode(r)?,
        })
    }
}

impl Wire for ExecOutcome {
    fn encode(&self, w: &mut WireWriter) {
        self.read_set.encode(w);
        self.write_set.encode(w);
        self.return_value.encode(w);
        w.put_bool(self.logically_aborted);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ExecOutcome {
            read_set: Vec::decode(r)?,
            write_set: Vec::decode(r)?,
            return_value: Value::decode(r)?,
            logically_aborted: r.bool()?,
        })
    }
}

impl Wire for SmallBankProcedure {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SmallBankProcedure::Amalgamate { from, to } => {
                w.put_u8(0);
                w.put_u64(*from);
                w.put_u64(*to);
            }
            SmallBankProcedure::GetBalance { account } => {
                w.put_u8(1);
                w.put_u64(*account);
            }
            SmallBankProcedure::DepositChecking { account, amount } => {
                w.put_u8(2);
                w.put_u64(*account);
                w.put_i64(*amount);
            }
            SmallBankProcedure::SendPayment { from, to, amount } => {
                w.put_u8(3);
                w.put_u64(*from);
                w.put_u64(*to);
                w.put_i64(*amount);
            }
            SmallBankProcedure::TransactSavings { account, amount } => {
                w.put_u8(4);
                w.put_u64(*account);
                w.put_i64(*amount);
            }
            SmallBankProcedure::WriteCheck { account, amount } => {
                w.put_u8(5);
                w.put_u64(*account);
                w.put_i64(*amount);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SmallBankProcedure::Amalgamate {
                from: r.u64()?,
                to: r.u64()?,
            }),
            1 => Ok(SmallBankProcedure::GetBalance { account: r.u64()? }),
            2 => Ok(SmallBankProcedure::DepositChecking {
                account: r.u64()?,
                amount: r.i64()?,
            }),
            3 => Ok(SmallBankProcedure::SendPayment {
                from: r.u64()?,
                to: r.u64()?,
                amount: r.i64()?,
            }),
            4 => Ok(SmallBankProcedure::TransactSavings {
                account: r.u64()?,
                amount: r.i64()?,
            }),
            5 => Ok(SmallBankProcedure::WriteCheck {
                account: r.u64()?,
                amount: r.i64()?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "SmallBankProcedure",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for ContractCall {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ContractCall::SmallBank(p) => {
                w.put_u8(0);
                p.encode(w);
            }
            ContractCall::Program {
                code,
                args,
                declared_keys,
            } => {
                w.put_u8(1);
                w.put_len(code.len());
                w.put_raw(code);
                args.encode(w);
                declared_keys.encode(w);
            }
            ContractCall::KvOps(ops) => {
                w.put_u8(2);
                ops.encode(w);
            }
            ContractCall::Noop => w.put_u8(3),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ContractCall::SmallBank(SmallBankProcedure::decode(r)?)),
            1 => {
                let n = r.seq_len()?;
                let code = r.take(n)?.to_vec();
                Ok(ContractCall::Program {
                    code,
                    args: Vec::decode(r)?,
                    declared_keys: Vec::decode(r)?,
                })
            }
            2 => Ok(ContractCall::KvOps(Vec::decode(r)?)),
            3 => Ok(ContractCall::Noop),
            tag => Err(WireError::InvalidTag {
                type_name: "ContractCall",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for Transaction {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.client.encode(w);
        self.call.encode(w);
        self.shards.encode(w);
        self.submitted_at.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Transaction {
            id: TxId::decode(r)?,
            client: ClientId::decode(r)?,
            call: ContractCall::decode(r)?,
            shards: Vec::decode(r)?,
            submitted_at: SimTime::decode(r)?,
        })
    }
}

impl Wire for PreplayedTx {
    fn encode(&self, w: &mut WireWriter) {
        self.tx.encode(w);
        self.outcome.encode(w);
        w.put_u32(self.order);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PreplayedTx {
            tx: Transaction::decode(r)?,
            outcome: ExecOutcome::decode(r)?,
            order: r.u32()?,
        })
    }
}

impl Wire for BlockKind {
    fn encode(&self, w: &mut WireWriter) {
        let tag: u8 = match self {
            BlockKind::Normal => 0,
            BlockKind::Skip => 1,
            BlockKind::Shift => 2,
        };
        w.put_u8(tag);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BlockKind::Normal),
            1 => Ok(BlockKind::Skip),
            2 => Ok(BlockKind::Shift),
            tag => Err(WireError::InvalidTag {
                type_name: "BlockKind",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Wire for BlockPayload {
    fn encode(&self, w: &mut WireWriter) {
        self.single_shard.encode(w);
        self.cross_shard.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BlockPayload {
            single_shard: Vec::decode(r)?,
            cross_shard: Vec::decode(r)?,
        })
    }
}

impl Wire for Block {
    fn encode(&self, w: &mut WireWriter) {
        self.dag.encode(w);
        self.round.encode(w);
        self.author.encode(w);
        self.shard.encode(w);
        self.seq.encode(w);
        self.kind.encode(w);
        self.payload.encode(w);
        self.created_at.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Block {
            dag: DagId::decode(r)?,
            round: Round::decode(r)?,
            author: ReplicaId::decode(r)?,
            shard: ShardId::decode(r)?,
            seq: SeqNo::decode(r)?,
            kind: BlockKind::decode(r)?,
            payload: BlockPayload::decode(r)?,
            created_at: SimTime::decode(r)?,
        })
    }
}

impl Wire for Header {
    fn encode(&self, w: &mut WireWriter) {
        self.dag.encode(w);
        self.round.encode(w);
        self.author.encode(w);
        self.block_digest.encode(w);
        self.parents.encode(w);
        self.created_at.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Header {
            dag: DagId::decode(r)?,
            round: Round::decode(r)?,
            author: ReplicaId::decode(r)?,
            block_digest: Digest::decode(r)?,
            parents: Vec::decode(r)?,
            created_at: SimTime::decode(r)?,
        })
    }
}

impl Wire for Certificate {
    fn encode(&self, w: &mut WireWriter) {
        self.header_digest.encode(w);
        self.dag.encode(w);
        self.round.encode(w);
        self.author.encode(w);
        self.signers.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // `Certificate::new` re-normalizes the signer list, so a peer cannot
        // smuggle duplicates past `is_valid`'s distinct-signer count.
        Ok(Certificate::new(
            Digest::decode(r)?,
            DagId::decode(r)?,
            Round::decode(r)?,
            ReplicaId::decode(r)?,
            Vec::decode(r)?,
        ))
    }
}

impl Wire for Vertex {
    fn encode(&self, w: &mut WireWriter) {
        self.header.encode(w);
        self.block.encode(w);
        self.certificate.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Vertex {
            header: Header::decode(r)?,
            block: Block::decode(r)?,
            certificate: Certificate::decode(r)?,
        })
    }
}

/// Lower-case hex encoding, used to pass wire buffers through environment
/// variables and stdout lines (node spec / node report hand-off).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
    }
    out
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, WireError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(WireError::InvalidHex);
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(WireError::InvalidHex)?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(WireError::InvalidHex)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_wire_bytes();
        assert_eq!(bytes.len(), value.encoded_len(), "counting mode disagrees");
        let back = T::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(std::f64::consts::PI);
        round_trip(String::from("héllo wire"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some(7u64));
    }

    #[test]
    fn ids_and_time_round_trip() {
        round_trip(ReplicaId::new(3));
        round_trip(ShardId::new(9));
        round_trip(ClientId::new(1));
        round_trip(TxId::new(u64::MAX));
        round_trip(SeqNo::new(12));
        round_trip(DagId::new(2));
        round_trip(Round::new(77));
        round_trip(SimTime::from_micros(123_456));
        round_trip(Digest([1, 2, 3, u64::MAX]));
    }

    #[test]
    fn values_and_ops_round_trip() {
        round_trip(Value::None);
        round_trip(Value::int(-5));
        round_trip(Value::bytes(vec![1, 2, 3]));
        round_trip(Key::checking(42));
        round_trip(Operation::read(Key::savings(1)));
        round_trip(Operation::write(Key::scratch(2), Value::int(9)));
        let mut outcome = ExecOutcome::empty();
        outcome.record_read(Key::checking(1), Value::int(10));
        outcome.record_write(Key::checking(1), Value::int(5));
        outcome.logically_aborted = true;
        round_trip(outcome);
    }

    #[test]
    fn transaction_and_vertex_round_trip() {
        let tx = Transaction::new(
            TxId::new(7),
            ClientId::new(1),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment {
                from: 0,
                to: 1,
                amount: 3,
            }),
            4,
            SimTime::from_micros(10),
        );
        round_trip(tx.clone());

        let block = Block::normal(
            DagId::new(0),
            Round::new(2),
            ReplicaId::new(1),
            ShardId::new(1),
            SeqNo::new(4),
            BlockPayload {
                single_shard: vec![PreplayedTx::new(tx.clone(), ExecOutcome::empty(), 0)],
                cross_shard: vec![tx],
            },
            SimTime::ZERO,
        );
        round_trip(block.clone());

        let header = Header::new(
            DagId::new(0),
            Round::new(2),
            ReplicaId::new(1),
            Digest([9, 9, 9, 9]),
            vec![Digest::ZERO],
            SimTime::ZERO,
        );
        let cert = Certificate::for_header(
            &header,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        round_trip(header.clone());
        round_trip(cert.clone());
        round_trip(Vertex::new(header, block, cert));
    }

    #[test]
    fn strict_decoding_rejects_corruption() {
        assert_eq!(
            Value::from_wire_bytes(&[9]),
            Err(WireError::InvalidTag {
                type_name: "Value",
                tag: 9
            })
        );
        assert_eq!(u32::from_wire_bytes(&[1, 2]), Err(WireError::UnexpectedEof));
        assert_eq!(
            u8::from_wire_bytes(&[1, 2]),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
        // A corrupt huge length prefix must not allocate.
        let mut bad = 0xffff_ffffu32.to_le_bytes().to_vec();
        bad.push(0);
        assert_eq!(
            Vec::<u64>::from_wire_bytes(&bad),
            Err(WireError::LengthOverflow)
        );
    }

    #[test]
    fn hex_round_trip() {
        let bytes = vec![0x00, 0x0f, 0xf0, 0xff, 0x12];
        let hex = to_hex(&bytes);
        assert_eq!(hex, "000ff0ff12");
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex("zz"), Err(WireError::InvalidHex));
        assert_eq!(from_hex("abc"), Err(WireError::InvalidHex));
    }
}
