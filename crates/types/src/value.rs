//! Values stored under keys.
//!
//! The evaluation workload (SmallBank) stores account balances, so the
//! dominant representation is a signed integer. Contract programs may also
//! store opaque byte strings, and a missing key reads as [`Value::None`].

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value stored in the state, read by a `<Read, K>` operation or written by
/// a `<Write, K, V>` operation (paper Section 3.1 data model).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The key is absent (or was deleted).
    #[default]
    None,
    /// A signed 64-bit integer; used for all SmallBank balances.
    Int(i64),
    /// An opaque byte string produced by contract programs.
    Bytes(Bytes),
}

impl Value {
    /// Convenience constructor for integer values.
    pub const fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for byte values.
    pub fn bytes(v: impl Into<Bytes>) -> Self {
        Value::Bytes(v.into())
    }

    /// Returns the integer content, treating `None` as zero.
    ///
    /// SmallBank initializes missing accounts lazily, so an absent balance is
    /// semantically zero; contract programs follow the same convention.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::None => 0,
            Value::Bytes(b) => {
                let mut buf = [0u8; 8];
                let n = b.len().min(8);
                buf[..n].copy_from_slice(&b[..n]);
                i64::from_le_bytes(buf)
            }
        }
    }

    /// Returns `true` if the value is [`Value::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }

    /// Approximate in-memory footprint in bytes, used by the simulator to
    /// size block payloads.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::None => 1,
            Value::Int(_) => 9,
            Value::Bytes(b) => 1 + b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "∅"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Option<i64>> for Value {
    fn from(v: Option<i64>) -> Self {
        v.map(Value::Int).unwrap_or(Value::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_reads_as_zero() {
        assert_eq!(Value::None.as_int(), 0);
        assert!(Value::None.is_none());
    }

    #[test]
    fn int_round_trip() {
        let v = Value::int(-17);
        assert_eq!(v.as_int(), -17);
        assert!(!v.is_none());
        assert_eq!(v, Value::from(-17));
    }

    #[test]
    fn bytes_as_int_uses_le_prefix() {
        let v = Value::bytes(vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(v.as_int(), 1);
        let short = Value::bytes(vec![2]);
        assert_eq!(short.as_int(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::None.to_string(), "∅");
        assert_eq!(Value::bytes(vec![0xab, 0x01]).to_string(), "0xab01");
    }

    #[test]
    fn encoded_len_reflects_payload() {
        assert_eq!(Value::None.encoded_len(), 1);
        assert_eq!(Value::int(1).encoded_len(), 9);
        assert_eq!(Value::bytes(vec![0; 10]).encoded_len(), 11);
    }
}
