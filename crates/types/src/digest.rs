//! Structural digests.
//!
//! A real deployment would hash block contents with SHA-2/SHA-3 and sign
//! them with Ed25519 or BLS. The reproduction replaces cryptography with a
//! deterministic *structural digest* (a 256-bit value derived from a
//! SplitMix64-based mixing of the structure's fields) and replaces signatures
//! with explicit signer sets. The quorum logic — which is all the protocol
//! depends on — is unchanged; see DESIGN.md "Substitutions".

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit structural digest identifying a block, header or vertex.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Digest(pub [u64; 4]);

impl Digest {
    /// The all-zero digest, used as a placeholder.
    pub const ZERO: Digest = Digest([0; 4]);

    /// True if this is the placeholder digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// A short human-readable prefix of the digest, for logs.
    pub fn short(&self) -> String {
        format!("{:08x}", self.0[0] >> 32)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Incremental structural hasher producing a [`Digest`].
///
/// Internally this runs four independent SplitMix64 lanes seeded with
/// different constants; each absorbed word perturbs every lane. This is not
/// cryptographically secure — it does not need to be, since the threat model
/// of the reproduction replaces signatures with explicit signer sets — but it
/// is deterministic across platforms and has good dispersion, so accidental
/// collisions do not occur in practice.
#[derive(Clone, Debug)]
pub struct StructuralHasher {
    lanes: [u64; 4],
}

const LANE_SEEDS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0x2545_f491_4f6c_dd1d,
];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for StructuralHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuralHasher {
    /// Creates a hasher with the default seeds.
    pub fn new() -> Self {
        StructuralHasher { lanes: LANE_SEEDS }
    }

    /// Absorbs a 64-bit word.
    pub fn write_u64(&mut self, word: u64) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            *lane = splitmix(lane.wrapping_add(word).rotate_left(i as u32 * 7 + 1));
        }
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    /// Absorbs a string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs another digest.
    pub fn write_digest(&mut self, d: &Digest) {
        for word in d.0 {
            self.write_u64(word);
        }
    }

    /// Finalizes into a digest.
    pub fn finish(&self) -> Digest {
        let mut out = self.lanes;
        // One extra mixing round so that absorbing nothing still produces a
        // seed-dependent value and the lanes are decorrelated.
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = splitmix(lane.wrapping_add(LANE_SEEDS[(i + 1) % 4]));
        }
        Digest(out)
    }
}

/// Types that can compute their own structural digest.
pub trait Hashable {
    /// Absorbs the structure into the hasher.
    fn absorb(&self, hasher: &mut StructuralHasher);

    /// Convenience wrapper producing the digest directly.
    fn digest(&self) -> Digest {
        let mut h = StructuralHasher::new();
        self.absorb(&mut h);
        h.finish()
    }
}

impl Hashable for u64 {
    fn absorb(&self, hasher: &mut StructuralHasher) {
        hasher.write_u64(*self);
    }
}

impl Hashable for &str {
    fn absorb(&self, hasher: &mut StructuralHasher) {
        hasher.write_str(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_produce_identical_digests() {
        let mut a = StructuralHasher::new();
        let mut b = StructuralHasher::new();
        a.write_u64(1);
        a.write_str("hello");
        b.write_u64(1);
        b.write_str("hello");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_produce_different_digests() {
        let mut a = StructuralHasher::new();
        let mut b = StructuralHasher::new();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn order_matters() {
        let mut a = StructuralHasher::new();
        let mut b = StructuralHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_hasher_is_not_zero() {
        let d = StructuralHasher::new().finish();
        assert!(!d.is_zero());
        assert_ne!(d, Digest::ZERO);
    }

    #[test]
    fn hashable_trait_round_trip() {
        let d1 = 42u64.digest();
        let d2 = 42u64.digest();
        let d3 = 43u64.digest();
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
        assert_eq!("abc".digest(), "abc".digest());
        assert_ne!("abc".digest(), "abd".digest());
    }

    #[test]
    fn digest_display_and_short() {
        let d = 7u64.digest();
        assert_eq!(d.to_string().len(), 64);
        assert_eq!(d.short().len(), 8);
        assert_eq!(Digest::ZERO.to_string(), "0".repeat(64));
    }

    #[test]
    fn bytes_with_length_prefix_avoid_concat_collisions() {
        let mut a = StructuralHasher::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = StructuralHasher::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
