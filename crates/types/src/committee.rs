//! Committee description, quorum thresholds, leader schedule and the
//! rotating shard-to-replica assignment.
//!
//! The committee has `n = 3f + 1` replicas, of which at most `f` may be
//! Byzantine. Leaders are chosen by round-robin on leader rounds (paper
//! Section 2). Each replica serves exactly one shard; after every
//! reconfiguration (i.e. for every new [`DagId`]) the assignment rotates by
//! one position: if replica `R_i` served shard `X`, the next proposer of `X`
//! is `R_((i mod n) + 1)` (paper Section 6).

use crate::ids::{DagId, ReplicaId, Round, ShardId};
use serde::{Deserialize, Serialize};

/// Static description of the replica committee.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Committee {
    /// Total number of replicas (`n`). Also the number of shards, since every
    /// replica doubles as a shard proposer.
    n: u32,
}

impl Committee {
    /// Creates a committee of `n` replicas. `n` must be at least 1; fault
    /// tolerance `f = (n - 1) / 3` follows from `n = 3f + 1`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "a committee needs at least one replica");
        Committee { n }
    }

    /// Number of replicas.
    pub fn size(&self) -> u32 {
        self.n
    }

    /// Number of shards (one per replica).
    pub fn n_shards(&self) -> u32 {
        self.n
    }

    /// Maximum number of Byzantine replicas tolerated.
    pub fn f(&self) -> u32 {
        (self.n.saturating_sub(1)) / 3
    }

    /// `2f + 1`: the quorum needed for certificates, commits and Shift-block
    /// quorums.
    pub fn quorum_threshold(&self) -> usize {
        (2 * self.f() + 1) as usize
    }

    /// `f + 1`: the support needed for a leader vertex to be committable and
    /// for echoing Shift blocks.
    pub fn validity_threshold(&self) -> usize {
        (self.f() + 1) as usize
    }

    /// Iterator over all replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n).map(ReplicaId::new)
    }

    /// Iterator over all shard ids.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.n).map(ShardId::new)
    }

    /// True if `replica` is a member of the committee.
    pub fn contains(&self, replica: ReplicaId) -> bool {
        replica.as_inner() < self.n
    }

    /// The leader of a leader round, chosen round-robin. The DAG id is mixed
    /// in so that the rotation does not restart from replica 0 after every
    /// reconfiguration (which would let a single slow replica repeatedly
    /// stall the first leader round of each DAG).
    pub fn leader(&self, dag: DagId, round: Round) -> ReplicaId {
        let slot = round.as_u64() / 2 + dag.as_inner();
        ReplicaId::new((slot % u64::from(self.n)) as u32)
    }

    /// The leader round responsible for committing `round`: the smallest
    /// leader round `>= round`.
    pub fn leader_round_for(&self, round: Round) -> Round {
        if round.is_leader_round() {
            round
        } else {
            round.next()
        }
    }
}

/// The rotating assignment between shards and replicas for one DAG instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAssignment {
    committee: Committee,
    dag: DagId,
}

impl ShardAssignment {
    /// Assignment in effect during DAG `dag`.
    pub fn new(committee: Committee, dag: DagId) -> Self {
        ShardAssignment { committee, dag }
    }

    /// The committee the assignment refers to.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// The DAG instance the assignment is valid for.
    pub fn dag(&self) -> DagId {
        self.dag
    }

    /// The replica currently serving `shard`.
    ///
    /// In DAG 0 shard `i` is served by replica `i`; every reconfiguration
    /// shifts the assignment by one replica.
    pub fn proposer_of(&self, shard: ShardId) -> ReplicaId {
        let n = u64::from(self.committee.size());
        let idx = (u64::from(shard.as_inner()) + self.dag.as_inner()) % n;
        ReplicaId::new(idx as u32)
    }

    /// The shard currently served by `replica` (inverse of
    /// [`Self::proposer_of`]).
    pub fn shard_of(&self, replica: ReplicaId) -> ShardId {
        let n = u64::from(self.committee.size());
        let idx = (u64::from(replica.as_inner()) + n - (self.dag.as_inner() % n)) % n;
        ShardId::new(idx as u32)
    }

    /// The assignment of the next DAG instance.
    pub fn next(&self) -> ShardAssignment {
        ShardAssignment::new(self.committee, DagId::new(self.dag.as_inner() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_thresholds_follow_three_f_plus_one() {
        let c4 = Committee::new(4);
        assert_eq!(c4.f(), 1);
        assert_eq!(c4.quorum_threshold(), 3);
        assert_eq!(c4.validity_threshold(), 2);

        let c7 = Committee::new(7);
        assert_eq!(c7.f(), 2);
        assert_eq!(c7.quorum_threshold(), 5);
        assert_eq!(c7.validity_threshold(), 3);

        let c64 = Committee::new(64);
        assert_eq!(c64.f(), 21);
        assert_eq!(c64.quorum_threshold(), 43);
        assert_eq!(c64.validity_threshold(), 22);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_committee_is_rejected() {
        let _ = Committee::new(0);
    }

    #[test]
    fn membership_check() {
        let c = Committee::new(4);
        assert!(c.contains(ReplicaId::new(0)));
        assert!(c.contains(ReplicaId::new(3)));
        assert!(!c.contains(ReplicaId::new(4)));
        assert_eq!(c.replicas().count(), 4);
        assert_eq!(c.shards().count(), 4);
    }

    #[test]
    fn leaders_rotate_round_robin_over_leader_rounds() {
        let c = Committee::new(4);
        let d = DagId::new(0);
        assert_eq!(c.leader(d, Round::new(1)), ReplicaId::new(0));
        assert_eq!(c.leader(d, Round::new(3)), ReplicaId::new(1));
        assert_eq!(c.leader(d, Round::new(5)), ReplicaId::new(2));
        assert_eq!(c.leader(d, Round::new(7)), ReplicaId::new(3));
        assert_eq!(c.leader(d, Round::new(9)), ReplicaId::new(0));
        // A new DAG shifts the schedule instead of restarting it.
        assert_eq!(c.leader(DagId::new(1), Round::new(1)), ReplicaId::new(1));
    }

    #[test]
    fn leader_round_for_rounds_up_to_odd() {
        let c = Committee::new(4);
        assert_eq!(c.leader_round_for(Round::new(1)), Round::new(1));
        assert_eq!(c.leader_round_for(Round::new(2)), Round::new(3));
        assert_eq!(c.leader_round_for(Round::new(4)), Round::new(5));
    }

    #[test]
    fn shard_assignment_rotates_by_one_per_dag() {
        let c = Committee::new(4);
        let a0 = ShardAssignment::new(c, DagId::new(0));
        for i in 0..4 {
            assert_eq!(a0.proposer_of(ShardId::new(i)), ReplicaId::new(i));
            assert_eq!(a0.shard_of(ReplicaId::new(i)), ShardId::new(i));
        }
        let a1 = a0.next();
        assert_eq!(a1.dag(), DagId::new(1));
        assert_eq!(a1.proposer_of(ShardId::new(0)), ReplicaId::new(1));
        assert_eq!(a1.proposer_of(ShardId::new(3)), ReplicaId::new(0));
        assert_eq!(a1.shard_of(ReplicaId::new(1)), ShardId::new(0));
        assert_eq!(a1.shard_of(ReplicaId::new(0)), ShardId::new(3));
    }

    #[test]
    fn shard_assignment_is_a_bijection_for_every_dag() {
        let c = Committee::new(7);
        for dag in 0..20u64 {
            let a = ShardAssignment::new(c, DagId::new(dag));
            let mut seen = vec![false; 7];
            for shard in c.shards() {
                let r = a.proposer_of(shard);
                assert!(!seen[r.as_inner() as usize], "proposer assigned twice");
                seen[r.as_inner() as usize] = true;
                assert_eq!(a.shard_of(r), shard, "inverse mapping must agree");
            }
            assert!(seen.into_iter().all(|s| s));
        }
    }
}
