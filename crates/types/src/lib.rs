//! Core types shared by every crate of the Thunderbolt reproduction.
//!
//! This crate deliberately contains only *data*: identifiers, keys and
//! values, transaction payloads, block and DAG-vertex formats, committee
//! descriptions and simulated-time primitives. All behaviour (execution,
//! consensus, storage) lives in the downstream crates so that the type
//! vocabulary stays dependency-free and serializable.
//!
//! The layout mirrors the paper's data model (Section 3.1): transactions
//! carry a contract call whose read/write sets are unknown before execution,
//! every key is statically mapped to a shard id (`SID`), and blocks either
//! carry preplayed single-shard transactions (EOV path) or raw cross-shard
//! transactions (OE path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod committee;
pub mod config;
pub mod digest;
pub mod ids;
pub mod key;
pub mod ops;
pub mod time;
pub mod transaction;
pub mod value;
pub mod vertex;
pub mod wire;

pub use block::{Block, BlockKind, BlockPayload, PreplayedTx};
pub use committee::{Committee, ShardAssignment};
pub use config::{
    CeConfig, LatencyModel, ReconfigConfig, StorageBackend, StorageConfig, SystemConfig,
};
pub use digest::{Digest, Hashable, StructuralHasher};
pub use ids::{ClientId, DagId, ReplicaId, Round, SeqNo, ShardId, TxId};
pub use key::{Key, KeySpace};
pub use ops::{AccessKind, AccessRecord, ExecOutcome, OpKind, Operation, ReadSet, WriteSet};
pub use time::SimTime;
pub use transaction::{ContractCall, SmallBankProcedure, Transaction, TxClass};
pub use value::Value;
pub use vertex::{Certificate, Header, Vertex};
pub use wire::{Wire, WireError, WireReader, WireWriter};
