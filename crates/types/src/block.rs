//! Blocks proposed by shard proposers.
//!
//! A block is the payload of one DAG vertex. In the EOV path it carries the
//! *preplay outcomes* of a batch of single-shard transactions (their
//! read/write sets, results and scheduled order, Figure 3). Cross-shard
//! transactions ride in the same block but without preplay results (OE path,
//! rule P1). Skip blocks and Shift blocks are special block kinds used for
//! preplay recovery (Section 5.4) and non-blocking reconfiguration
//! (Section 6) respectively.

use crate::digest::{Hashable, StructuralHasher};
use crate::ids::{DagId, ReplicaId, Round, SeqNo, ShardId};
use crate::ops::ExecOutcome;
use crate::time::SimTime;
use crate::transaction::Transaction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-shard transaction together with its preplay outcome and its
/// position in the serialized order produced by the concurrent executor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreplayedTx {
    /// The original transaction.
    pub tx: Transaction,
    /// Read/write sets and results obtained during preplay.
    pub outcome: ExecOutcome,
    /// Index of the transaction in the serialized execution order chosen by
    /// the concurrency controller (0-based within the block).
    pub order: u32,
}

impl PreplayedTx {
    /// Creates a preplayed transaction entry.
    pub fn new(tx: Transaction, outcome: ExecOutcome, order: u32) -> Self {
        PreplayedTx { tx, outcome, order }
    }
}

/// The role of a block in the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BlockKind {
    /// An ordinary block carrying transactions.
    #[default]
    Normal,
    /// A skip block: the proposer could not safely preplay because prior
    /// leaders' cross-shard transactions are not yet finalized (Section 5.4).
    Skip,
    /// A Shift block voting for a reconfiguration of shard assignments
    /// (Section 6).
    Shift,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKind::Normal => f.write_str("normal"),
            BlockKind::Skip => f.write_str("skip"),
            BlockKind::Shift => f.write_str("shift"),
        }
    }
}

/// The transaction payload of a block.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPayload {
    /// Single-shard transactions preplayed by the concurrent executor, in
    /// their serialized order.
    pub single_shard: Vec<PreplayedTx>,
    /// Cross-shard transactions (including converted single-shard ones),
    /// submitted without preplay.
    pub cross_shard: Vec<Transaction>,
}

impl BlockPayload {
    /// An empty payload.
    pub fn empty() -> Self {
        BlockPayload::default()
    }

    /// Total number of transactions carried.
    pub fn len(&self) -> usize {
        self.single_shard.len() + self.cross_shard.len()
    }

    /// True if the payload contains no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A block produced by a shard proposer for one DAG round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The DAG instance this block belongs to.
    pub dag: DagId,
    /// The round the block was proposed in.
    pub round: Round,
    /// The replica that authored the block.
    pub author: ReplicaId,
    /// The shard the author was serving when it proposed the block.
    pub shard: ShardId,
    /// Per-author monotone sequence number (used for client deduplication).
    pub seq: SeqNo,
    /// What kind of block this is.
    pub kind: BlockKind,
    /// The transactions carried by the block.
    pub payload: BlockPayload,
    /// Simulated creation time.
    pub created_at: SimTime,
}

impl Block {
    /// Creates a normal block.
    pub fn normal(
        dag: DagId,
        round: Round,
        author: ReplicaId,
        shard: ShardId,
        seq: SeqNo,
        payload: BlockPayload,
        created_at: SimTime,
    ) -> Self {
        Block {
            dag,
            round,
            author,
            shard,
            seq,
            kind: BlockKind::Normal,
            payload,
            created_at,
        }
    }

    /// Creates a skip block (optionally still carrying cross-shard
    /// transactions, which never need preplay).
    pub fn skip(
        dag: DagId,
        round: Round,
        author: ReplicaId,
        shard: ShardId,
        seq: SeqNo,
        cross_shard: Vec<Transaction>,
        created_at: SimTime,
    ) -> Self {
        Block {
            dag,
            round,
            author,
            shard,
            seq,
            kind: BlockKind::Skip,
            payload: BlockPayload {
                single_shard: Vec::new(),
                cross_shard,
            },
            created_at,
        }
    }

    /// Creates a Shift block.
    pub fn shift(
        dag: DagId,
        round: Round,
        author: ReplicaId,
        shard: ShardId,
        seq: SeqNo,
        created_at: SimTime,
    ) -> Self {
        Block {
            dag,
            round,
            author,
            shard,
            seq,
            kind: BlockKind::Shift,
            payload: BlockPayload::empty(),
            created_at,
        }
    }

    /// True if this is a Shift block.
    pub fn is_shift(&self) -> bool {
        self.kind == BlockKind::Shift
    }

    /// True if this is a skip block.
    pub fn is_skip(&self) -> bool {
        self.kind == BlockKind::Skip
    }

    /// Number of transactions carried.
    pub fn tx_count(&self) -> usize {
        self.payload.len()
    }
}

impl Hashable for Block {
    fn absorb(&self, h: &mut StructuralHasher) {
        h.write_u64(self.dag.as_inner());
        h.write_u64(self.round.as_u64());
        h.write_u64(u64::from(self.author.as_inner()));
        h.write_u64(u64::from(self.shard.as_inner()));
        h.write_u64(self.seq.as_inner());
        h.write_u64(match self.kind {
            BlockKind::Normal => 0,
            BlockKind::Skip => 1,
            BlockKind::Shift => 2,
        });
        h.write_u64(self.payload.single_shard.len() as u64);
        for p in &self.payload.single_shard {
            h.write_u64(p.tx.id.as_inner());
            h.write_u64(u64::from(p.order));
            h.write_u64(p.outcome.read_set.len() as u64);
            h.write_u64(p.outcome.write_set.len() as u64);
            for rec in p.outcome.read_set.iter().chain(p.outcome.write_set.iter()) {
                h.write_u64(rec.key.encode());
                h.write_u64(rec.value.as_int() as u64);
            }
        }
        h.write_u64(self.payload.cross_shard.len() as u64);
        for tx in &self.payload.cross_shard {
            h.write_u64(tx.id.as_inner());
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block[{} {} {} {} kind={} txs={}]",
            self.dag,
            self.round,
            self.author,
            self.shard,
            self.kind,
            self.tx_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, TxId};
    use crate::transaction::ContractCall;

    fn sample_tx(id: u64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::Noop,
            4,
            SimTime::ZERO,
        )
    }

    fn sample_block(kind: BlockKind) -> Block {
        let mut block = Block::normal(
            DagId::new(0),
            Round::new(1),
            ReplicaId::new(2),
            ShardId::new(2),
            SeqNo::new(7),
            BlockPayload::empty(),
            SimTime::ZERO,
        );
        block.kind = kind;
        block
    }

    #[test]
    fn constructors_set_kinds() {
        let n = sample_block(BlockKind::Normal);
        assert!(!n.is_shift() && !n.is_skip());
        let s = Block::skip(
            DagId::new(0),
            Round::new(2),
            ReplicaId::new(1),
            ShardId::new(1),
            SeqNo::new(0),
            vec![sample_tx(5)],
            SimTime::ZERO,
        );
        assert!(s.is_skip());
        assert_eq!(s.tx_count(), 1);
        let sh = Block::shift(
            DagId::new(0),
            Round::new(3),
            ReplicaId::new(1),
            ShardId::new(1),
            SeqNo::new(0),
            SimTime::ZERO,
        );
        assert!(sh.is_shift());
        assert_eq!(sh.tx_count(), 0);
    }

    #[test]
    fn digest_depends_on_contents() {
        let a = sample_block(BlockKind::Normal);
        let b = sample_block(BlockKind::Skip);
        assert_ne!(a.digest(), b.digest());

        let mut c = sample_block(BlockKind::Normal);
        c.payload.cross_shard.push(sample_tx(1));
        assert_ne!(a.digest(), c.digest());

        let a2 = sample_block(BlockKind::Normal);
        assert_eq!(a.digest(), a2.digest());
    }

    #[test]
    fn payload_len_counts_both_classes() {
        let mut p = BlockPayload::empty();
        assert!(p.is_empty());
        p.cross_shard.push(sample_tx(1));
        p.single_shard
            .push(PreplayedTx::new(sample_tx(2), ExecOutcome::empty(), 0));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_mentions_round_and_kind() {
        let b = sample_block(BlockKind::Normal);
        let s = b.to_string();
        assert!(s.contains("r1"));
        assert!(s.contains("normal"));
    }
}
