//! Transactions and contract call payloads.
//!
//! A transaction carries a [`ContractCall`] whose concrete read/write set is
//! only discovered by executing it (the paper's "Turing-complete, no prior
//! knowledge" assumption). What *is* known up front is the set of shards the
//! call's parameters live in — clients use it to route the transaction to a
//! shard proposer, and Thunderbolt uses it to classify the transaction as
//! single-shard (EOV path) or cross-shard (OE path).

use crate::ids::{ClientId, ShardId, TxId};
use crate::key::Key;
use crate::ops::Operation;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six SmallBank procedures (paper Section 11.2). The evaluation focuses
/// on `SendPayment` and `GetBalance`, but the full suite is implemented so the
/// workload generator can produce any mix.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmallBankProcedure {
    /// Move the entire savings + checking balance of `from` into the checking
    /// balance of `to`.
    Amalgamate {
        /// Source account.
        from: u64,
        /// Destination account.
        to: u64,
    },
    /// Read-only query returning checking + savings of `account`.
    GetBalance {
        /// Queried account.
        account: u64,
    },
    /// Add `amount` to the checking balance of `account`.
    DepositChecking {
        /// Target account.
        account: u64,
        /// Amount to deposit (non-negative).
        amount: i64,
    },
    /// Transfer `amount` from the checking balance of `from` to `to`.
    SendPayment {
        /// Paying account.
        from: u64,
        /// Receiving account.
        to: u64,
        /// Amount to transfer.
        amount: i64,
    },
    /// Add `amount` (possibly negative) to the savings balance of `account`.
    TransactSavings {
        /// Target account.
        account: u64,
        /// Amount to add.
        amount: i64,
    },
    /// Write a check: subtract `amount` from checking, with a penalty if the
    /// combined balance is insufficient.
    WriteCheck {
        /// Target account.
        account: u64,
        /// Check amount.
        amount: i64,
    },
}

impl SmallBankProcedure {
    /// The accounts named by the procedure parameters. These determine the
    /// shards the transaction is associated with before execution.
    pub fn accounts(&self) -> Vec<u64> {
        match self {
            SmallBankProcedure::Amalgamate { from, to }
            | SmallBankProcedure::SendPayment { from, to, .. } => {
                if from == to {
                    vec![*from]
                } else {
                    vec![*from, *to]
                }
            }
            SmallBankProcedure::GetBalance { account }
            | SmallBankProcedure::DepositChecking { account, .. }
            | SmallBankProcedure::TransactSavings { account, .. }
            | SmallBankProcedure::WriteCheck { account, .. } => vec![*account],
        }
    }

    /// True for the read-only `GetBalance` procedure.
    pub fn is_read_only(&self) -> bool {
        matches!(self, SmallBankProcedure::GetBalance { .. })
    }

    /// Short name used in logs and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            SmallBankProcedure::Amalgamate { .. } => "Amalgamate",
            SmallBankProcedure::GetBalance { .. } => "GetBalance",
            SmallBankProcedure::DepositChecking { .. } => "DepositChecking",
            SmallBankProcedure::SendPayment { .. } => "SendPayment",
            SmallBankProcedure::TransactSavings { .. } => "TransactSavings",
            SmallBankProcedure::WriteCheck { .. } => "WriteCheck",
        }
    }
}

impl fmt::Display for SmallBankProcedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?})", self.name(), self.accounts())
    }
}

/// The payload of a transaction: which contract to run and with which
/// arguments. The interpretation of the payload lives in `tb-contracts`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractCall {
    /// One of the native SmallBank procedures.
    SmallBank(SmallBankProcedure),
    /// A program for the mini contract interpreter: opaque bytecode plus
    /// integer arguments. The bytecode format is defined by `tb-contracts`.
    Program {
        /// Assembled bytecode.
        code: Vec<u8>,
        /// Call arguments.
        args: Vec<i64>,
        /// Keys named by the arguments (used only for shard routing; the
        /// program may touch additional keys discovered at run time).
        declared_keys: Vec<Key>,
    },
    /// A fixed list of operations, useful for tests and micro-benchmarks
    /// where the access pattern must be exact.
    KvOps(Vec<Operation>),
    /// A no-op transaction (used as filler in liveness tests).
    Noop,
}

impl ContractCall {
    /// The keys the caller *declares* up front — i.e. the keys derivable from
    /// the call parameters without executing the contract. This drives shard
    /// routing; the actual read/write set may be larger and is only known
    /// after (pre)play.
    pub fn declared_keys(&self) -> Vec<Key> {
        match self {
            ContractCall::SmallBank(proc_) => proc_
                .accounts()
                .into_iter()
                .flat_map(|a| [Key::checking(a), Key::savings(a)])
                .collect(),
            ContractCall::Program { declared_keys, .. } => declared_keys.clone(),
            ContractCall::KvOps(ops) => {
                let mut keys: Vec<Key> = ops.iter().map(|o| o.key()).collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            }
            ContractCall::Noop => Vec::new(),
        }
    }

    /// True if the call is known to be read-only from its declaration alone.
    pub fn declared_read_only(&self) -> bool {
        match self {
            ContractCall::SmallBank(p) => p.is_read_only(),
            ContractCall::KvOps(ops) => ops.iter().all(|o| matches!(o, Operation::Read { .. })),
            ContractCall::Program { .. } => false,
            ContractCall::Noop => true,
        }
    }
}

/// Classification of a transaction with respect to the shard map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxClass {
    /// All declared keys live in a single shard: eligible for the EOV preplay
    /// path through the concurrent executor.
    SingleShard,
    /// The declared keys span multiple shards: ordered by consensus first
    /// (OE path). Single-shard transactions can also be *converted* to this
    /// class by rules P3/P4/P6.
    CrossShard,
}

impl fmt::Display for TxClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxClass::SingleShard => f.write_str("single-shard"),
            TxClass::CrossShard => f.write_str("cross-shard"),
        }
    }
}

/// A client transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Globally unique identifier.
    pub id: TxId,
    /// Submitting client.
    pub client: ClientId,
    /// The contract call to execute.
    pub call: ContractCall,
    /// Shards associated with the call parameters, sorted and deduplicated.
    pub shards: Vec<ShardId>,
    /// Simulated submission time, used for end-to-end latency accounting.
    pub submitted_at: SimTime,
}

impl Transaction {
    /// Builds a transaction, deriving the associated shards from the declared
    /// keys of the call and the total number of shards in the system.
    pub fn new(
        id: TxId,
        client: ClientId,
        call: ContractCall,
        n_shards: u32,
        submitted_at: SimTime,
    ) -> Self {
        let mut shards: Vec<ShardId> = call
            .declared_keys()
            .iter()
            .map(|k| k.shard(n_shards))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        Transaction {
            id,
            client,
            call,
            shards,
            submitted_at,
        }
    }

    /// The transaction class implied by its declared shards.
    pub fn class(&self) -> TxClass {
        if self.shards.len() <= 1 {
            TxClass::SingleShard
        } else {
            TxClass::CrossShard
        }
    }

    /// The shard the transaction is routed to: its only shard when
    /// single-shard, otherwise the lowest associated shard (the paper routes
    /// cross-shard transactions to any involved proposer; using the lowest
    /// keeps routing deterministic).
    pub fn home_shard(&self) -> ShardId {
        self.shards.first().copied().unwrap_or(ShardId::new(0))
    }

    /// True if the transaction touches the given shard.
    pub fn touches_shard(&self, shard: ShardId) -> bool {
        self.shards.contains(&shard)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]{:?}", self.id, self.class(), self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tx(call: ContractCall, n_shards: u32) -> Transaction {
        Transaction::new(
            TxId::new(1),
            ClientId::new(0),
            call,
            n_shards,
            SimTime::ZERO,
        )
    }

    #[test]
    fn smallbank_send_payment_between_shards_is_cross_shard() {
        // Accounts 0 and 1 land in different shards when there are 4 shards.
        let call = ContractCall::SmallBank(SmallBankProcedure::SendPayment {
            from: 0,
            to: 1,
            amount: 5,
        });
        let t = tx(call, 4);
        assert_eq!(t.class(), TxClass::CrossShard);
        assert_eq!(t.shards, vec![ShardId::new(0), ShardId::new(1)]);
        assert_eq!(t.home_shard(), ShardId::new(0));
    }

    #[test]
    fn smallbank_send_payment_within_a_shard_is_single_shard() {
        // Accounts 0 and 4 both map to shard 0 out of 4 shards.
        let call = ContractCall::SmallBank(SmallBankProcedure::SendPayment {
            from: 0,
            to: 4,
            amount: 5,
        });
        let t = tx(call, 4);
        assert_eq!(t.class(), TxClass::SingleShard);
        assert_eq!(t.shards, vec![ShardId::new(0)]);
    }

    #[test]
    fn get_balance_is_single_shard_and_read_only() {
        let call = ContractCall::SmallBank(SmallBankProcedure::GetBalance { account: 7 });
        assert!(call.declared_read_only());
        let t = tx(call, 4);
        assert_eq!(t.class(), TxClass::SingleShard);
        assert_eq!(t.shards, vec![ShardId::new(3)]);
    }

    #[test]
    fn kv_ops_declared_keys_are_deduplicated() {
        let call = ContractCall::KvOps(vec![
            Operation::read(Key::scratch(1)),
            Operation::write(Key::scratch(1), Value::int(2)),
            Operation::write(Key::scratch(9), Value::int(3)),
        ]);
        assert_eq!(call.declared_keys(), vec![Key::scratch(1), Key::scratch(9)]);
        assert!(!call.declared_read_only());
    }

    #[test]
    fn noop_has_no_shards_and_defaults_home_to_zero() {
        let t = tx(ContractCall::Noop, 4);
        assert!(t.shards.is_empty());
        assert_eq!(t.class(), TxClass::SingleShard);
        assert_eq!(t.home_shard(), ShardId::new(0));
    }

    #[test]
    fn procedure_accounts_and_names() {
        let p = SmallBankProcedure::Amalgamate { from: 3, to: 3 };
        assert_eq!(p.accounts(), vec![3]);
        assert_eq!(p.name(), "Amalgamate");
        let q = SmallBankProcedure::WriteCheck {
            account: 2,
            amount: 10,
        };
        assert_eq!(q.accounts(), vec![2]);
        assert!(!q.is_read_only());
    }
}
