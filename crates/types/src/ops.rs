//! Operations, access records and execution outcomes.
//!
//! A contract interacts with the state through `<Read, K>` and
//! `<Write, K, V>` operations (paper Section 3.1). Executing a transaction
//! produces an [`ExecOutcome`]: the read set (with the values observed), the
//! write set (with the values produced) and an optional return value. The
//! outcome is exactly what a shard proposer ships inside a block so that the
//! other replicas can validate the preplay (paper Section 4, "Validation").

use crate::key::Key;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of a state operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `<Read, K>`: observe the current value of a key.
    Read,
    /// `<Write, K, V>`: replace the value of a key.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("R"),
            OpKind::Write => f.write_str("W"),
        }
    }
}

/// A single state operation issued by an executing contract.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Read the value stored under `key`.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Write `value` under `key`.
    Write {
        /// Key to write.
        key: Key,
        /// New value.
        value: Value,
    },
}

impl Operation {
    /// Creates a read operation.
    pub const fn read(key: Key) -> Self {
        Operation::Read { key }
    }

    /// Creates a write operation.
    pub const fn write(key: Key, value: Value) -> Self {
        Operation::Write { key, value }
    }

    /// The key this operation touches.
    pub const fn key(&self) -> Key {
        match self {
            Operation::Read { key } | Operation::Write { key, .. } => *key,
        }
    }

    /// The kind of the operation.
    pub const fn kind(&self) -> OpKind {
        match self {
            Operation::Read { .. } => OpKind::Read,
            Operation::Write { .. } => OpKind::Write,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read { key } => write!(f, "(R, {key})"),
            Operation::Write { key, value } => write!(f, "(W, {key}, {value})"),
        }
    }
}

/// Whether an access observed or produced the associated value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The value was read.
    Read,
    /// The value was written.
    Write,
}

/// One entry of a read or write set: the key together with the value that was
/// observed (reads) or produced (writes) during preplay.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The accessed key.
    pub key: Key,
    /// The observed / produced value.
    pub value: Value,
}

impl AccessRecord {
    /// Creates an access record.
    pub const fn new(key: Key, value: Value) -> Self {
        AccessRecord { key, value }
    }
}

impl fmt::Display for AccessRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.key, self.value)
    }
}

/// Read set of a transaction: each key read exactly once, with the value the
/// preplay observed for it (the *first* read per key, matching the dependency
/// graph's "first read" rule in Section 8.1).
pub type ReadSet = Vec<AccessRecord>;

/// Write set of a transaction: the *final* value written per key.
pub type WriteSet = Vec<AccessRecord>;

/// The result of executing (or preplaying) one transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Keys read and the values observed.
    pub read_set: ReadSet,
    /// Keys written and the final values produced.
    pub write_set: WriteSet,
    /// Optional return value of the contract (e.g. the balance returned by
    /// SmallBank's `GetBalance`).
    pub return_value: Value,
    /// Whether the contract logic itself decided to abort (e.g. insufficient
    /// funds). Such transactions still commit as no-ops so that every
    /// submitted transaction receives a response (liveness), mirroring how
    /// the paper's SmallBank workload treats application-level aborts.
    pub logically_aborted: bool,
}

impl ExecOutcome {
    /// Creates an empty outcome (no accesses, `None` return value).
    pub fn empty() -> Self {
        ExecOutcome::default()
    }

    /// Records a read of `key` observing `value`, keeping only the first read
    /// per key.
    pub fn record_read(&mut self, key: Key, value: Value) {
        if !self.read_set.iter().any(|r| r.key == key) {
            self.read_set.push(AccessRecord::new(key, value));
        }
    }

    /// Records a write of `value` to `key`, keeping only the last write per
    /// key.
    pub fn record_write(&mut self, key: Key, value: Value) {
        if let Some(existing) = self.write_set.iter_mut().find(|r| r.key == key) {
            existing.value = value;
        } else {
            self.write_set.push(AccessRecord::new(key, value));
        }
    }

    /// The value read for `key`, if any.
    pub fn read_value(&self, key: &Key) -> Option<&Value> {
        self.read_set
            .iter()
            .find(|r| r.key == *key)
            .map(|r| &r.value)
    }

    /// The value written to `key`, if any.
    pub fn written_value(&self, key: &Key) -> Option<&Value> {
        self.write_set
            .iter()
            .find(|r| r.key == *key)
            .map(|r| &r.value)
    }

    /// Every key touched by the transaction (reads and writes, deduplicated).
    pub fn touched_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .read_set
            .iter()
            .chain(self.write_set.iter())
            .map(|r| r.key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Returns true if the outcome writes to `key`.
    pub fn writes(&self, key: &Key) -> bool {
        self.write_set.iter().any(|r| r.key == *key)
    }

    /// Returns true if the outcome reads `key`.
    pub fn reads(&self, key: &Key) -> bool {
        self.read_set.iter().any(|r| r.key == *key)
    }

    /// True when two outcomes conflict: they touch a common key and at least
    /// one of the two accesses is a write.
    pub fn conflicts_with(&self, other: &ExecOutcome) -> bool {
        for key in self.touched_keys() {
            let self_writes = self.writes(&key);
            let other_writes = other.writes(&key);
            let other_touches = other_writes || other.reads(&key);
            if other_touches && (self_writes || other_writes) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(row: u64) -> Key {
        Key::scratch(row)
    }

    #[test]
    fn operation_accessors() {
        let r = Operation::read(k(1));
        let w = Operation::write(k(2), Value::int(5));
        assert_eq!(r.key(), k(1));
        assert_eq!(r.kind(), OpKind::Read);
        assert_eq!(w.key(), k(2));
        assert_eq!(w.kind(), OpKind::Write);
        assert_eq!(r.to_string(), "(R, scratch/1)");
        assert_eq!(w.to_string(), "(W, scratch/2, 5)");
    }

    #[test]
    fn outcome_keeps_first_read_and_last_write() {
        let mut out = ExecOutcome::empty();
        out.record_read(k(1), Value::int(3));
        out.record_read(k(1), Value::int(99));
        out.record_write(k(1), Value::int(4));
        out.record_write(k(1), Value::int(5));
        assert_eq!(out.read_value(&k(1)), Some(&Value::int(3)));
        assert_eq!(out.written_value(&k(1)), Some(&Value::int(5)));
        assert_eq!(out.read_set.len(), 1);
        assert_eq!(out.write_set.len(), 1);
    }

    #[test]
    fn touched_keys_deduplicates() {
        let mut out = ExecOutcome::empty();
        out.record_read(k(1), Value::int(0));
        out.record_write(k(1), Value::int(1));
        out.record_write(k(2), Value::int(2));
        assert_eq!(out.touched_keys(), vec![k(1), k(2)]);
    }

    #[test]
    fn conflict_requires_a_write_on_a_shared_key() {
        let mut read_only_a = ExecOutcome::empty();
        read_only_a.record_read(k(1), Value::int(0));
        let mut read_only_b = ExecOutcome::empty();
        read_only_b.record_read(k(1), Value::int(0));
        assert!(!read_only_a.conflicts_with(&read_only_b));

        let mut writer = ExecOutcome::empty();
        writer.record_write(k(1), Value::int(9));
        assert!(read_only_a.conflicts_with(&writer));
        assert!(writer.conflicts_with(&read_only_a));

        let mut disjoint = ExecOutcome::empty();
        disjoint.record_write(k(7), Value::int(1));
        assert!(!disjoint.conflicts_with(&writer));
    }

    #[test]
    fn access_record_display() {
        let rec = AccessRecord::new(k(4), Value::int(2));
        assert_eq!(rec.to_string(), "scratch/4=2");
    }
}
