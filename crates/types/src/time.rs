//! Simulated time.
//!
//! The multi-replica experiments run on a discrete-event simulator
//! (`tb-network`). All protocol timestamps — submission times, message
//! delivery times, commit times — are expressed in [`SimTime`], a monotone
//! microsecond counter, so latency and throughput figures are independent of
//! the wall clock of the machine running the simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a timestamp from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a timestamp from a fractional number of seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed time since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert!((SimTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b - a, SimTime::ZERO);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_micros(6));
    }

    #[test]
    fn display_picks_a_sensible_unit() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn max_returns_the_later_timestamp() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
