//! A mini stack-machine contract interpreter.
//!
//! The paper's key assumption is that contracts are Turing-complete and that
//! their read/write sets cannot be known before execution (they are
//! "derived exclusively via the preplay process", Section 4). The SmallBank
//! procedures alone do not demonstrate that property — their accesses follow
//! directly from the call parameters — so this module provides a small
//! bytecode interpreter whose programs *compute* the keys they access: a
//! program can read a pointer from one storage slot and then dereference it,
//! loop over a runtime-determined range, or branch on stored values.
//!
//! The instruction encoding is deliberately simple (fixed 9-byte
//! instructions: a one-byte opcode and an eight-byte little-endian operand)
//! so that programs are easy to assemble, disassemble and fuzz.

use crate::state::{CallResult, ExecError, StateAccess};
use serde::{Deserialize, Serialize};
use tb_types::{Key, KeySpace, Value};

/// Maximum number of instructions a single call may execute before it is
/// rejected as out-of-gas. Keeps buggy or adversarial programs from stalling
/// an executor.
pub const DEFAULT_GAS_LIMIT: u64 = 100_000;

/// Maximum operand stack depth.
const MAX_STACK: usize = 1_024;

/// One interpreter instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Push an immediate value.
    Push(i64),
    /// Push the call argument at the given index (missing arguments read 0).
    Arg(u8),
    /// Pop a row number, read `contract/<row>` and push the value.
    Load,
    /// Pop a value, pop a row number, write the value to `contract/<row>`.
    Store,
    /// Pop a space tag and a row number, read that key and push the value.
    LoadSpace,
    /// Pop a value, a space tag and a row number, write the value.
    StoreSpace,
    /// Pop two values, push their sum.
    Add,
    /// Pop two values, push `second - top`.
    Sub,
    /// Pop two values, push their product.
    Mul,
    /// Duplicate the top of the stack.
    Dup,
    /// Discard the top of the stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Unconditional jump to the instruction index in the operand.
    Jmp(u32),
    /// Pop a value; jump to the operand index if it is zero.
    Jz(u32),
    /// Pop two values, push 1 if `second < top` else 0.
    Lt,
    /// Pop two values, push 1 if `second > top` else 0.
    Gt,
    /// Pop two values, push 1 if they are equal else 0.
    Eq,
    /// Rotate the three topmost values: `.. a b c` becomes `.. b c a`.
    Rot,
    /// Pop the return value and stop successfully.
    Ret,
    /// Stop and mark the call as logically rejected.
    Reject,
}

impl Instr {
    fn opcode(self) -> u8 {
        match self {
            Instr::Push(_) => 0x01,
            Instr::Arg(_) => 0x02,
            Instr::Load => 0x03,
            Instr::Store => 0x04,
            Instr::LoadSpace => 0x05,
            Instr::StoreSpace => 0x06,
            Instr::Add => 0x07,
            Instr::Sub => 0x08,
            Instr::Mul => 0x09,
            Instr::Dup => 0x0A,
            Instr::Pop => 0x0B,
            Instr::Swap => 0x0C,
            Instr::Jmp(_) => 0x0D,
            Instr::Jz(_) => 0x0E,
            Instr::Lt => 0x0F,
            Instr::Gt => 0x10,
            Instr::Eq => 0x11,
            Instr::Ret => 0x12,
            Instr::Reject => 0x13,
            Instr::Rot => 0x14,
        }
    }

    fn operand(self) -> i64 {
        match self {
            Instr::Push(v) => v,
            Instr::Arg(i) => i64::from(i),
            Instr::Jmp(t) | Instr::Jz(t) => i64::from(t),
            _ => 0,
        }
    }

    fn decode(opcode: u8, operand: i64) -> Result<Instr, ExecError> {
        Ok(match opcode {
            0x01 => Instr::Push(operand),
            0x02 => Instr::Arg(u8::try_from(operand).map_err(|_| bad("arg index"))?),
            0x03 => Instr::Load,
            0x04 => Instr::Store,
            0x05 => Instr::LoadSpace,
            0x06 => Instr::StoreSpace,
            0x07 => Instr::Add,
            0x08 => Instr::Sub,
            0x09 => Instr::Mul,
            0x0A => Instr::Dup,
            0x0B => Instr::Pop,
            0x0C => Instr::Swap,
            0x0D => Instr::Jmp(u32::try_from(operand).map_err(|_| bad("jump target"))?),
            0x0E => Instr::Jz(u32::try_from(operand).map_err(|_| bad("jump target"))?),
            0x0F => Instr::Lt,
            0x10 => Instr::Gt,
            0x11 => Instr::Eq,
            0x12 => Instr::Ret,
            0x13 => Instr::Reject,
            0x14 => Instr::Rot,
            other => return Err(bad(format!("unknown opcode 0x{other:02x}"))),
        })
    }
}

fn bad(reason: impl std::fmt::Display) -> ExecError {
    ExecError::invalid(reason.to_string())
}

/// Size of one encoded instruction in bytes.
const INSTR_LEN: usize = 9;

/// An assembled contract program.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    code: Vec<u8>,
}

impl Program {
    /// Assembles instructions into bytecode.
    pub fn assemble(instrs: &[Instr]) -> Program {
        let mut code = Vec::with_capacity(instrs.len() * INSTR_LEN);
        for instr in instrs {
            code.push(instr.opcode());
            code.extend_from_slice(&instr.operand().to_le_bytes());
        }
        Program { code }
    }

    /// Wraps raw bytecode (e.g. taken from a [`tb_types::ContractCall`]).
    pub fn from_bytes(code: Vec<u8>) -> Program {
        Program { code }
    }

    /// The raw bytecode.
    pub fn bytes(&self) -> &[u8] {
        &self.code
    }

    /// Consumes the program and returns the bytecode.
    pub fn into_bytes(self) -> Vec<u8> {
        self.code
    }

    /// Disassembles the bytecode back into instructions.
    pub fn instructions(&self) -> Result<Vec<Instr>, ExecError> {
        if !self.code.len().is_multiple_of(INSTR_LEN) {
            return Err(bad("truncated bytecode"));
        }
        self.code
            .chunks_exact(INSTR_LEN)
            .map(|chunk| {
                let operand = i64::from_le_bytes(chunk[1..INSTR_LEN].try_into().expect("9 bytes"));
                Instr::decode(chunk[0], operand)
            })
            .collect()
    }

    /// Runs the program with the default gas limit.
    pub fn run<S: StateAccess + ?Sized>(
        &self,
        args: &[i64],
        state: &mut S,
    ) -> Result<CallResult, ExecError> {
        self.run_with_gas(args, state, DEFAULT_GAS_LIMIT)
    }

    /// Runs the program with an explicit gas limit.
    pub fn run_with_gas<S: StateAccess + ?Sized>(
        &self,
        args: &[i64],
        state: &mut S,
        gas_limit: u64,
    ) -> Result<CallResult, ExecError> {
        let instrs = self.instructions()?;
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        let mut gas: u64 = 0;

        macro_rules! pop {
            () => {
                stack.pop().ok_or_else(|| bad("stack underflow"))?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= MAX_STACK {
                    return Err(bad("stack overflow"));
                }
                stack.push($v);
            }};
        }

        while pc < instrs.len() {
            gas += 1;
            if gas > gas_limit {
                return Err(bad("out of gas"));
            }
            let instr = instrs[pc];
            pc += 1;
            match instr {
                Instr::Push(v) => push!(v),
                Instr::Arg(i) => push!(args.get(usize::from(i)).copied().unwrap_or(0)),
                Instr::Load => {
                    let row = pop!();
                    let key = Key::contract(row_to_u64(row)?);
                    let value = state.read(key)?;
                    push!(value.as_int());
                }
                Instr::Store => {
                    let value = pop!();
                    let row = pop!();
                    let key = Key::contract(row_to_u64(row)?);
                    state.write(key, Value::int(value))?;
                }
                Instr::LoadSpace => {
                    let space = pop!();
                    let row = pop!();
                    let key = Key::new(space_from_tag(space)?, row_to_u64(row)?);
                    let value = state.read(key)?;
                    push!(value.as_int());
                }
                Instr::StoreSpace => {
                    let value = pop!();
                    let space = pop!();
                    let row = pop!();
                    let key = Key::new(space_from_tag(space)?, row_to_u64(row)?);
                    state.write(key, Value::int(value))?;
                }
                Instr::Add => {
                    let b = pop!();
                    let a = pop!();
                    push!(a.wrapping_add(b));
                }
                Instr::Sub => {
                    let b = pop!();
                    let a = pop!();
                    push!(a.wrapping_sub(b));
                }
                Instr::Mul => {
                    let b = pop!();
                    let a = pop!();
                    push!(a.wrapping_mul(b));
                }
                Instr::Dup => {
                    let top = *stack.last().ok_or_else(|| bad("stack underflow"))?;
                    push!(top);
                }
                Instr::Pop => {
                    let _ = pop!();
                }
                Instr::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Instr::Jmp(target) => {
                    pc = jump_target(target, instrs.len())?;
                }
                Instr::Jz(target) => {
                    let cond = pop!();
                    if cond == 0 {
                        pc = jump_target(target, instrs.len())?;
                    }
                }
                Instr::Lt => {
                    let b = pop!();
                    let a = pop!();
                    push!(i64::from(a < b));
                }
                Instr::Gt => {
                    let b = pop!();
                    let a = pop!();
                    push!(i64::from(a > b));
                }
                Instr::Eq => {
                    let b = pop!();
                    let a = pop!();
                    push!(i64::from(a == b));
                }
                Instr::Rot => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(c);
                    push!(a);
                }
                Instr::Ret => {
                    let value = stack.pop().unwrap_or(0);
                    return Ok(CallResult::ok(Value::int(value)));
                }
                Instr::Reject => return Ok(CallResult::rejected()),
            }
        }
        // Falling off the end returns the top of stack (or 0).
        Ok(CallResult::ok(Value::int(stack.pop().unwrap_or(0))))
    }
}

fn row_to_u64(row: i64) -> Result<u64, ExecError> {
    u64::try_from(row).map_err(|_| bad("negative key row"))
}

fn space_from_tag(tag: i64) -> Result<KeySpace, ExecError> {
    KeySpace::ALL
        .into_iter()
        .find(|s| i64::from(s.tag()) == tag)
        .ok_or_else(|| bad(format!("unknown key space tag {tag}")))
}

fn jump_target(target: u32, len: usize) -> Result<usize, ExecError> {
    let target = target as usize;
    if target > len {
        return Err(bad("jump out of range"));
    }
    Ok(target)
}

/// Convenience builders for commonly used contract programs.
///
/// These are used by the workload generator (mixed contract workloads), the
/// examples and the property tests. Every builder returns a [`Program`]
/// together with the argument convention it expects.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProgramBuilder;

impl ProgramBuilder {
    /// `counter_add`: `args = [slot, delta]`; adds `delta` to contract slot
    /// `slot` and returns 0.
    pub fn counter_add() -> Program {
        Program::assemble(&[
            Instr::Arg(0), // slot
            Instr::Dup,    // slot slot
            Instr::Load,   // slot value
            Instr::Arg(1), // slot value delta
            Instr::Add,    // slot new
            Instr::Store,  // (writes contract/slot = new)
            Instr::Push(0),
            Instr::Ret,
        ])
    }

    /// `token_transfer`: `args = [from_slot, to_slot, amount]`; moves
    /// `amount` between two contract slots, rejecting on insufficient funds.
    pub fn token_transfer() -> Program {
        Program::assemble(&[
            // if balance(from) < amount: reject
            Instr::Arg(0),
            Instr::Load,
            Instr::Arg(2),
            Instr::Lt,
            Instr::Jz(6),
            Instr::Reject,
            // from -= amount
            Instr::Arg(0),
            Instr::Arg(0),
            Instr::Load,
            Instr::Arg(2),
            Instr::Sub,
            Instr::Store,
            // to += amount
            Instr::Arg(1),
            Instr::Arg(1),
            Instr::Load,
            Instr::Arg(2),
            Instr::Add,
            Instr::Store,
            Instr::Push(1),
            Instr::Ret,
        ])
    }

    /// `indirect_touch`: `args = [pointer_slot, delta]`; reads a *pointer*
    /// from `pointer_slot` and adds `delta` to the slot the pointer refers
    /// to. The touched key is therefore unknowable without executing the
    /// contract — the paper's motivating case for preplay.
    pub fn indirect_touch() -> Program {
        Program::assemble(&[
            Instr::Arg(0),
            Instr::Load, // pointer value = target slot
            Instr::Dup,
            Instr::Load, // current value of target slot
            Instr::Arg(1),
            Instr::Add,
            Instr::Store, // store new value at target slot
            Instr::Push(0),
            Instr::Ret,
        ])
    }

    /// `range_sum`: `args = [start_slot, count]`; sums `count` consecutive
    /// contract slots starting at `start_slot` and returns the sum. The
    /// number of reads depends on a runtime argument.
    pub fn range_sum() -> Program {
        // Stack registers: [acc, i] with the loop counter on top.
        Program::assemble(&[
            Instr::Push(0), // 0: acc
            Instr::Push(0), // 1: i
            // loop head (2): if i == count goto exit(6), else goto body(8)
            Instr::Dup,    // 2: acc i i
            Instr::Arg(1), // 3: acc i i count
            Instr::Eq,     // 4: acc i eq
            Instr::Jz(8),  // 5: not yet done -> body
            Instr::Pop,    // 6: acc
            Instr::Ret,    // 7: return acc
            // body (8): acc += load(start + i); i += 1
            Instr::Dup,     // 8: acc i i
            Instr::Arg(0),  // 9: acc i i start
            Instr::Add,     // 10: acc i (start+i)
            Instr::Load,    // 11: acc i v
            Instr::Rot,     // 12: i v acc
            Instr::Add,     // 13: i acc'
            Instr::Swap,    // 14: acc' i
            Instr::Push(1), // 15: acc' i 1
            Instr::Add,     // 16: acc' (i+1)
            Instr::Jmp(2),  // 17: loop
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MapState;

    #[test]
    fn assemble_disassemble_round_trip() {
        let instrs = vec![
            Instr::Push(-7),
            Instr::Arg(2),
            Instr::Load,
            Instr::Store,
            Instr::Jmp(3),
            Instr::Jz(0),
            Instr::Ret,
        ];
        let program = Program::assemble(&instrs);
        assert_eq!(program.instructions().unwrap(), instrs);
        assert_eq!(program.bytes().len(), instrs.len() * 9);
        let rebuilt = Program::from_bytes(program.clone().into_bytes());
        assert_eq!(rebuilt, program);
    }

    #[test]
    fn truncated_bytecode_is_rejected() {
        let program = Program::from_bytes(vec![0x01, 0x00]);
        assert!(program.instructions().is_err());
        let unknown = Program::from_bytes(vec![0xFF; 9]);
        assert!(unknown.instructions().is_err());
    }

    #[test]
    fn arithmetic_and_return() {
        let p = Program::assemble(&[Instr::Push(4), Instr::Push(5), Instr::Mul, Instr::Ret]);
        let mut state = MapState::new();
        let r = p.run(&[], &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(20));
    }

    #[test]
    fn load_and_store_touch_contract_space() {
        // store 42 at slot 3 then load it back
        let p = Program::assemble(&[
            Instr::Push(3),
            Instr::Push(42),
            Instr::Store,
            Instr::Push(3),
            Instr::Load,
            Instr::Ret,
        ]);
        let mut state = MapState::new();
        let r = p.run(&[], &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(42));
        assert_eq!(state.peek(&Key::contract(3)), Value::int(42));
    }

    #[test]
    fn load_space_reads_other_namespaces() {
        let p = Program::assemble(&[
            Instr::Push(7),                                   // row
            Instr::Push(i64::from(KeySpace::Checking.tag())), // space
            Instr::LoadSpace,
            Instr::Ret,
        ]);
        let mut state = MapState::with_entries([(Key::checking(7), Value::int(55))]);
        let r = p.run(&[], &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(55));
    }

    #[test]
    fn store_space_rejects_unknown_tags() {
        let p = Program::assemble(&[
            Instr::Push(1),
            Instr::Push(99),
            Instr::Push(5),
            Instr::StoreSpace,
        ]);
        let mut state = MapState::new();
        let err = p.run(&[], &mut state).unwrap_err();
        assert!(!err.is_abort());
    }

    #[test]
    fn out_of_gas_is_reported() {
        let p = Program::assemble(&[Instr::Jmp(0)]);
        let mut state = MapState::new();
        let err = p.run_with_gas(&[], &mut state, 100).unwrap_err();
        assert_eq!(err, ExecError::invalid("out of gas"));
    }

    #[test]
    fn stack_underflow_is_reported() {
        let p = Program::assemble(&[Instr::Add]);
        let mut state = MapState::new();
        assert!(p.run(&[], &mut state).is_err());
    }

    #[test]
    fn counter_add_builder_works() {
        let p = ProgramBuilder::counter_add();
        let mut state = MapState::with_entries([(Key::contract(9), Value::int(10))]);
        p.run(&[9, 5], &mut state).unwrap();
        assert_eq!(state.peek(&Key::contract(9)), Value::int(15));
        p.run(&[9, -3], &mut state).unwrap();
        assert_eq!(state.peek(&Key::contract(9)), Value::int(12));
    }

    #[test]
    fn token_transfer_builder_moves_and_rejects() {
        let p = ProgramBuilder::token_transfer();
        let mut state = MapState::with_entries([
            (Key::contract(1), Value::int(100)),
            (Key::contract(2), Value::int(0)),
        ]);
        let ok = p.run(&[1, 2, 60], &mut state).unwrap();
        assert!(!ok.logically_aborted);
        assert_eq!(state.peek(&Key::contract(1)), Value::int(40));
        assert_eq!(state.peek(&Key::contract(2)), Value::int(60));

        let rejected = p.run(&[1, 2, 60], &mut state).unwrap();
        assert!(rejected.logically_aborted);
        assert_eq!(state.peek(&Key::contract(1)), Value::int(40));
    }

    #[test]
    fn indirect_touch_accesses_a_runtime_determined_key() {
        let p = ProgramBuilder::indirect_touch();
        // Slot 1 points at slot 7.
        let mut state = MapState::with_entries([
            (Key::contract(1), Value::int(7)),
            (Key::contract(7), Value::int(100)),
        ]);
        p.run(&[1, 11], &mut state).unwrap();
        assert_eq!(state.peek(&Key::contract(7)), Value::int(111));
        // Redirect the pointer: the same program now touches a different key.
        state.write(Key::contract(1), Value::int(8)).unwrap();
        p.run(&[1, 5], &mut state).unwrap();
        assert_eq!(state.peek(&Key::contract(8)), Value::int(5));
        assert_eq!(state.peek(&Key::contract(7)), Value::int(111));
    }

    #[test]
    fn range_sum_loops_a_runtime_determined_number_of_times() {
        let p = ProgramBuilder::range_sum();
        let mut state = MapState::with_entries(
            (0..5u64).map(|i| (Key::contract(10 + i), Value::int(i as i64 + 1))),
        );
        let r = p.run(&[10, 5], &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(15));
        let r2 = p.run(&[10, 2], &mut state).unwrap();
        assert_eq!(r2.return_value, Value::int(3));
        let r0 = p.run(&[10, 0], &mut state).unwrap();
        assert_eq!(r0.return_value, Value::int(0));
    }

    #[test]
    fn negative_key_rows_are_invalid() {
        let p = Program::assemble(&[Instr::Push(-1), Instr::Load, Instr::Ret]);
        let mut state = MapState::new();
        assert!(p.run(&[], &mut state).is_err());
    }
}
