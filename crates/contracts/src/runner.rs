//! Dispatch of [`ContractCall`]s onto a [`StateAccess`].
//!
//! Every execution path in the system — preplay in the concurrent executor,
//! the OCC / 2PL / serial baselines, post-consensus validation and
//! deterministic cross-shard execution — funnels through [`execute_call`], so
//! a transaction always runs exactly the same contract logic regardless of
//! which concurrency control hosts it.

use crate::interpreter::Program;
use crate::smallbank::execute_smallbank;
use crate::state::{CallResult, ExecError, StateAccess};
use tb_types::{ContractCall, Operation, Value};

/// Executes a raw operation list (the [`ContractCall::KvOps`] payload).
pub fn execute_ops<S: StateAccess + ?Sized>(
    ops: &[Operation],
    state: &mut S,
) -> Result<CallResult, ExecError> {
    let mut last_read = Value::None;
    for op in ops {
        match op {
            Operation::Read { key } => {
                last_read = state.read(*key)?;
            }
            Operation::Write { key, value } => {
                state.write(*key, value.clone())?;
            }
        }
    }
    Ok(CallResult::ok(last_read))
}

/// Executes a contract call against `state`.
///
/// Returns [`ExecError::Aborted`] only when the underlying concurrency
/// control aborted the transaction (the caller must retry); malformed
/// programs surface as a successful call with `logically_aborted = true`,
/// because consensus must still assign them a deterministic outcome.
pub fn execute_call<S: StateAccess + ?Sized>(
    call: &ContractCall,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    match call {
        ContractCall::SmallBank(proc_) => execute_smallbank(proc_, state),
        ContractCall::KvOps(ops) => execute_ops(ops, state),
        ContractCall::Noop => Ok(CallResult::ok(Value::None)),
        ContractCall::Program { code, args, .. } => {
            let program = Program::from_bytes(code.clone());
            match program.run(args, state) {
                Ok(result) => Ok(result),
                // Concurrency-control aborts must propagate so the executor
                // retries; anything else (bad bytecode, out of gas) becomes a
                // deterministic rejection.
                Err(err) if err.is_abort() => Err(err),
                Err(_) => Ok(CallResult::rejected()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::ProgramBuilder;
    use crate::state::MapState;
    use tb_types::{Key, SmallBankProcedure};

    #[test]
    fn noop_returns_none() {
        let mut state = MapState::new();
        let r = execute_call(&ContractCall::Noop, &mut state).unwrap();
        assert_eq!(r.return_value, Value::None);
        assert!(!r.logically_aborted);
    }

    #[test]
    fn kv_ops_apply_in_order_and_return_last_read() {
        let mut state = MapState::new();
        let call = ContractCall::KvOps(vec![
            Operation::write(Key::scratch(1), Value::int(5)),
            Operation::read(Key::scratch(1)),
            Operation::write(Key::scratch(2), Value::int(6)),
        ]);
        let r = execute_call(&call, &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(5));
        assert_eq!(state.peek(&Key::scratch(2)), Value::int(6));
    }

    #[test]
    fn smallbank_calls_dispatch() {
        let mut state = MapState::with_entries([
            (Key::checking(1), Value::int(10)),
            (Key::savings(1), Value::int(5)),
        ]);
        let call = ContractCall::SmallBank(SmallBankProcedure::GetBalance { account: 1 });
        let r = execute_call(&call, &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(15));
    }

    #[test]
    fn program_calls_dispatch_through_the_interpreter() {
        let mut state = MapState::with_entries([(Key::contract(3), Value::int(7))]);
        let call = ContractCall::Program {
            code: ProgramBuilder::counter_add().into_bytes(),
            args: vec![3, 10],
            declared_keys: vec![Key::contract(3)],
        };
        execute_call(&call, &mut state).unwrap();
        assert_eq!(state.peek(&Key::contract(3)), Value::int(17));
    }

    #[test]
    fn malformed_programs_become_deterministic_rejections() {
        let mut state = MapState::new();
        let call = ContractCall::Program {
            code: vec![0xFF; 9],
            args: vec![],
            declared_keys: vec![],
        };
        let r = execute_call(&call, &mut state).unwrap();
        assert!(r.logically_aborted);
    }

    #[test]
    fn cc_aborts_propagate_out_of_programs() {
        struct AlwaysAbort;
        impl StateAccess for AlwaysAbort {
            fn read(&mut self, _key: Key) -> Result<Value, ExecError> {
                Err(ExecError::aborted("conflict"))
            }
            fn write(&mut self, _key: Key, _value: Value) -> Result<(), ExecError> {
                Err(ExecError::aborted("conflict"))
            }
        }
        let call = ContractCall::Program {
            code: ProgramBuilder::counter_add().into_bytes(),
            args: vec![1, 1],
            declared_keys: vec![],
        };
        let err = execute_call(&call, &mut AlwaysAbort).unwrap_err();
        assert!(err.is_abort());
    }
}
