//! The state-access interface contracts execute against.

use std::collections::HashMap;
use std::fmt;
use tb_types::{ExecOutcome, Key, Value};

/// Errors surfaced to a running contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The concurrency control decided to abort the transaction (e.g. it was
    /// invalidated by a conflicting writer). The executor must stop and
    /// re-execute the transaction from scratch.
    Aborted {
        /// Human-readable reason, for diagnostics.
        reason: String,
    },
    /// The contract program is malformed (bad opcode, stack underflow, out of
    /// gas, ...). Such transactions commit as no-ops with
    /// `logically_aborted = true` so that the client still gets a response.
    InvalidProgram {
        /// Description of the defect.
        reason: String,
    },
}

impl ExecError {
    /// Convenience constructor for concurrency-control aborts.
    pub fn aborted(reason: impl Into<String>) -> Self {
        ExecError::Aborted {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for program errors.
    pub fn invalid(reason: impl Into<String>) -> Self {
        ExecError::InvalidProgram {
            reason: reason.into(),
        }
    }

    /// True if the error is a concurrency-control abort (i.e. the transaction
    /// should be retried).
    pub fn is_abort(&self) -> bool {
        matches!(self, ExecError::Aborted { .. })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Aborted { reason } => write!(f, "transaction aborted: {reason}"),
            ExecError::InvalidProgram { reason } => write!(f, "invalid program: {reason}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a successful contract call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallResult {
    /// Value returned to the client (e.g. the queried balance).
    pub return_value: Value,
    /// True if the contract's own logic rejected the call (e.g. insufficient
    /// funds). The transaction still commits — as a no-op if it performed no
    /// writes — so the client receives a deterministic response.
    pub logically_aborted: bool,
}

impl CallResult {
    /// A successful call returning `value`.
    pub fn ok(value: Value) -> Self {
        CallResult {
            return_value: value,
            logically_aborted: false,
        }
    }

    /// A call rejected by contract logic.
    pub fn rejected() -> Self {
        CallResult {
            return_value: Value::None,
            logically_aborted: true,
        }
    }
}

/// The interface a running contract uses to touch state.
///
/// Implementations decide *which* value a read observes (committed state,
/// uncommitted values of other transactions in the concurrent executor,
/// snapshot values in OCC, ...) and may abort the transaction at any
/// operation by returning [`ExecError::Aborted`].
pub trait StateAccess {
    /// Reads the current value of `key`.
    fn read(&mut self, key: Key) -> Result<Value, ExecError>;

    /// Writes `value` to `key`.
    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError>;
}

impl<S: StateAccess + ?Sized> StateAccess for &mut S {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        (**self).read(key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        (**self).write(key, value)
    }
}

/// A simple map-backed [`StateAccess`] used by unit tests, examples and the
/// deterministic re-execution paths (validation, cross-shard execution).
///
/// Reads fall back to a base lookup function when the key has not been
/// written locally, so the same type serves both "fresh state" tests and
/// "overlay on committed storage" execution.
pub struct MapState<'a> {
    local: HashMap<Key, Value>,
    base: Box<dyn Fn(&Key) -> Value + 'a>,
}

impl fmt::Debug for MapState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapState")
            .field("local_keys", &self.local.len())
            .finish()
    }
}

impl Default for MapState<'static> {
    fn default() -> Self {
        Self::new()
    }
}

impl MapState<'static> {
    /// Creates an empty state (all keys read as [`Value::None`]).
    pub fn new() -> Self {
        MapState {
            local: HashMap::new(),
            base: Box::new(|_| Value::None),
        }
    }

    /// Creates a state seeded with the given entries.
    pub fn with_entries(entries: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let mut s = Self::new();
        for (k, v) in entries {
            s.local.insert(k, v);
        }
        s
    }
}

impl<'a> MapState<'a> {
    /// Creates an overlay over a base lookup (typically committed storage).
    pub fn over(base: impl Fn(&Key) -> Value + 'a) -> Self {
        MapState {
            local: HashMap::new(),
            base: Box::new(base),
        }
    }

    /// The locally written entries (the overlay), in arbitrary order.
    pub fn written(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.local.iter()
    }

    /// Reads without recording, used by assertions in tests.
    pub fn peek(&self, key: &Key) -> Value {
        self.local
            .get(key)
            .cloned()
            .unwrap_or_else(|| (self.base)(key))
    }
}

impl StateAccess for MapState<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        Ok(self.peek(&key))
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        self.local.insert(key, value);
        Ok(())
    }
}

/// Wraps any [`StateAccess`] and records the read/write sets into an
/// [`ExecOutcome`] (first read / last write per key), which is exactly the
/// information a shard proposer ships in its block.
pub struct TrackingState<S> {
    inner: S,
    outcome: ExecOutcome,
}

impl<S: StateAccess> TrackingState<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        TrackingState {
            inner,
            outcome: ExecOutcome::empty(),
        }
    }

    /// Returns the recorded outcome and the inner state.
    pub fn finish(self) -> (ExecOutcome, S) {
        (self.outcome, self.inner)
    }

    /// The outcome recorded so far.
    pub fn outcome(&self) -> &ExecOutcome {
        &self.outcome
    }

    /// Mutable access to the inner state.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: StateAccess> StateAccess for TrackingState<S> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        let value = self.inner.read(key)?;
        // Record the first read of the key only when the transaction has not
        // itself overwritten it — a read-after-own-write observes the local
        // value and is not part of the externally visible read set.
        if self.outcome.written_value(&key).is_none() {
            self.outcome.record_read(key, value.clone());
        }
        Ok(value)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        self.inner.write(key, value.clone())?;
        self.outcome.record_write(key, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_state_reads_fall_back_to_base() {
        let mut s = MapState::over(|k| {
            if *k == Key::scratch(1) {
                Value::int(7)
            } else {
                Value::None
            }
        });
        assert_eq!(s.read(Key::scratch(1)).unwrap(), Value::int(7));
        assert_eq!(s.read(Key::scratch(2)).unwrap(), Value::None);
        s.write(Key::scratch(1), Value::int(9)).unwrap();
        assert_eq!(s.read(Key::scratch(1)).unwrap(), Value::int(9));
        assert_eq!(s.written().count(), 1);
    }

    #[test]
    fn with_entries_seeds_local_values() {
        let mut s = MapState::with_entries([(Key::checking(1), Value::int(50))]);
        assert_eq!(s.read(Key::checking(1)).unwrap(), Value::int(50));
        assert_eq!(s.peek(&Key::checking(2)), Value::None);
    }

    #[test]
    fn tracking_records_first_read_and_last_write() {
        let inner = MapState::with_entries([(Key::scratch(1), Value::int(3))]);
        let mut t = TrackingState::new(inner);
        assert_eq!(t.read(Key::scratch(1)).unwrap(), Value::int(3));
        t.write(Key::scratch(1), Value::int(4)).unwrap();
        t.write(Key::scratch(1), Value::int(5)).unwrap();
        // Read-after-own-write is not added to the read set.
        assert_eq!(t.read(Key::scratch(1)).unwrap(), Value::int(5));
        let (outcome, _) = t.finish();
        assert_eq!(outcome.read_set.len(), 1);
        assert_eq!(outcome.read_value(&Key::scratch(1)), Some(&Value::int(3)));
        assert_eq!(
            outcome.written_value(&Key::scratch(1)),
            Some(&Value::int(5))
        );
    }

    #[test]
    fn tracking_skips_read_set_for_keys_written_first() {
        let mut t = TrackingState::new(MapState::new());
        t.write(Key::scratch(2), Value::int(1)).unwrap();
        let _ = t.read(Key::scratch(2)).unwrap();
        assert!(t.outcome().read_set.is_empty());
        assert_eq!(t.outcome().write_set.len(), 1);
    }

    #[test]
    fn exec_error_helpers() {
        assert!(ExecError::aborted("x").is_abort());
        assert!(!ExecError::invalid("y").is_abort());
        assert_eq!(
            ExecError::aborted("conflict").to_string(),
            "transaction aborted: conflict"
        );
        assert_eq!(
            ExecError::invalid("bad op").to_string(),
            "invalid program: bad op"
        );
    }

    #[test]
    fn call_result_constructors() {
        assert_eq!(CallResult::ok(Value::int(1)).return_value, Value::int(1));
        assert!(CallResult::rejected().logically_aborted);
    }
}
