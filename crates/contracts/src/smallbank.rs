//! The SmallBank contract suite (paper Section 11.2).
//!
//! SmallBank models a retail bank: every account has a checking and a
//! savings balance, and six stored procedures update or query them. The
//! evaluation focuses on `SendPayment` (read-modify-write of two checking
//! balances) and `GetBalance` (read-only), mixed according to the `Pr`
//! parameter.
//!
//! The procedures are written against [`StateAccess`], so the exact same
//! code runs during preplay in the concurrent executor, under the OCC and
//! 2PL baselines, during post-consensus validation and during deterministic
//! cross-shard execution.

use crate::state::{CallResult, ExecError, StateAccess};
use tb_types::{Key, SmallBankProcedure, Value};

/// Default balance every account is created with by the workload generator.
/// Large enough that logical rejections (insufficient funds) are rare, as in
/// the paper's setup.
pub const SMALLBANK_DEFAULT_BALANCE: i64 = 100_000;

/// The balance a fresh account starts with in each of its two balances.
pub fn smallbank_initial_balance() -> (Value, Value) {
    (
        Value::int(SMALLBANK_DEFAULT_BALANCE),
        Value::int(SMALLBANK_DEFAULT_BALANCE),
    )
}

/// Executes one SmallBank procedure against `state`.
pub fn execute_smallbank<S: StateAccess + ?Sized>(
    proc_: &SmallBankProcedure,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    match proc_ {
        SmallBankProcedure::GetBalance { account } => get_balance(*account, state),
        SmallBankProcedure::DepositChecking { account, amount } => {
            deposit_checking(*account, *amount, state)
        }
        SmallBankProcedure::TransactSavings { account, amount } => {
            transact_savings(*account, *amount, state)
        }
        SmallBankProcedure::WriteCheck { account, amount } => write_check(*account, *amount, state),
        SmallBankProcedure::SendPayment { from, to, amount } => {
            send_payment(*from, *to, *amount, state)
        }
        SmallBankProcedure::Amalgamate { from, to } => amalgamate(*from, *to, state),
    }
}

/// `GetBalance`: return checking + savings of the account.
fn get_balance<S: StateAccess + ?Sized>(
    account: u64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    let checking = state.read(Key::checking(account))?.as_int();
    let savings = state.read(Key::savings(account))?.as_int();
    Ok(CallResult::ok(Value::int(checking + savings)))
}

/// `DepositChecking`: add a non-negative amount to the checking balance.
fn deposit_checking<S: StateAccess + ?Sized>(
    account: u64,
    amount: i64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    if amount < 0 {
        return Ok(CallResult::rejected());
    }
    let checking = state.read(Key::checking(account))?.as_int();
    state.write(Key::checking(account), Value::int(checking + amount))?;
    Ok(CallResult::ok(Value::int(checking + amount)))
}

/// `TransactSavings`: add `amount` (possibly negative) to savings, rejecting
/// the call if the resulting balance would be negative.
fn transact_savings<S: StateAccess + ?Sized>(
    account: u64,
    amount: i64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    let savings = state.read(Key::savings(account))?.as_int();
    let new_balance = savings + amount;
    if new_balance < 0 {
        return Ok(CallResult::rejected());
    }
    state.write(Key::savings(account), Value::int(new_balance))?;
    Ok(CallResult::ok(Value::int(new_balance)))
}

/// `WriteCheck`: subtract the check amount from checking; if the combined
/// balance cannot cover it, an overdraft penalty of 1 is added.
fn write_check<S: StateAccess + ?Sized>(
    account: u64,
    amount: i64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    let savings = state.read(Key::savings(account))?.as_int();
    let checking = state.read(Key::checking(account))?.as_int();
    let total = savings + checking;
    let deducted = if total < amount { amount + 1 } else { amount };
    state.write(Key::checking(account), Value::int(checking - deducted))?;
    Ok(CallResult::ok(Value::int(checking - deducted)))
}

/// `SendPayment`: move `amount` from one checking balance to another,
/// rejecting the call if funds are insufficient.
fn send_payment<S: StateAccess + ?Sized>(
    from: u64,
    to: u64,
    amount: i64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    if amount < 0 {
        return Ok(CallResult::rejected());
    }
    let from_checking = state.read(Key::checking(from))?.as_int();
    if from_checking < amount {
        return Ok(CallResult::rejected());
    }
    state.write(Key::checking(from), Value::int(from_checking - amount))?;
    if from == to {
        // Self-payment: the balance is unchanged overall; write the original
        // value back so the write set still reflects the access.
        state.write(Key::checking(from), Value::int(from_checking))?;
        return Ok(CallResult::ok(Value::int(from_checking)));
    }
    let to_checking = state.read(Key::checking(to))?.as_int();
    state.write(Key::checking(to), Value::int(to_checking + amount))?;
    Ok(CallResult::ok(Value::int(from_checking - amount)))
}

/// `Amalgamate`: move the entire balance (savings + checking) of `from` into
/// the checking balance of `to`.
fn amalgamate<S: StateAccess + ?Sized>(
    from: u64,
    to: u64,
    state: &mut S,
) -> Result<CallResult, ExecError> {
    let from_savings = state.read(Key::savings(from))?.as_int();
    let from_checking = state.read(Key::checking(from))?.as_int();
    let total = from_savings + from_checking;
    if from == to {
        // Moving everything into one's own checking account.
        state.write(Key::savings(from), Value::int(0))?;
        state.write(Key::checking(from), Value::int(total))?;
        return Ok(CallResult::ok(Value::int(total)));
    }
    state.write(Key::savings(from), Value::int(0))?;
    state.write(Key::checking(from), Value::int(0))?;
    let to_checking = state.read(Key::checking(to))?.as_int();
    state.write(Key::checking(to), Value::int(to_checking + total))?;
    Ok(CallResult::ok(Value::int(to_checking + total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MapState;

    fn bank(accounts: &[(u64, i64, i64)]) -> MapState<'static> {
        MapState::with_entries(accounts.iter().flat_map(|(a, c, s)| {
            [
                (Key::checking(*a), Value::int(*c)),
                (Key::savings(*a), Value::int(*s)),
            ]
        }))
    }

    #[test]
    fn get_balance_sums_both_accounts() {
        let mut state = bank(&[(1, 30, 12)]);
        let r =
            execute_smallbank(&SmallBankProcedure::GetBalance { account: 1 }, &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(42));
        assert!(!r.logically_aborted);
    }

    #[test]
    fn deposit_checking_adds_and_rejects_negative() {
        let mut state = bank(&[(1, 10, 0)]);
        let ok = execute_smallbank(
            &SmallBankProcedure::DepositChecking {
                account: 1,
                amount: 5,
            },
            &mut state,
        )
        .unwrap();
        assert_eq!(ok.return_value, Value::int(15));
        assert_eq!(state.peek(&Key::checking(1)), Value::int(15));

        let rejected = execute_smallbank(
            &SmallBankProcedure::DepositChecking {
                account: 1,
                amount: -5,
            },
            &mut state,
        )
        .unwrap();
        assert!(rejected.logically_aborted);
        assert_eq!(state.peek(&Key::checking(1)), Value::int(15));
    }

    #[test]
    fn transact_savings_rejects_overdraft() {
        let mut state = bank(&[(2, 0, 10)]);
        let ok = execute_smallbank(
            &SmallBankProcedure::TransactSavings {
                account: 2,
                amount: -4,
            },
            &mut state,
        )
        .unwrap();
        assert_eq!(ok.return_value, Value::int(6));
        let rejected = execute_smallbank(
            &SmallBankProcedure::TransactSavings {
                account: 2,
                amount: -100,
            },
            &mut state,
        )
        .unwrap();
        assert!(rejected.logically_aborted);
        assert_eq!(state.peek(&Key::savings(2)), Value::int(6));
    }

    #[test]
    fn write_check_applies_penalty_when_overdrawn() {
        let mut state = bank(&[(3, 5, 5)]);
        // Sufficient funds: no penalty.
        let r = execute_smallbank(
            &SmallBankProcedure::WriteCheck {
                account: 3,
                amount: 8,
            },
            &mut state,
        )
        .unwrap();
        assert_eq!(r.return_value, Value::int(-3));
        // Now total = -3 + 5 = 2 < 10, so a penalty of one applies.
        let r = execute_smallbank(
            &SmallBankProcedure::WriteCheck {
                account: 3,
                amount: 10,
            },
            &mut state,
        )
        .unwrap();
        assert_eq!(r.return_value, Value::int(-14));
    }

    #[test]
    fn send_payment_moves_money_and_conserves_total() {
        let mut state = bank(&[(1, 100, 0), (2, 50, 0)]);
        let r = execute_smallbank(
            &SmallBankProcedure::SendPayment {
                from: 1,
                to: 2,
                amount: 30,
            },
            &mut state,
        )
        .unwrap();
        assert!(!r.logically_aborted);
        assert_eq!(state.peek(&Key::checking(1)), Value::int(70));
        assert_eq!(state.peek(&Key::checking(2)), Value::int(80));
    }

    #[test]
    fn send_payment_rejects_insufficient_funds_without_writes() {
        let mut state = bank(&[(1, 10, 0), (2, 0, 0)]);
        let r = execute_smallbank(
            &SmallBankProcedure::SendPayment {
                from: 1,
                to: 2,
                amount: 30,
            },
            &mut state,
        )
        .unwrap();
        assert!(r.logically_aborted);
        assert_eq!(state.peek(&Key::checking(1)), Value::int(10));
        assert_eq!(state.peek(&Key::checking(2)), Value::int(0));
    }

    #[test]
    fn send_payment_to_self_keeps_balance() {
        let mut state = bank(&[(5, 40, 0)]);
        let r = execute_smallbank(
            &SmallBankProcedure::SendPayment {
                from: 5,
                to: 5,
                amount: 10,
            },
            &mut state,
        )
        .unwrap();
        assert!(!r.logically_aborted);
        assert_eq!(state.peek(&Key::checking(5)), Value::int(40));
    }

    #[test]
    fn amalgamate_empties_source_into_destination_checking() {
        let mut state = bank(&[(1, 10, 20), (2, 5, 7)]);
        let r = execute_smallbank(
            &SmallBankProcedure::Amalgamate { from: 1, to: 2 },
            &mut state,
        )
        .unwrap();
        assert_eq!(r.return_value, Value::int(35));
        assert_eq!(state.peek(&Key::checking(1)), Value::int(0));
        assert_eq!(state.peek(&Key::savings(1)), Value::int(0));
        assert_eq!(state.peek(&Key::checking(2)), Value::int(35));
        assert_eq!(state.peek(&Key::savings(2)), Value::int(7));
    }

    #[test]
    fn amalgamate_to_self_moves_savings_into_checking() {
        let mut state = bank(&[(4, 10, 15)]);
        let r = execute_smallbank(
            &SmallBankProcedure::Amalgamate { from: 4, to: 4 },
            &mut state,
        )
        .unwrap();
        assert_eq!(r.return_value, Value::int(25));
        assert_eq!(state.peek(&Key::checking(4)), Value::int(25));
        assert_eq!(state.peek(&Key::savings(4)), Value::int(0));
    }

    #[test]
    fn missing_accounts_read_as_zero() {
        let mut state = MapState::new();
        let r =
            execute_smallbank(&SmallBankProcedure::GetBalance { account: 99 }, &mut state).unwrap();
        assert_eq!(r.return_value, Value::int(0));
    }
}
