//! Smart-contract execution for the Thunderbolt reproduction.
//!
//! The paper assumes Turing-complete contracts whose read/write sets are
//! unknown before execution (Section 3.1). This crate provides:
//!
//! * [`StateAccess`] — the narrow interface a running contract uses to read
//!   and write state. Every concurrency control in `tb-executor` (the
//!   concurrent executor, OCC, 2PL-No-Wait, serial execution and the
//!   post-consensus validator) implements it, so the *same* contract code is
//!   executed on every path, exactly like re-executing a block during
//!   validation.
//! * The native [SmallBank](smallbank) procedures used by the evaluation
//!   workload.
//! * A small stack-machine [interpreter] whose programs compute
//!   the keys they access at run time — the property that makes read/write
//!   set pre-declaration impossible.
//! * [`execute_call`] — the dispatcher turning a
//!   [`tb_types::ContractCall`] into reads/writes against a [`StateAccess`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interpreter;
pub mod runner;
pub mod smallbank;
pub mod state;

pub use interpreter::{Instr, Program, ProgramBuilder};
pub use runner::{execute_call, execute_ops};
pub use smallbank::{smallbank_initial_balance, SMALLBANK_DEFAULT_BALANCE};
pub use state::{CallResult, ExecError, MapState, StateAccess, TrackingState};
