//! The common interface of all batch executors.

use crate::batch::{BatchResult, ExecutorKind};
use tb_storage::MemStore;
use tb_types::Transaction;

/// A transaction execution engine that processes whole batches.
///
/// The concurrent executor, the OCC and 2PL-No-Wait baselines and the serial
/// executor all implement this trait, so the evaluation harness (Figures 11
/// and 12) can sweep over engines generically.
pub trait BatchExecutor: Send + Sync {
    /// Which engine this is (used for labelling results).
    fn kind(&self) -> ExecutorKind;

    /// Executes the batch against `store`, leaving the store updated with the
    /// batch's effects, and returns the per-batch result and statistics.
    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult;

    /// Human-readable engine label.
    fn label(&self) -> &'static str {
        self.kind().label()
    }
}

/// Spin-waits for approximately `nanos` nanoseconds.
///
/// Used to model the interpretation overhead a real contract VM adds to every
/// state operation (see `CeConfig::synthetic_op_cost_ns`). The wait burns CPU
/// on purpose — sleeping would free the core and distort the executor-scaling
/// experiments.
pub fn synthetic_work(nanos: u64) {
    if nanos == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < nanos {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_work_zero_returns_immediately() {
        let start = std::time::Instant::now();
        synthetic_work(0);
        assert!(start.elapsed().as_micros() < 1_000);
    }

    #[test]
    fn synthetic_work_busy_waits_for_roughly_the_requested_time() {
        let start = std::time::Instant::now();
        synthetic_work(200_000); // 200 us
        let elapsed = start.elapsed();
        assert!(elapsed.as_micros() >= 190, "waited only {elapsed:?}");
    }
}
