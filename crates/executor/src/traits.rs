//! The common interface of all batch executors.

use crate::batch::{BatchResult, ExecutorKind};
use tb_storage::MemStore;
use tb_types::Transaction;

/// A transaction execution engine that processes whole batches.
///
/// The concurrent executor, the OCC and 2PL-No-Wait baselines and the serial
/// executor all implement this trait, so the evaluation harness (Figures 11
/// and 12) can sweep over engines generically.
pub trait BatchExecutor: Send + Sync {
    /// Which engine this is (used for labelling results).
    fn kind(&self) -> ExecutorKind;

    /// Executes the batch against `store`, leaving the store updated with the
    /// batch's effects, and returns the per-batch result and statistics.
    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult;

    /// Human-readable engine label.
    fn label(&self) -> &'static str {
        self.kind().label()
    }
}

/// Number of hardware threads the current process may use, falling back to 1
/// when the platform cannot tell (the conservative answer for perf gates).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count to `[1, available_cores()]`.
///
/// Every thread pool in the workspace (validation, the commit pipeline,
/// post-consensus wave execution) sizes itself through this function so a
/// configuration tuned for a 16-core machine degrades gracefully on a
/// single-core CI runner instead of oversubscribing it.
pub fn effective_workers(requested: usize) -> usize {
    requested.clamp(1, available_cores())
}

/// True if the environment opted into the strict wall-clock figure
/// assertions (`TB_STRICT_FIGURES=1`) *and* the machine has at least two
/// hardware threads. Wall-clock comparisons between threaded engines are
/// decided by preemption luck on a single-core runner, so the gate refuses
/// to arm itself there even when the variable is set.
pub fn strict_figures_enabled() -> bool {
    std::env::var("TB_STRICT_FIGURES").is_ok_and(|v| v == "1") && available_cores() >= 2
}

/// Spin-waits for approximately `nanos` nanoseconds.
///
/// Used to model the interpretation overhead a real contract VM adds to every
/// state operation (see `CeConfig::synthetic_op_cost_ns`). The wait burns CPU
/// on purpose — sleeping would free the core and distort the executor-scaling
/// experiments.
pub fn synthetic_work(nanos: u64) {
    if nanos == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < nanos {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_work_zero_returns_immediately() {
        let start = std::time::Instant::now();
        synthetic_work(0);
        assert!(start.elapsed().as_micros() < 1_000);
    }

    #[test]
    fn synthetic_work_busy_waits_for_roughly_the_requested_time() {
        let start = std::time::Instant::now();
        synthetic_work(200_000); // 200 us
        let elapsed = start.elapsed();
        assert!(elapsed.as_micros() >= 190, "waited only {elapsed:?}");
    }
}
