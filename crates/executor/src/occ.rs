//! Optimistic concurrency control (paper Section 11.1).
//!
//! Each executor runs a transaction locally: reads fetch versioned values
//! from the store, writes stay in a transaction-private buffer. On
//! completion the executor hands the read versions and the write buffer to a
//! central verifier, which re-checks every read version against the current
//! store; a mismatch rejects the commit and the transaction is re-executed.
//! Valid transactions apply their writes while still holding the verifier
//! lock, which is what makes commits atomic.

use crate::batch::{BatchResult, ExecutorKind};
use crate::traits::{synthetic_work, BatchExecutor};
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tb_contracts::{execute_call, ExecError, StateAccess, TrackingState};
use tb_storage::{KvRead, KvWrite, MemStore};
use tb_types::{CeConfig, Key, PreplayedTx, Transaction, Value};

/// The OCC baseline executor.
#[derive(Clone, Debug)]
pub struct OccExecutor {
    config: CeConfig,
}

impl OccExecutor {
    /// Creates an OCC executor.
    pub fn new(config: CeConfig) -> Self {
        OccExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CeConfig {
        &self.config
    }
}

impl Default for OccExecutor {
    fn default() -> Self {
        OccExecutor::new(CeConfig::default())
    }
}

/// Transaction-private session: optimistic reads, buffered writes.
struct OccSession<'a> {
    store: &'a MemStore,
    read_versions: HashMap<Key, u64>,
    writes: HashMap<Key, Value>,
    op_cost: u64,
}

impl<'a> OccSession<'a> {
    fn new(store: &'a MemStore, op_cost: u64) -> Self {
        OccSession {
            store,
            read_versions: HashMap::new(),
            writes: HashMap::new(),
            op_cost,
        }
    }
}

impl StateAccess for OccSession<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        if let Some(local) = self.writes.get(&key) {
            return Ok(local.clone());
        }
        let versioned = self.store.get_versioned(&key);
        self.read_versions.entry(key).or_insert(versioned.version);
        Ok(versioned.value)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        self.writes.insert(key, value);
        Ok(())
    }
}

impl BatchExecutor for OccExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Occ
    }

    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult {
        let started = Instant::now();
        if txs.is_empty() {
            return BatchResult::default();
        }
        let queue: SegQueue<usize> = SegQueue::new();
        for idx in 0..txs.len() {
            queue.push(idx);
        }
        let reexecutions = AtomicU64::new(0);
        let remaining = AtomicU64::new(txs.len() as u64);
        // The central verifier: validation + commit happen under this lock.
        let verifier: Mutex<Vec<Option<(PreplayedTx, Duration)>>> =
            Mutex::new((0..txs.len()).map(|_| None).collect());
        let commit_counter = AtomicU64::new(0);
        let op_cost = self.config.synthetic_op_cost_ns;
        let workers = self.config.executors.max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(idx) = queue.pop() {
                        let tx = &txs[idx];
                        let tx_started = Instant::now();
                        let mut attempts = 0u64;
                        loop {
                            attempts += 1;
                            let mut tracking = TrackingState::new(OccSession::new(store, op_cost));
                            let result = execute_call(&tx.call, &mut tracking)
                                .expect("the OCC session never aborts mid-execution");
                            let (mut outcome, session) = tracking.finish();
                            outcome.return_value = result.return_value;
                            outcome.logically_aborted = result.logically_aborted;

                            // Validation + commit under the verifier lock.
                            let mut slots = verifier.lock();
                            let valid = session
                                .read_versions
                                .iter()
                                .all(|(key, version)| store.get_versioned(key).version == *version);
                            if valid {
                                for (key, value) in &session.writes {
                                    store.put(*key, value.clone());
                                }
                                let order = commit_counter.fetch_add(1, Ordering::Relaxed) as u32;
                                slots[idx] = Some((
                                    PreplayedTx::new(tx.clone(), outcome, order),
                                    tx_started.elapsed(),
                                ));
                                drop(slots);
                                remaining.fetch_sub(1, Ordering::Relaxed);
                                if attempts > 1 {
                                    reexecutions.fetch_add(attempts - 1, Ordering::Relaxed);
                                }
                                break;
                            }
                            drop(slots);
                            // Validation failed: re-execute from scratch.
                        }
                    }
                });
            }
        });
        debug_assert_eq!(remaining.load(Ordering::Relaxed), 0);

        let slots = verifier.into_inner();
        let mut total_latency = Duration::ZERO;
        let mut latencies = Vec::with_capacity(txs.len());
        let mut preplayed: Vec<PreplayedTx> = Vec::with_capacity(txs.len());
        let mut logical_rejections = 0;
        for slot in slots.into_iter().flatten() {
            total_latency += slot.1;
            latencies.push(slot.1);
            if slot.0.outcome.logically_aborted {
                logical_rejections += 1;
            }
            preplayed.push(slot.0);
        }
        preplayed.sort_by_key(|p| p.order);
        BatchResult {
            preplayed,
            reexecutions: reexecutions.into_inner(),
            logical_rejections,
            elapsed: started.elapsed(),
            total_latency,
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_types::{ClientId, ContractCall, SimTime, SmallBankProcedure, TxId};

    fn payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            1,
            SimTime::ZERO,
        )
    }

    fn occ(executors: usize) -> OccExecutor {
        OccExecutor::new(CeConfig::new(executors, 512).without_synthetic_cost())
    }

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    #[test]
    fn commits_every_transaction_and_conserves_money() {
        let store = funded_store(8);
        let initial = store.stats().int_sum;
        let txs: Vec<Transaction> = (0..100)
            .map(|i| payment(i, i % 8, (i + 1) % 8, 1))
            .collect();
        let result = occ(8).execute_batch(&txs, &store);
        assert_eq!(result.committed(), 100);
        assert!(result.order_is_permutation());
        assert_eq!(store.stats().int_sum, initial);
    }

    #[test]
    fn contention_causes_reexecutions_but_not_losses() {
        let store = funded_store(2);
        // Every transaction touches account 0: maximal contention.
        let txs: Vec<Transaction> = (0..64).map(|i| payment(i, 0, 1, 1)).collect();
        let result = occ(8).execute_batch(&txs, &store);
        assert_eq!(result.committed(), 64);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 64)
        );
        assert_eq!(
            store.get(&Key::checking(1)),
            Value::int(SMALLBANK_DEFAULT_BALANCE + 64)
        );
    }

    #[test]
    fn single_executor_never_reexecutes() {
        let store = funded_store(4);
        let txs: Vec<Transaction> = (0..32).map(|i| payment(i, 0, 1, 1)).collect();
        let result = occ(1).execute_batch(&txs, &store);
        assert_eq!(result.reexecutions, 0);
        assert_eq!(result.committed(), 32);
    }

    #[test]
    fn empty_batch_short_circuits() {
        let store = funded_store(1);
        let result = occ(4).execute_batch(&[], &store);
        assert_eq!(result.committed(), 0);
    }
}
