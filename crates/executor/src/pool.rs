//! A shared, long-lived worker pool for batch-parallel stages.
//!
//! CE preplay and post-consensus validation are invoked once per block, and
//! both used to spawn a fresh `std::thread::scope` for every batch — paying
//! thread creation and teardown thousands of times per run. This module
//! replaces that with one process-wide pool of parked helper threads
//! ([`global`]): a stage submits a *job* of `slots` independent tasks, idle
//! helpers wake up and claim slots, and the submitting thread participates
//! too, blocking until every slot has finished.
//!
//! # Design notes
//!
//! * **The caller is always a worker.** [`WorkerPool::run`] claims slots on
//!   the calling thread alongside the helpers, so a job always makes
//!   progress even when every helper is busy with other jobs (or when the
//!   pool has zero helpers on a single-core machine). No job ever waits on
//!   another job's completion, so jobs cannot deadlock each other.
//! * **Borrowed tasks.** Tasks borrow from the caller's stack exactly like
//!   `std::thread::scope` closures do. The pool erases that lifetime to
//!   store the job in its queue; safety rests on `run` not returning until
//!   `pending == 0` and on exhausted jobs never dereferencing the task
//!   pointer again (a slot is claimed *before* the dereference). This is
//!   the one place in `tb-executor` that needs `unsafe` — the crate is
//!   otherwise `deny(unsafe_code)`.
//! * **Parked, not spinning.** Idle helpers block on a condition variable;
//!   they cost nothing while no stage is running. The complementary
//!   [`Backoff`] type serves loops that must poll (the CE work queue) and
//!   cannot park outright.
//!
//! Panics inside a task are caught per-slot and re-thrown on the submitting
//! thread once the job completes, mirroring the propagation a scoped join
//! would give.

use crate::traits::available_cores;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Lifetime-erased pointer to a job's task closure.
type RawTask = *const (dyn Fn(usize) + Sync);

/// One submitted job: `slots` independent invocations of the same task.
struct Job {
    task: RawTask,
    slots: usize,
    /// Next unclaimed slot; claims beyond `slots` mean the job is exhausted.
    next_slot: AtomicUsize,
    /// Slots claimed but not yet finished, plus slots never claimed.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a task, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `task` is only dereferenced between a successful slot claim and
// the matching `pending` decrement, and `WorkerPool::run` does not return
// before `pending == 0`, so the borrowed closure outlives every dereference
// even though its lifetime has been erased.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// True once every slot has been claimed; exhausted jobs are dropped
    /// from the queue without touching the task pointer again.
    fn exhausted(&self) -> bool {
        self.next_slot.load(Ordering::Acquire) >= self.slots
    }

    /// Claims and runs slots until none are left.
    fn run_slots(&self) {
        loop {
            let slot = self.next_slot.fetch_add(1, Ordering::AcqRel);
            if slot >= self.slots {
                return;
            }
            // SAFETY: this slot is claimed but not finished, so `pending > 0`
            // and the submitter is still blocked in `run`; the referent of
            // `task` is alive (see the `Send`/`Sync` impls above).
            let task = unsafe { &*self.task };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(slot))) {
                let mut first = self.panic.lock().unwrap();
                if first.is_none() {
                    *first = Some(payload);
                }
            }
            let mut pending = self.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every slot has finished.
    fn wait_done(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
}

/// A long-lived pool of parked helper threads executing batch-parallel jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    helpers: usize,
}

impl WorkerPool {
    /// Starts a pool with `helpers` parked helper threads. The threads live
    /// for the rest of the process; they are parked whenever the queue is
    /// empty.
    fn start(helpers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        for i in 0..helpers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("tb-pool-{i}"))
                .spawn(move || helper_loop(&shared))
                .expect("spawning a pool helper thread failed");
        }
        WorkerPool { shared, helpers }
    }

    /// Number of helper threads; the submitting thread always works too, so
    /// a job saturates `helpers + 1` cores.
    pub fn helpers(&self) -> usize {
        self.helpers
    }

    /// Runs `task(slot)` once for every `slot` in `0..slots`, in parallel
    /// across the pool's helpers and the calling thread, and returns once
    /// every slot has finished. With `slots <= 1` or a helper-less pool the
    /// whole job runs inline on the caller — single-core machines measure
    /// exactly the sequential cost.
    ///
    /// # Panics
    ///
    /// If a task panics, the first panic payload is re-thrown on the calling
    /// thread after the remaining slots have completed.
    pub fn run(&self, slots: usize, task: &(dyn Fn(usize) + Sync)) {
        if slots == 0 {
            return;
        }
        if slots == 1 || self.helpers == 0 {
            // Inline fallback with the same panic contract as the pooled
            // path: every slot runs, the first panic is re-thrown at the end.
            let mut first_panic = None;
            for slot in 0..slots {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(slot))) {
                    first_panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            return;
        }
        let job = Arc::new(Job {
            task: erase(task),
            slots,
            next_slot: AtomicUsize::new(0),
            pending: Mutex::new(slots),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.shared
            .queue
            .lock()
            .unwrap()
            .push_back(Arc::clone(&job));
        self.shared.work_ready.notify_all();
        // The caller claims slots alongside the helpers, then blocks until
        // the last claimed slot finishes.
        job.run_slots();
        job.wait_done();
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Erases the borrow lifetime of a task so it can sit in the pool's queue.
/// Sound only because [`WorkerPool::run`] blocks until the job is drained —
/// see the safety comment on [`Job`]'s `Send`/`Sync` impls.
fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> RawTask {
    let ptr: *const (dyn Fn(usize) + Sync + 'a) = task;
    // SAFETY: only the lifetime is erased; pointer layout is unchanged. The
    // referent outlives every dereference because `run` blocks until the
    // job is drained (see the `Send`/`Sync` impls on `Job`).
    unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), RawTask>(ptr) }
}

fn helper_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                while queue.front().is_some_and(|job| job.exhausted()) {
                    queue.pop_front();
                }
                match queue.front() {
                    Some(job) => break Arc::clone(job),
                    None => queue = shared.work_ready.wait(queue).unwrap(),
                }
            }
        };
        job.run_slots();
    }
}

/// The process-wide pool, created on first use with `available_cores() - 1`
/// helper threads (the submitting thread is the extra worker, so a job with
/// up to `available_cores()` slots runs fully parallel without
/// oversubscribing the machine).
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::start(available_cores().saturating_sub(1)))
}

/// Escalating wait for loops that poll a shared queue and cannot park
/// outright (the CE work queue refills when in-flight transactions abort, so
/// its workers must keep checking). The first few steps only yield — work
/// usually arrives within a scheduling quantum — then the wait escalates
/// through exponentially growing sleeps capped at 100 µs, so an idle worker
/// stops burning its core while still reacting quickly when the queue
/// refills.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    const YIELD_LIMIT: u32 = 8;
    const MAX_SLEEP_US: u64 = 100;

    /// A fresh backoff, starting at the yield stage.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Resets the escalation; call after useful work was found.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits one escalation step.
    pub fn wait(&mut self) {
        if self.step < Self::YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::YIELD_LIMIT).min(7);
            let sleep_us = (1u64 << exp).min(Self::MAX_SLEEP_US);
            std::thread::sleep(Duration::from_micros(sleep_us));
        }
        self.step = self.step.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn every_slot_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        global().run(counters.len(), &|slot| {
            counters[slot].fetch_add(1, Ordering::SeqCst);
        });
        for (slot, counter) in counters.iter().enumerate() {
            assert_eq!(counter.load(Ordering::SeqCst), 1, "slot {slot}");
        }
    }

    #[test]
    fn jobs_with_more_slots_than_threads_complete() {
        let total = AtomicUsize::new(0);
        let slots = (global().helpers() + 1) * 4 + 3;
        global().run(slots, &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), slots);
    }

    #[test]
    fn the_pool_is_reusable_across_jobs() {
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            global().run(8, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn concurrent_submitters_all_finish() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let total = AtomicUsize::new(0);
                    for _ in 0..20 {
                        global().run(6, &|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    assert_eq!(total.load(Ordering::SeqCst), 120);
                });
            }
        });
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            global().run(8, &|slot| {
                if slot == 3 {
                    panic!("slot 3 exploded");
                }
                survivors.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "the panic must reach the submitter");
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            7,
            "the other slots still ran"
        );
        // The pool survives the panic and keeps serving jobs.
        let ran = AtomicBool::new(false);
        global().run(2, &|_| ran.store(true, Ordering::SeqCst));
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn zero_and_single_slot_jobs_run_inline() {
        global().run(0, &|_| panic!("a zero-slot job must not run anything"));
        let caller = std::thread::current().id();
        global().run(1, &|slot| {
            assert_eq!(slot, 0);
            assert_eq!(
                std::thread::current().id(),
                caller,
                "single-slot jobs run on the caller"
            );
        });
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut backoff = Backoff::new();
        for _ in 0..32 {
            backoff.wait();
        }
        assert!(backoff.step > Backoff::YIELD_LIMIT);
        backoff.reset();
        assert_eq!(backoff.step, 0);
    }
}
