//! Post-consensus validation of preplayed blocks (paper Section 4).
//!
//! When a replica receives a block through the DAG it does not trust the
//! proposer's preplay results: it rebuilds the dependency structure from the
//! read/write sets declared in the block and re-executes every transaction
//! *in parallel*, each against a read view assembled from the declared write
//! sets of the transactions ordered before it (and committed storage below
//! that). A block is valid iff every transaction's re-executed read set,
//! write set and result match what the block declares. Invalid blocks are
//! discarded.
//!
//! # Two-stage structure
//!
//! [`validate_block`] is split into a **stateless parallel stage** and a
//! **cheap sequential finalize** (the same shape oskr uses to verify
//! messages in parallel):
//!
//! 1. *Fan-out.* Each transaction's re-execution depends only on the block's
//!    immutable write timeline (the per-key index of declared writes,
//!    ordered by block position) and committed storage, never on another
//!    worker's progress, so the per-transaction checks are embarrassingly
//!    parallel. The block is chunked across at most
//!    [`effective_workers`](crate::traits::effective_workers)`(validators)`
//!    slots of the shared long-lived [`pool`](crate::pool) (no per-block
//!    thread spawn); each slot produces the verdicts of its chunk.
//! 2. *Finalize.* The verdict vectors are joined back **in chunk order** on
//!    the calling thread and folded into the [`ValidationReport`].
//!
//! See `docs/PIPELINE.md` for how this stage slots into the commit pipeline.

use crate::traits::synthetic_work;
use std::collections::HashMap;
use std::sync::Mutex;
use tb_contracts::{execute_call, ExecError, StateAccess, TrackingState};
use tb_storage::KvRead;
use tb_types::{Key, PreplayedTx, TxId, Value};

/// Configuration of the validation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidationConfig {
    /// Number of validator workers re-executing transactions in parallel
    /// (the paper's system evaluation uses 16).
    pub validators: usize,
    /// Synthetic per-operation cost, matching the executors.
    pub op_cost_ns: u64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            validators: 16,
            op_cost_ns: 0,
        }
    }
}

impl ValidationConfig {
    /// Creates a config with the given parallelism and no synthetic cost.
    pub fn new(validators: usize) -> Self {
        ValidationConfig {
            validators,
            op_cost_ns: 0,
        }
    }
}

/// Result of validating one block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of transactions re-executed.
    pub checked: usize,
    /// Transactions whose re-execution disagreed with the declared outcome.
    pub mismatches: Vec<TxId>,
}

impl ValidationReport {
    /// True if every transaction validated successfully.
    pub fn is_valid(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The per-key timeline of declared writes, ordered by the block's serialized
/// order. A transaction's read of a key resolves to the latest declared write
/// before it, or to committed storage if there is none.
struct WriteTimeline {
    per_key: HashMap<Key, Vec<(u32, Value)>>,
}

impl WriteTimeline {
    fn build(preplayed: &[PreplayedTx]) -> Self {
        let mut per_key: HashMap<Key, Vec<(u32, Value)>> = HashMap::new();
        for p in preplayed {
            for rec in &p.outcome.write_set {
                per_key
                    .entry(rec.key)
                    .or_default()
                    .push((p.order, rec.value.clone()));
            }
        }
        for timeline in per_key.values_mut() {
            timeline.sort_by_key(|(order, _)| *order);
        }
        WriteTimeline { per_key }
    }

    /// The value a transaction at `order` should observe for `key`, if any
    /// transaction before it wrote the key.
    fn value_before(&self, key: &Key, order: u32) -> Option<Value> {
        let timeline = self.per_key.get(key)?;
        timeline
            .iter()
            .take_while(|(o, _)| *o < order)
            .last()
            .map(|(_, v)| v.clone())
    }

    /// The final value of a key after the whole block, if written.
    fn final_value(&self, key: &Key) -> Option<Value> {
        self.per_key
            .get(key)
            .and_then(|timeline| timeline.last().map(|(_, v)| v.clone()))
    }
}

/// Read view of one transaction during validation.
struct ValidationSession<'a> {
    base: &'a (dyn KvRead + Sync),
    timeline: &'a WriteTimeline,
    order: u32,
    local_writes: HashMap<Key, Value>,
    op_cost: u64,
}

impl StateAccess for ValidationSession<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        if let Some(local) = self.local_writes.get(&key) {
            return Ok(local.clone());
        }
        if let Some(value) = self.timeline.value_before(&key, self.order) {
            return Ok(value);
        }
        Ok(self.base.get(&key))
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        self.local_writes.insert(key, value);
        Ok(())
    }
}

/// Validates the single-shard payload of a block: re-executes every
/// transaction in parallel against the declared dependency structure and
/// checks that read sets, write sets and results match the declaration.
///
/// # Parallelism contract
///
/// The fan-out occupies at most `effective_workers(config.validators)`
/// slots of the shared worker pool (clamped to the block size); with one
/// effective worker — a single-core machine, or `validators: 1` — no pool
/// job is submitted and the whole pass runs inline on the caller, so
/// single-core CI measures exactly the sequential cost.
///
/// # Determinism
///
/// The report is a pure function of `(preplayed, base, config)` — it does
/// not depend on the worker count, chunk boundaries or thread scheduling.
/// Per-chunk verdicts are joined in chunk order and `mismatches` is sorted
/// by [`TxId`], so two calls with different `validators` values return
/// byte-identical reports (pinned by a proptest in
/// `tests/proptest_invariants.rs`).
///
/// # Panics
///
/// Worker threads never panic on malformed or Byzantine block contents —
/// interpreter failures are verdicts (`Err` from [`execute_call`] marks the
/// transaction as a mismatch), not panics. If a worker does panic (a bug in
/// the contract interpreter, or a panicking [`KvRead`] implementation), the
/// pool re-throws the panic on the calling thread once the job drains; it
/// is never swallowed.
pub fn validate_block(
    preplayed: &[PreplayedTx],
    base: &(dyn KvRead + Sync),
    config: &ValidationConfig,
) -> ValidationReport {
    if preplayed.is_empty() {
        return ValidationReport::default();
    }
    let timeline = WriteTimeline::build(preplayed);
    let verdicts = parallel_verdicts(preplayed, base, &timeline, config);
    finalize_verdicts(preplayed, &verdicts)
}

/// Stage 1 — the stateless fan-out: re-executes every transaction against
/// the shared [`WriteTimeline`] and returns one verdict per transaction, in
/// block order. Workers share only immutable state, so no synchronisation
/// is needed beyond the final join.
fn parallel_verdicts(
    preplayed: &[PreplayedTx],
    base: &(dyn KvRead + Sync),
    timeline: &WriteTimeline,
    config: &ValidationConfig,
) -> Vec<bool> {
    let workers = crate::traits::effective_workers(config.validators).min(preplayed.len());
    let op_cost = config.op_cost_ns;
    if workers <= 1 {
        return preplayed
            .iter()
            .map(|p| revalidate_one(p, base, timeline, op_cost))
            .collect();
    }
    let chunk_size = preplayed.len().div_ceil(workers);
    let chunks: Vec<&[PreplayedTx]> = preplayed.chunks(chunk_size).collect();
    let verdicts: Vec<Mutex<Vec<bool>>> = chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
    crate::pool::global().run(chunks.len(), &|slot| {
        let chunk_verdicts: Vec<bool> = chunks[slot]
            .iter()
            .map(|p| revalidate_one(p, base, timeline, op_cost))
            .collect();
        *verdicts[slot].lock().unwrap() = chunk_verdicts;
    });
    // Flattening in chunk order keeps the verdict vector in block order no
    // matter which pool worker ran which chunk.
    verdicts
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap_or_default())
        .collect()
}

/// Stage 2 — the cheap sequential finalize: folds the ordered verdicts into
/// a [`ValidationReport`], with `mismatches` sorted by [`TxId`].
fn finalize_verdicts(preplayed: &[PreplayedTx], verdicts: &[bool]) -> ValidationReport {
    debug_assert_eq!(preplayed.len(), verdicts.len());
    let mut mismatches: Vec<TxId> = preplayed
        .iter()
        .zip(verdicts)
        .filter(|(_, ok)| !**ok)
        .map(|(p, _)| p.tx.id)
        .collect();
    mismatches.sort_unstable();
    ValidationReport {
        checked: preplayed.len(),
        mismatches,
    }
}

fn revalidate_one(
    p: &PreplayedTx,
    base: &(dyn KvRead + Sync),
    timeline: &WriteTimeline,
    op_cost: u64,
) -> bool {
    let session = ValidationSession {
        base,
        timeline,
        order: p.order,
        local_writes: HashMap::new(),
        op_cost,
    };
    let mut tracking = TrackingState::new(session);
    let Ok(result) = execute_call(&p.tx.call, &mut tracking) else {
        return false;
    };
    let (outcome, _) = tracking.finish();
    same_access_set(&outcome.read_set, &p.outcome.read_set)
        && same_access_set(&outcome.write_set, &p.outcome.write_set)
        && result.return_value == p.outcome.return_value
        && result.logically_aborted == p.outcome.logically_aborted
}

/// Order-insensitive comparison of access sets.
fn same_access_set(a: &[tb_types::AccessRecord], b: &[tb_types::AccessRecord]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|rec| {
        b.iter()
            .any(|other| other.key == rec.key && other.value == rec.value)
    })
}

/// Computes the state the block leaves behind: for every written key the last
/// declared value in serialized order. This is what the commit path applies
/// to storage once the block validates.
pub fn final_writes(preplayed: &[PreplayedTx]) -> Vec<(Key, Value)> {
    let timeline = WriteTimeline::build(preplayed);
    let mut keys: Vec<Key> = timeline.per_key.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let value = timeline.final_value(&k).expect("key taken from timeline");
            (k, value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::ConcurrentExecutor;
    use crate::serial::SerialExecutor;
    use crate::traits::BatchExecutor;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_storage::MemStore;
    use tb_types::{
        CeConfig, ClientId, ContractCall, SimTime, SmallBankProcedure, Transaction, TxId,
    };
    use tb_workload::{SmallBankConfig, SmallBankWorkload};

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    fn smallbank_batch(accounts: u64, n: usize) -> Vec<Transaction> {
        let cfg = SmallBankConfig {
            accounts,
            theta: 0.9,
            pr_read: 0.3,
            n_shards: 1,
            ..SmallBankConfig::default()
        };
        SmallBankWorkload::new(cfg).batch(n, SimTime::ZERO)
    }

    #[test]
    fn empty_block_is_trivially_valid() {
        let store = MemStore::new();
        let report = validate_block(&[], &store, &ValidationConfig::default());
        assert!(report.is_valid());
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn honest_preplay_from_the_concurrent_executor_validates() {
        let store = funded_store(32);
        let txs = smallbank_batch(32, 120);
        let ce = ConcurrentExecutor::new(CeConfig::new(8, 512).without_synthetic_cost());
        let result = ce.preplay(&txs, &store);
        let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(8));
        assert!(report.is_valid(), "mismatches: {:?}", report.mismatches);
        assert_eq!(report.checked, txs.len());
    }

    #[test]
    fn honest_serial_execution_validates() {
        let store = funded_store(16);
        let exec_store = funded_store(16);
        let txs = smallbank_batch(16, 60);
        let result = SerialExecutor::new().execute_batch(&txs, &exec_store);
        let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(4));
        assert!(report.is_valid());
    }

    #[test]
    fn tampered_write_set_is_detected() {
        let store = funded_store(8);
        let txs = smallbank_batch(8, 30);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 512).without_synthetic_cost());
        let mut result = ce.preplay(&txs, &store);
        // A malicious proposer inflates one balance.
        let victim = result
            .preplayed
            .iter_mut()
            .find(|p| !p.outcome.write_set.is_empty())
            .expect("some transaction writes");
        victim.outcome.write_set[0].value = Value::int(9_999_999);
        let tampered_id = victim.tx.id;
        let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(4));
        assert!(!report.is_valid());
        assert!(report.mismatches.contains(&tampered_id));
    }

    #[test]
    fn tampered_read_set_is_detected() {
        let store = funded_store(8);
        let txs = smallbank_batch(8, 30);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 512).without_synthetic_cost());
        let mut result = ce.preplay(&txs, &store);
        let victim = result
            .preplayed
            .iter_mut()
            .find(|p| !p.outcome.read_set.is_empty())
            .expect("some transaction reads");
        victim.outcome.read_set[0].value = Value::int(-1);
        let tampered_id = victim.tx.id;
        let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(4));
        assert!(!report.is_valid());
        assert!(report.mismatches.contains(&tampered_id));
    }

    #[test]
    fn fabricated_return_value_is_detected() {
        let store = funded_store(4);
        let tx = Transaction::new(
            TxId::new(1),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::GetBalance { account: 0 }),
            1,
            SimTime::ZERO,
        );
        let ce = ConcurrentExecutor::new(CeConfig::new(1, 8).without_synthetic_cost());
        let mut result = ce.preplay(std::slice::from_ref(&tx), &store);
        result.preplayed[0].outcome.return_value = Value::int(123);
        let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(1));
        assert!(!report.is_valid());
    }

    #[test]
    fn final_writes_reflect_the_last_write_per_key() {
        let store = funded_store(4);
        let txs = vec![
            Transaction::new(
                TxId::new(1),
                ClientId::new(0),
                ContractCall::SmallBank(SmallBankProcedure::DepositChecking {
                    account: 0,
                    amount: 10,
                }),
                1,
                SimTime::ZERO,
            ),
            Transaction::new(
                TxId::new(2),
                ClientId::new(0),
                ContractCall::SmallBank(SmallBankProcedure::DepositChecking {
                    account: 0,
                    amount: 5,
                }),
                1,
                SimTime::ZERO,
            ),
        ];
        let ce = ConcurrentExecutor::new(CeConfig::new(2, 8).without_synthetic_cost());
        let result = ce.preplay(&txs, &store);
        let finals = final_writes(&result.preplayed);
        assert_eq!(finals.len(), 1);
        assert_eq!(finals[0].0, tb_types::Key::checking(0));
        assert_eq!(
            finals[0].1,
            Value::int(SMALLBANK_DEFAULT_BALANCE + 15),
            "both deposits must be reflected in the final value"
        );
    }

    #[test]
    fn validation_matches_regardless_of_worker_count() {
        let store = funded_store(16);
        let txs = smallbank_batch(16, 80);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 512).without_synthetic_cost());
        let result = ce.preplay(&txs, &store);
        for validators in [1, 2, 7, 32] {
            let report = validate_block(
                &result.preplayed,
                &store,
                &ValidationConfig::new(validators),
            );
            assert!(report.is_valid(), "failed with {validators} validators");
        }
    }

    #[test]
    fn tampered_reports_are_identical_for_every_worker_count() {
        let store = funded_store(16);
        let txs = smallbank_batch(16, 80);
        let ce = ConcurrentExecutor::new(CeConfig::new(4, 512).without_synthetic_cost());
        let mut result = ce.preplay(&txs, &store);
        // Tamper several transactions spread across the block so mismatches
        // land in different worker chunks for every fan-out width.
        let mut tampered = 0;
        for p in result.preplayed.iter_mut().step_by(11) {
            if let Some(rec) = p.outcome.write_set.first_mut() {
                rec.value = Value::int(-424_242);
                tampered += 1;
            }
        }
        assert!(tampered >= 3, "need several tampered transactions");
        let sequential = validate_block(&result.preplayed, &store, &ValidationConfig::new(1));
        assert!(!sequential.is_valid());
        for validators in [2, 3, 8, 32] {
            let parallel = validate_block(
                &result.preplayed,
                &store,
                &ValidationConfig::new(validators),
            );
            assert_eq!(
                sequential, parallel,
                "verdicts diverged with {validators} validators"
            );
        }
    }
}
