//! The Concurrent Executor (`CE`, paper Section 7).
//!
//! Executor workers from the shared [`pool`] pull transactions
//! off a common queue and run their contract code against the
//! [`ConcurrencyController`]. Reads may observe uncommitted values of other
//! in-flight transactions; conflicts the controller cannot reschedule abort
//! the transaction, which is put back on the queue and re-executed. The
//! output of a batch is the block payload of the EOV path: every
//! transaction's read/write set, result and its position in the serialized
//! execution order.
//!
//! # Deterministic finalize
//!
//! The parallel phase alone cannot produce a reproducible serialization:
//! the dependency graph's conflict edges follow *arrival* order (e.g. a
//! write-write conflict is oriented towards whichever worker wrote first),
//! so its commit sequence depends on OS scheduling. Preplay therefore adds
//! a sequential **finalize pass** that re-orients every conflict edge from
//! lower to higher batch index, making batch order the unique tie-broken
//! topological order of the conflict graph. Concretely, the pass walks the
//! batch in index order keeping an overlay of finalized writes, accepts a
//! speculative outcome iff each of its recorded reads matches the
//! overlay-over-storage view (identical read values imply an identical
//! execution trace), and serially re-executes the transaction against that
//! view otherwise (counted as a re-execution). The emitted
//! [`BatchResult`] is thus a pure function of `(txs, base)` — independent
//! of worker count and scheduling — which is what lets digest-gated
//! deployments run `executors(N)` instead of pinning `executors(1)`
//! (`BatchResult::commit_digest`, docs/PIPELINE.md).

use crate::batch::{BatchResult, ExecutorKind};
use crate::cc::controller::{ConcurrencyController, FinishStatus};
use crate::cc::graph::TxIdx;
use crate::pool::{self, Backoff};
use crate::traits::{effective_workers, synthetic_work, BatchExecutor};
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;
use tb_contracts::{execute_call, ExecError, StateAccess, TrackingState};
use tb_storage::{KvRead, MemStore};
use tb_types::{CeConfig, ExecOutcome, Key, PreplayedTx, Transaction, Value};

/// The Thunderbolt concurrent executor.
#[derive(Clone, Debug)]
pub struct ConcurrentExecutor {
    config: CeConfig,
}

impl ConcurrentExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: CeConfig) -> Self {
        ConcurrentExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CeConfig {
        &self.config
    }

    /// Preplays a batch of transactions against the committed state in
    /// `base` **without** applying any writes: the results live only in the
    /// returned [`BatchResult`], exactly like the preplay outcomes a shard
    /// proposer ships inside its block (Figure 3, step 1).
    pub fn preplay(&self, txs: &[Transaction], base: &(dyn KvRead + Sync)) -> BatchResult {
        let started = Instant::now();
        if txs.is_empty() {
            return BatchResult::default();
        }
        let controller = ConcurrencyController::new(base);
        controller.register_batch(txs);

        let queue: SegQueue<TxIdx> = SegQueue::new();
        for idx in 0..txs.len() {
            queue.push(idx);
        }
        // Transactions that exceeded the retry budget; they are executed
        // serially once the parallel phase has drained, which is guaranteed
        // to succeed because no concurrent transaction can abort them then.
        let deferred: Mutex<Vec<TxIdx>> = Mutex::new(Vec::new());

        let workers = effective_workers(self.config.executors).min(txs.len());
        let op_cost = self.config.synthetic_op_cost_ns;
        let max_retries = self.config.max_retries as u64;

        pool::global().run(workers, &|_slot| {
            let mut backoff = Backoff::new();
            loop {
                match queue.pop() {
                    Some(idx) => {
                        backoff.reset();
                        if controller.retries(idx) > max_retries {
                            deferred.lock().push(idx);
                            continue;
                        }
                        run_one(&controller, txs, idx, op_cost);
                    }
                    None => {
                        let aborted = controller.take_aborted();
                        if !aborted.is_empty() {
                            backoff.reset();
                            for idx in aborted {
                                queue.push(idx);
                            }
                            continue;
                        }
                        let done = controller.committed_count() + deferred.lock().len();
                        if done >= txs.len() && queue.is_empty() {
                            break;
                        }
                        backoff.wait();
                    }
                }
            }
        });

        // Serial fallback for transactions that exceeded the retry budget.
        let leftovers = std::mem::take(&mut *deferred.lock());
        for idx in leftovers {
            let mut attempts = 0;
            while !run_one(&controller, txs, idx, op_cost) {
                attempts += 1;
                assert!(
                    attempts < 1_000,
                    "serial fallback must terminate: transaction {idx} keeps aborting"
                );
            }
        }
        // Any stragglers aborted by the fallback executions.
        loop {
            let aborted = controller.take_aborted();
            if aborted.is_empty() {
                break;
            }
            for idx in aborted {
                let mut attempts = 0;
                while !run_one(&controller, txs, idx, op_cost) {
                    attempts += 1;
                    assert!(attempts < 1_000, "serial fallback must terminate");
                }
            }
        }
        debug_assert!(controller.all_committed());

        let (speculative, total_latency, latencies) = controller.collect_speculative(txs.len());
        let (preplayed, repairs) = finalize_batch(txs, speculative, base, op_cost);
        let logical_rejections = preplayed
            .iter()
            .filter(|p| p.outcome.logically_aborted)
            .count() as u64;
        BatchResult {
            preplayed,
            reexecutions: controller.total_aborts() + repairs,
            logical_rejections,
            elapsed: started.elapsed(),
            total_latency,
            latencies,
        }
    }
}

/// The sequential finalize pass: re-serializes the batch in **batch order**,
/// which is the canonical topological order of the conflict graph once every
/// conflict edge is oriented from lower to higher batch index (batch-index
/// tie-break). For each transaction the pass accepts the speculative outcome
/// iff every recorded read matches the view `overlay ∪ base` (the writes of
/// transactions finalized before it over committed storage); matching read
/// values imply the speculative execution trace is exactly the serial one,
/// so write set and result carry over. A mismatch — or a transaction that
/// never committed speculatively — is re-executed serially against that view
/// and counted as a repair.
///
/// A single-worker speculative phase *is* a serial batch-order run, so it
/// validates without repairs; `executors(N)` converges to the same fixed
/// point, which is the `executors(N) ≡ executors(1)` determinism proof
/// pinned by `tests/proptest_invariants.rs`.
fn finalize_batch(
    txs: &[Transaction],
    speculative: Vec<Option<ExecOutcome>>,
    base: &(dyn KvRead + Sync),
    op_cost: u64,
) -> (Vec<PreplayedTx>, u64) {
    let mut overlay: HashMap<Key, Value> = HashMap::new();
    let mut preplayed = Vec::with_capacity(txs.len());
    let mut repairs = 0u64;
    for (idx, (tx, outcome)) in txs.iter().zip(speculative).enumerate() {
        let outcome = match outcome {
            Some(outcome) if reads_match_serial_view(&outcome, &overlay, base) => outcome,
            _ => {
                repairs += 1;
                reexecute_serially(tx, &overlay, base, op_cost)
            }
        };
        for rec in &outcome.write_set {
            overlay.insert(rec.key, rec.value.clone());
        }
        preplayed.push(PreplayedTx::new(tx.clone(), outcome, idx as u32));
    }
    (preplayed, repairs)
}

/// True if every read the speculative attempt recorded observes exactly the
/// value the serial batch-order view (`overlay` over `base`) holds. Repeated
/// reads and reads-after-own-write are served from the transaction's own
/// records during preplay, so checking the recorded first-reads is
/// sufficient: identical read values make the whole execution trace — and
/// with it the write set and result — identical by induction.
fn reads_match_serial_view(
    outcome: &ExecOutcome,
    overlay: &HashMap<Key, Value>,
    base: &(dyn KvRead + Sync),
) -> bool {
    outcome
        .read_set
        .iter()
        .all(|rec| match overlay.get(&rec.key) {
            Some(value) => *value == rec.value,
            None => base.get(&rec.key) == rec.value,
        })
}

/// Serially re-executes `tx` against the finalized prefix view, charging the
/// same synthetic per-operation cost as the parallel phase. The read/write
/// sets are sorted by key to match the convention of speculative outcomes.
fn reexecute_serially(
    tx: &Transaction,
    overlay: &HashMap<Key, Value>,
    base: &(dyn KvRead + Sync),
    op_cost: u64,
) -> ExecOutcome {
    let session = FinalizeSession {
        base,
        overlay,
        local: HashMap::new(),
        op_cost,
    };
    let mut tracking = TrackingState::new(session);
    let result = execute_call(&tx.call, &mut tracking)
        .expect("serial re-execution over a plain overlay never conflicts");
    let (mut outcome, _) = tracking.finish();
    outcome.read_set.sort_by_key(|r| r.key);
    outcome.write_set.sort_by_key(|r| r.key);
    outcome.return_value = result.return_value;
    outcome.logically_aborted = result.logically_aborted;
    outcome
}

/// Read view of a finalize repair: own writes over the finalized prefix over
/// committed storage.
struct FinalizeSession<'a> {
    base: &'a (dyn KvRead + Sync),
    overlay: &'a HashMap<Key, Value>,
    local: HashMap<Key, Value>,
    op_cost: u64,
}

impl StateAccess for FinalizeSession<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        Ok(self
            .local
            .get(&key)
            .or_else(|| self.overlay.get(&key))
            .cloned()
            .unwrap_or_else(|| self.base.get(&key)))
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        self.local.insert(key, value);
        Ok(())
    }
}

impl Default for ConcurrentExecutor {
    fn default() -> Self {
        ConcurrentExecutor::new(CeConfig::default())
    }
}

impl BatchExecutor for ConcurrentExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::ConcurrentExecutor
    }

    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult {
        let result = self.preplay(txs, store);
        result.apply_to(store);
        result
    }
}

/// Executes one attempt of transaction `idx`. Returns `true` when the attempt
/// finished (committed or pending commit), `false` when it aborted and needs
/// to be retried. Transactions that are not in a runnable state count as
/// finished: another worker is (or was) responsible for them.
fn run_one(
    controller: &ConcurrencyController<'_>,
    txs: &[Transaction],
    idx: TxIdx,
    op_cost: u64,
) -> bool {
    let Some(handle) = controller.begin(idx) else {
        return true;
    };
    let mut session = CcSession {
        controller,
        handle,
        op_cost,
    };
    match execute_call(&txs[idx].call, &mut session) {
        Ok(result) => controller.finish(handle, result) != FinishStatus::Aborted,
        Err(err) => {
            debug_assert!(err.is_abort(), "only aborts escape execute_call: {err}");
            false
        }
    }
}

/// [`StateAccess`] implementation bridging contract execution to the
/// concurrency controller. The synthetic per-operation cost is charged
/// *outside* the controller's critical section.
struct CcSession<'a, 'b> {
    controller: &'a ConcurrencyController<'b>,
    handle: crate::cc::controller::TxHandle,
    op_cost: u64,
}

impl StateAccess for CcSession<'_, '_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        self.controller.read(self.handle, key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        self.controller.write(self.handle, key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_storage::KvRead;
    use tb_types::{ClientId, ContractCall, SimTime, SmallBankProcedure, TxId};
    use tb_workload::{SmallBankConfig, SmallBankWorkload};

    fn send_payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            1,
            SimTime::ZERO,
        )
    }

    fn ce(executors: usize) -> ConcurrentExecutor {
        ConcurrentExecutor::new(CeConfig::new(executors, 512).without_synthetic_cost())
    }

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let store = MemStore::new();
        let result = ce(4).preplay(&[], &store);
        assert_eq!(result.committed(), 0);
    }

    #[test]
    fn preplay_does_not_touch_the_store() {
        let store = funded_store(4);
        let txs = vec![send_payment(1, 0, 1, 10)];
        let before = store.get(&Key::checking(0));
        let result = ce(2).preplay(&txs, &store);
        assert_eq!(result.committed(), 1);
        assert_eq!(store.get(&Key::checking(0)), before);
        // Applying the result moves the money.
        result.apply_to(&store);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 10)
        );
        assert_eq!(
            store.get(&Key::checking(1)),
            Value::int(SMALLBANK_DEFAULT_BALANCE + 10)
        );
    }

    #[test]
    fn hot_account_contention_commits_every_transaction() {
        // Many transfers all touching account 0: heavy write contention.
        let store = funded_store(8);
        let txs: Vec<Transaction> = (0..64)
            .map(|i| send_payment(i, 0, 1 + (i % 7), 1))
            .collect();
        let result = ce(8).preplay(&txs, &store);
        assert_eq!(result.committed(), 64);
        assert!(result.order_is_permutation());
        result.apply_to(&store);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 64)
        );
    }

    #[test]
    fn serialized_order_replays_to_the_same_final_state() {
        // The emitted order + write sets must equal a serial re-execution of
        // the same transactions in that order (serializability check).
        let store = funded_store(16);
        let cfg = SmallBankConfig {
            accounts: 16,
            theta: 0.9,
            pr_read: 0.3,
            n_shards: 1,
            ..SmallBankConfig::default()
        };
        let mut workload = SmallBankWorkload::new(cfg);
        let txs = workload.batch(128, SimTime::ZERO);
        let result = ce(8).preplay(&txs, &store);
        assert_eq!(result.committed(), txs.len());

        // Replay serially in the emitted order on a copy of the store.
        let replay_store = funded_store(16);
        let mut ordered = result.preplayed.clone();
        ordered.sort_by_key(|p| p.order);
        for p in &ordered {
            let mut state = tb_contracts::MapState::over(|k| replay_store.get(k));
            let outcome = {
                let mut tracking = tb_contracts::TrackingState::new(&mut state);
                execute_call(&p.tx.call, &mut tracking).unwrap();
                tracking.outcome().clone()
            };
            for rec in &outcome.write_set {
                use tb_storage::KvWrite;
                replay_store.put(rec.key, rec.value.clone());
            }
            let sort = |mut set: Vec<tb_types::AccessRecord>| {
                set.sort_by_key(|r| r.key);
                set
            };
            assert_eq!(
                sort(outcome.write_set.clone()),
                sort(p.outcome.write_set.clone()),
                "write set of {} must match a serial replay",
                p.tx.id
            );
            assert_eq!(
                sort(outcome.read_set.clone()),
                sort(p.outcome.read_set.clone()),
                "read set of {} must match a serial replay",
                p.tx.id
            );
        }

        // Final balances must also match applying the preplay write sets.
        let applied = funded_store(16);
        result.apply_to(&applied);
        let diff = applied.snapshot().diff_values(&replay_store.snapshot());
        assert!(diff.is_empty(), "state diverged on keys {diff:?}");
    }

    #[test]
    fn conservation_of_money_under_contention() {
        let store = funded_store(8);
        let initial_total = store.stats().int_sum;
        let cfg = SmallBankConfig {
            accounts: 8,
            theta: 0.9,
            pr_read: 0.0,
            n_shards: 1,
            max_amount: 50,
            ..SmallBankConfig::default()
        };
        let mut workload = SmallBankWorkload::new(cfg);
        let txs = workload.batch(200, SimTime::ZERO);
        let result = ce(6).execute_batch(&txs, &store);
        assert_eq!(result.committed(), 200);
        assert_eq!(
            store.stats().int_sum,
            initial_total,
            "SendPayment must conserve the total balance"
        );
    }

    #[test]
    fn read_only_batch_needs_no_reexecutions() {
        let store = funded_store(32);
        let txs: Vec<Transaction> = (0..50)
            .map(|i| {
                Transaction::new(
                    TxId::new(i),
                    ClientId::new(0),
                    ContractCall::SmallBank(SmallBankProcedure::GetBalance { account: i % 32 }),
                    1,
                    SimTime::ZERO,
                )
            })
            .collect();
        let result = ce(8).preplay(&txs, &store);
        assert_eq!(result.committed(), 50);
        assert_eq!(result.reexecutions, 0);
        assert_eq!(
            result.return_value(TxId::new(0)),
            Some(&Value::int(2 * SMALLBANK_DEFAULT_BALANCE))
        );
    }

    #[test]
    fn single_executor_degrades_to_serial_but_still_works() {
        let store = funded_store(4);
        let txs: Vec<Transaction> = (0..20).map(|i| send_payment(i, 0, 1, 1)).collect();
        let result = ce(1).execute_batch(&txs, &store);
        assert_eq!(result.committed(), 20);
        assert_eq!(result.reexecutions, 0, "a single executor never conflicts");
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 20)
        );
    }

    #[test]
    fn preplay_is_deterministic_across_worker_counts() {
        // Heavy contention so the speculative phase really does produce
        // schedule-dependent graphs — the finalize pass must erase that.
        let cfg = SmallBankConfig {
            accounts: 8,
            theta: 0.95,
            pr_read: 0.2,
            n_shards: 1,
            ..SmallBankConfig::default()
        };
        let mut workload = SmallBankWorkload::new(cfg);
        let txs = workload.batch(96, SimTime::ZERO);
        let store = funded_store(8);
        let reference = ce(1).preplay(&txs, &store);
        // The serialized order is batch order by construction.
        for (idx, p) in reference.preplayed.iter().enumerate() {
            assert_eq!(p.order as usize, idx);
            assert_eq!(p.tx.id, txs[idx].id);
        }
        for workers in [2, 3, 8] {
            let result = ce(workers).preplay(&txs, &store);
            assert_eq!(
                result.commit_digest(),
                reference.commit_digest(),
                "{workers} workers diverged from the single-worker run"
            );
            assert_eq!(result.committed(), reference.committed());
        }
    }

    #[test]
    fn finalize_repairs_schedule_skewed_speculative_outcomes() {
        // On a single-core machine the parallel phase cannot interleave, so
        // this test feeds the finalize pass speculative outcomes from a
        // *different* schedule directly: the ones a completion-order run
        // that executed t1 before t0 would have produced.
        let store = funded_store(4);
        let t0 = send_payment(0, 0, 1, 10);
        let t1 = send_payment(1, 0, 2, 5);
        let txs = vec![t0.clone(), t1.clone()];
        let reference = ce(1).preplay(&txs, &store);

        let swapped = ce(1).preplay(&[t1, t0], &store);
        let speculative = vec![
            Some(swapped.preplayed[1].outcome.clone()), // t0, but executed second
            Some(swapped.preplayed[0].outcome.clone()), // t1, but executed first
        ];
        let (preplayed, repairs) = finalize_batch(&txs, speculative, &store, 0);
        assert_eq!(repairs, 2, "both outcomes observed stale reads");
        let repaired = BatchResult {
            preplayed,
            ..BatchResult::default()
        };
        assert_eq!(
            repaired.commit_digest(),
            reference.commit_digest(),
            "finalize must repair a schedule-skewed run back to batch order"
        );

        // Transactions that never committed speculatively are repaired too.
        let (preplayed, repairs) = finalize_batch(&txs, vec![None, None], &store, 0);
        assert_eq!(repairs, 2);
        let rebuilt = BatchResult {
            preplayed,
            ..BatchResult::default()
        };
        assert_eq!(rebuilt.commit_digest(), reference.commit_digest());
    }

    #[test]
    fn logical_rejections_are_counted_but_still_commit() {
        let store = MemStore::new(); // empty accounts: every payment is rejected
        let txs = vec![send_payment(1, 0, 1, 10), send_payment(2, 1, 2, 5)];
        let result = ce(2).preplay(&txs, &store);
        assert_eq!(result.committed(), 2);
        assert_eq!(result.logical_rejections, 2);
    }
}
