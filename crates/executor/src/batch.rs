//! Batch execution results and statistics.

use std::time::Duration;
use tb_storage::{KvWrite, MemStore, WriteBatch};
use tb_types::{AccessRecord, PreplayedTx, TxId, Value};

/// FNV-1a offset basis; the same seed tb-core replicas use for the
/// commit-order digest, so the two digest families are directly comparable
/// in reports.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fold(digest: u64, v: u64) -> u64 {
    (digest ^ v).wrapping_mul(FNV_PRIME)
}

fn fold_value(digest: u64, value: &Value) -> u64 {
    match value {
        Value::None => fold(digest, 0),
        Value::Int(i) => fold(fold(digest, 1), *i as u64),
        Value::Bytes(bytes) => bytes
            .iter()
            .fold(fold(digest, 2), |d, byte| fold(d, u64::from(*byte))),
    }
}

/// Which engine produced a result (used in benchmark reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// The Thunderbolt concurrent executor.
    ConcurrentExecutor,
    /// Optimistic concurrency control.
    Occ,
    /// Two-phase locking, no-wait variant.
    TwoPlNoWait,
    /// Serial in-order execution.
    Serial,
}

impl ExecutorKind {
    /// Short display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorKind::ConcurrentExecutor => "Thunderbolt",
            ExecutorKind::Occ => "OCC",
            ExecutorKind::TwoPlNoWait => "2PL-No-Wait",
            ExecutorKind::Serial => "Serial",
        }
    }
}

/// The outcome of executing (or preplaying) one batch of transactions.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// The transactions in their serialized execution order, together with
    /// their read/write sets and results — exactly the content of a block's
    /// single-shard payload.
    pub preplayed: Vec<PreplayedTx>,
    /// Total number of re-executions caused by concurrency-control aborts
    /// (the paper's "# of Re-executions" metric counts the *average* per
    /// transaction, which is `reexecutions / preplayed.len()`).
    pub reexecutions: u64,
    /// Number of transactions whose own logic rejected them (e.g.
    /// insufficient funds). These still commit as no-ops.
    pub logical_rejections: u64,
    /// Wall-clock time spent executing the batch.
    pub elapsed: Duration,
    /// Sum over transactions of the time between first execution attempt and
    /// commit; divided by the batch size this is the average transaction
    /// latency reported in Figures 11 and 12.
    pub total_latency: Duration,
    /// Per-transaction latency samples (first execution attempt to commit),
    /// in no particular order. The perf-regression harness computes p50/p99
    /// from these; they sum to [`BatchResult::total_latency`].
    pub latencies: Vec<Duration>,
}

impl BatchResult {
    /// Number of committed transactions.
    pub fn committed(&self) -> usize {
        self.preplayed.len()
    }

    /// Throughput in transactions per second over the batch.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed() as f64 / self.elapsed.as_secs_f64()
    }

    /// Average per-transaction latency in seconds.
    pub fn avg_latency_secs(&self) -> f64 {
        if self.preplayed.is_empty() {
            return 0.0;
        }
        self.total_latency.as_secs_f64() / self.preplayed.len() as f64
    }

    /// Average number of re-executions per transaction.
    pub fn avg_reexecutions(&self) -> f64 {
        if self.preplayed.is_empty() {
            return 0.0;
        }
        self.reexecutions as f64 / self.preplayed.len() as f64
    }

    /// The combined write batch of the serialized order (later transactions
    /// overwrite earlier ones), ready to be applied to a store.
    pub fn write_batch(&self) -> WriteBatch {
        let mut sorted: Vec<&PreplayedTx> = self.preplayed.iter().collect();
        sorted.sort_by_key(|p| p.order);
        let mut batch = WriteBatch::new();
        for p in sorted {
            batch.extend_from_write_set(&p.outcome.write_set);
        }
        batch
    }

    /// Applies the batch's write sets to a store in serialized order.
    pub fn apply_to(&self, store: &MemStore) {
        for (key, value) in self.write_batch().into_writes() {
            store.put(key, value);
        }
    }

    /// The return value recorded for a transaction, if it committed in this
    /// batch.
    pub fn return_value(&self, tx: TxId) -> Option<&Value> {
        self.preplayed
            .iter()
            .find(|p| p.tx.id == tx)
            .map(|p| &p.outcome.return_value)
    }

    /// Folds the serialized execution order and every transaction's id,
    /// read set, write set and result into a 64-bit FNV-1a digest. Records
    /// are canonicalized (walked in serialized order, access sets sorted by
    /// key), so two runs of the same batch produce the same digest iff they
    /// agree on the order and on every declared outcome — digest equality
    /// across worker counts is the machine-checked determinism proof behind
    /// the `executor_scaling` bench table (docs/PERF.md).
    pub fn commit_digest(&self) -> u64 {
        let mut sorted: Vec<&PreplayedTx> = self.preplayed.iter().collect();
        sorted.sort_by_key(|p| p.order);
        let mut digest = FNV_OFFSET;
        for p in sorted {
            digest = fold(digest, u64::from(p.order));
            digest = fold(digest, p.tx.id.as_inner());
            for set in [&p.outcome.read_set, &p.outcome.write_set] {
                let mut records: Vec<&AccessRecord> = set.iter().collect();
                records.sort_by_key(|r| r.key);
                digest = fold(digest, records.len() as u64);
                for rec in records {
                    digest = fold(digest, rec.key.encode());
                    digest = fold_value(digest, &rec.value);
                }
            }
            digest = fold_value(digest, &p.outcome.return_value);
            digest = fold(digest, u64::from(p.outcome.logically_aborted));
        }
        digest
    }

    /// True if the serialized order indices form a permutation of
    /// `0..committed()` (a structural sanity check used by tests).
    pub fn order_is_permutation(&self) -> bool {
        let mut seen = vec![false; self.preplayed.len()];
        for p in &self.preplayed {
            let idx = p.order as usize;
            if idx >= seen.len() || seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_storage::KvRead;
    use tb_types::{AccessRecord, ClientId, ContractCall, ExecOutcome, Key, SimTime, Transaction};

    fn preplayed(id: u64, order: u32, writes: &[(Key, i64)]) -> PreplayedTx {
        let tx = Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::Noop,
            4,
            SimTime::ZERO,
        );
        let mut outcome = ExecOutcome::empty();
        for (k, v) in writes {
            outcome
                .write_set
                .push(AccessRecord::new(*k, Value::int(*v)));
        }
        PreplayedTx::new(tx, outcome, order)
    }

    #[test]
    fn empty_batch_has_zero_metrics() {
        let r = BatchResult::default();
        assert_eq!(r.committed(), 0);
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.avg_latency_secs(), 0.0);
        assert_eq!(r.avg_reexecutions(), 0.0);
        assert!(r.order_is_permutation());
    }

    #[test]
    fn write_batch_respects_serialized_order_not_vec_order() {
        let r = BatchResult {
            preplayed: vec![
                preplayed(2, 1, &[(Key::scratch(1), 20)]),
                preplayed(1, 0, &[(Key::scratch(1), 10)]),
            ],
            ..BatchResult::default()
        };
        // Order index 1 (value 20) must win over order index 0 (value 10).
        let store = MemStore::new();
        r.apply_to(&store);
        assert_eq!(store.get(&Key::scratch(1)), Value::int(20));
        assert!(r.order_is_permutation());
    }

    #[test]
    fn order_permutation_detects_gaps_and_duplicates() {
        let dup = BatchResult {
            preplayed: vec![preplayed(1, 0, &[]), preplayed(2, 0, &[])],
            ..BatchResult::default()
        };
        assert!(!dup.order_is_permutation());
        let gap = BatchResult {
            preplayed: vec![preplayed(1, 0, &[]), preplayed(2, 2, &[])],
            ..BatchResult::default()
        };
        assert!(!gap.order_is_permutation());
    }

    #[test]
    fn metrics_are_computed_from_counts() {
        let r = BatchResult {
            preplayed: vec![preplayed(1, 0, &[]), preplayed(2, 1, &[])],
            reexecutions: 3,
            elapsed: Duration::from_millis(10),
            total_latency: Duration::from_millis(4),
            ..BatchResult::default()
        };
        assert_eq!(r.committed(), 2);
        assert!((r.throughput_tps() - 200.0).abs() < 1.0);
        assert!((r.avg_latency_secs() - 0.002).abs() < 1e-9);
        assert!((r.avg_reexecutions() - 1.5).abs() < 1e-9);
        assert!(r.return_value(TxId::new(1)).is_some());
        assert!(r.return_value(TxId::new(9)).is_none());
    }

    #[test]
    fn commit_digest_is_sensitive_to_order_values_and_ids() {
        let base = BatchResult {
            preplayed: vec![
                preplayed(1, 0, &[(Key::scratch(1), 10)]),
                preplayed(2, 1, &[(Key::scratch(2), 20)]),
            ],
            ..BatchResult::default()
        };
        let same = base.clone();
        assert_eq!(base.commit_digest(), same.commit_digest());

        // Vec order does not matter, serialized order does.
        let mut shuffled = base.clone();
        shuffled.preplayed.swap(0, 1);
        assert_eq!(base.commit_digest(), shuffled.commit_digest());

        let mut reordered = base.clone();
        reordered.preplayed[0].order = 1;
        reordered.preplayed[1].order = 0;
        assert_ne!(base.commit_digest(), reordered.commit_digest());

        let mut tampered = base.clone();
        tampered.preplayed[0].outcome.write_set[0].value = Value::int(11);
        assert_ne!(base.commit_digest(), tampered.commit_digest());

        let mut renamed = base.clone();
        renamed.preplayed[0].tx.id = TxId::new(9);
        assert_ne!(base.commit_digest(), renamed.commit_digest());
    }

    #[test]
    fn executor_kind_labels() {
        assert_eq!(ExecutorKind::ConcurrentExecutor.label(), "Thunderbolt");
        assert_eq!(ExecutorKind::Occ.label(), "OCC");
        assert_eq!(ExecutorKind::TwoPlNoWait.label(), "2PL-No-Wait");
        assert_eq!(ExecutorKind::Serial.label(), "Serial");
    }
}
