//! The dependency graph data structure used by the concurrency controller.
//!
//! Nodes are transactions; each node keeps, per key, the *first read* and
//! the *last write* together with their values (paper Section 8.1). Edges
//! `u -> v` mean "u must commit before v". Per key the graph additionally
//! keeps the *write chain* (the writers in their tentative serialization
//! order) and the set of readers, which is what the insertion rules of
//! Sections 8.2–8.4 operate on.
//!
//! The structure itself is not thread-safe; [`super::controller`] wraps it in
//! a mutex and exposes the operation-level API used by executor workers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;
use tb_contracts::CallResult;
use tb_types::{ExecOutcome, Key, TxId, Value};

/// Index of a transaction inside one batch.
pub type TxIdx = usize;

/// Lifecycle of a transaction inside the concurrency controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Registered but not yet picked up by an executor.
    Pending,
    /// Currently executing operations.
    Active,
    /// The executor reported completion; waiting for dependencies to commit.
    Finishing,
    /// Committed; part of the serialized order.
    Committed,
    /// Aborted; must be re-executed from scratch.
    Aborted,
}

/// Per-key record kept inside a transaction node: at most the first read and
/// the last write (Section 8.1, "we remain at most two operations in the
/// nodes").
#[derive(Clone, Debug, Default)]
pub struct KeyRecord {
    /// Value observed by the first (external) read of the key.
    pub first_read: Option<Value>,
    /// Value produced by the last write to the key.
    pub last_write: Option<Value>,
}

/// One transaction node.
#[derive(Debug)]
pub struct TxnNode {
    /// The transaction id this node stands for.
    pub id: TxId,
    /// Re-execution epoch; bumped on every abort so operations issued by a
    /// stale execution attempt can be rejected.
    pub epoch: u64,
    /// Current lifecycle state.
    pub status: TxnStatus,
    /// Per-key first-read / last-write records.
    pub records: HashMap<Key, KeyRecord>,
    /// For every key read externally: the writer the value was taken from
    /// (`None` means the root, i.e. committed storage).
    pub read_from: HashMap<Key, Option<TxIdx>>,
    /// Incoming edges: transactions that must commit before this one.
    pub preds: HashSet<TxIdx>,
    /// Outgoing edges: transactions that must commit after this one.
    pub succs: HashSet<TxIdx>,
    /// Result reported by the executor on completion.
    pub result: Option<CallResult>,
    /// Position in the committed order, once committed.
    pub commit_index: Option<u32>,
    /// Number of times the transaction was re-executed due to aborts.
    pub retries: u64,
    /// First time an executor started working on the transaction.
    pub started_at: Option<Instant>,
    /// Time the transaction committed.
    pub committed_at: Option<Instant>,
}

impl TxnNode {
    fn new(id: TxId) -> Self {
        TxnNode {
            id,
            epoch: 0,
            status: TxnStatus::Pending,
            records: HashMap::new(),
            read_from: HashMap::new(),
            preds: HashSet::new(),
            succs: HashSet::new(),
            result: None,
            commit_index: None,
            retries: 0,
            started_at: None,
            committed_at: None,
        }
    }

    /// True if the node has any write record.
    pub fn has_writes(&self) -> bool {
        self.records.values().any(|r| r.last_write.is_some())
    }

    /// Builds the externally visible outcome of the node.
    pub fn outcome(&self) -> ExecOutcome {
        let mut outcome = ExecOutcome::empty();
        let mut keys: Vec<&Key> = self.records.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let record = &self.records[key];
            if let Some(read) = &record.first_read {
                outcome.record_read(*key, read.clone());
            }
            if let Some(write) = &record.last_write {
                outcome.record_write(*key, write.clone());
            }
        }
        if let Some(result) = &self.result {
            outcome.return_value = result.return_value.clone();
            outcome.logically_aborted = result.logically_aborted;
        }
        outcome
    }
}

/// Per-key bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct KeyState {
    /// Writers of the key in tentative serialization order.
    pub write_chain: Vec<TxIdx>,
    /// Transactions that performed an external read of the key.
    pub readers: HashSet<TxIdx>,
}

/// Error returned when an edge insertion would create a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleError;

/// The dependency graph over one batch of transactions.
#[derive(Debug, Default)]
pub struct DependencyGraph {
    nodes: Vec<TxnNode>,
    keys: HashMap<Key, KeyState>,
    committed_order: Vec<TxIdx>,
    /// Transactions aborted by cascades that the executor pool has not yet
    /// been told to re-execute.
    pending_aborts: Vec<TxIdx>,
    /// Total number of aborts (re-executions) across the batch.
    total_aborts: u64,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Registers a transaction and returns its index.
    pub fn register(&mut self, id: TxId) -> TxIdx {
        let idx = self.nodes.len();
        self.nodes.push(TxnNode::new(id));
        idx
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no transaction is registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    pub fn node(&self, idx: TxIdx) -> &TxnNode {
        &self.nodes[idx]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, idx: TxIdx) -> &mut TxnNode {
        &mut self.nodes[idx]
    }

    /// Per-key state (empty default if the key was never touched).
    pub fn key_state(&self, key: &Key) -> Option<&KeyState> {
        self.keys.get(key)
    }

    /// The committed order so far.
    pub fn committed_order(&self) -> &[TxIdx] {
        &self.committed_order
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> usize {
        self.committed_order.len()
    }

    /// Total number of aborts recorded.
    pub fn total_aborts(&self) -> u64 {
        self.total_aborts
    }

    /// Drains the queue of cascade-aborted transactions.
    pub fn take_pending_aborts(&mut self) -> Vec<TxIdx> {
        std::mem::take(&mut self.pending_aborts)
    }

    /// True if `from` can reach `to` by following outgoing edges.
    pub fn reaches(&self, from: TxIdx, to: TxIdx) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = VecDeque::from([from]);
        visited[from] = true;
        while let Some(current) = queue.pop_front() {
            for &next in &self.nodes[current].succs {
                if next == to {
                    return true;
                }
                if !visited[next] {
                    visited[next] = true;
                    queue.push_back(next);
                }
            }
        }
        false
    }

    /// Adds an edge `from -> to`, rejecting it if it would create a cycle.
    /// Self-edges and duplicate edges are ignored.
    pub fn add_edge(&mut self, from: TxIdx, to: TxIdx) -> Result<(), CycleError> {
        if from == to || self.nodes[from].succs.contains(&to) {
            return Ok(());
        }
        if self.reaches(to, from) {
            return Err(CycleError);
        }
        self.nodes[from].succs.insert(to);
        self.nodes[to].preds.insert(from);
        Ok(())
    }

    /// Checks whether the edge `from -> to` could be added without a cycle,
    /// without actually adding it.
    pub fn can_add_edge(&self, from: TxIdx, to: TxIdx) -> bool {
        from == to || self.nodes[from].succs.contains(&to) || !self.reaches(to, from)
    }

    /// Readers of `key` (excluding `except`), in arbitrary order.
    pub fn readers_of(&self, key: &Key, except: TxIdx) -> Vec<TxIdx> {
        self.keys
            .get(key)
            .map(|state| {
                state
                    .readers
                    .iter()
                    .copied()
                    .filter(|&r| r != except)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Registers `idx` as a reader of `key` that took its value from
    /// `from_writer` (`None` = storage).
    pub fn record_read(&mut self, idx: TxIdx, key: Key, value: Value, from_writer: Option<TxIdx>) {
        let entry = self.keys.entry(key).or_default();
        entry.readers.insert(idx);
        let node = &mut self.nodes[idx];
        node.read_from.insert(key, from_writer);
        let record = node.records.entry(key).or_default();
        if record.first_read.is_none() {
            record.first_read = Some(value);
        }
    }

    /// Registers a write of `value` to `key` by `idx`, appending `idx` to the
    /// key's write chain if this is its first write to the key.
    pub fn record_write(&mut self, idx: TxIdx, key: Key, value: Value) {
        let position = self.keys.entry(key).or_default().write_chain.len();
        self.record_write_at(idx, key, value, position);
    }

    /// Registers a write of `value` to `key` by `idx`, inserting `idx` into
    /// the key's write chain at `position` (clamped to the chain length) if
    /// this is its first write to the key. The position encodes where in the
    /// tentative serialization order of writers the transaction was placed —
    /// the rescheduling freedom illustrated in Figure 1.
    pub fn record_write_at(&mut self, idx: TxIdx, key: Key, value: Value, position: usize) {
        let entry = self.keys.entry(key).or_default();
        if !entry.write_chain.contains(&idx) {
            let position = position.min(entry.write_chain.len());
            entry.write_chain.insert(position, idx);
        }
        let record = self.nodes[idx].records.entry(key).or_default();
        record.last_write = Some(value);
    }

    /// The writers of `key` in chain order.
    pub fn write_chain(&self, key: &Key) -> &[TxIdx] {
        self.keys
            .get(key)
            .map(|s| s.write_chain.as_slice())
            .unwrap_or(&[])
    }

    /// Active (not aborted, not committed) transactions whose recorded read
    /// of `key` came from `writer`.
    pub fn dependent_readers(&self, key: &Key, writer: TxIdx) -> Vec<TxIdx> {
        let Some(state) = self.keys.get(key) else {
            return Vec::new();
        };
        state
            .readers
            .iter()
            .copied()
            .filter(|&r| {
                r != writer
                    && self.nodes[r].status != TxnStatus::Aborted
                    && self.nodes[r].read_from.get(key) == Some(&Some(writer))
            })
            .collect()
    }

    /// Aborts a transaction and cascades through every transaction that read
    /// one of its written values (paper Section 8.4). Returns the set of
    /// aborted transaction indices (including `root`). Committed transactions
    /// are never aborted — the controller guarantees a reader can only commit
    /// after the writer it read from, so a committed reader cannot have taken
    /// a value from a still-active writer.
    ///
    /// Every victim (including the root) is queued in the pending-abort list;
    /// the executor pool drains that list to schedule re-executions, and a
    /// worker that picks up an index which is not in a re-executable state
    /// simply skips it.
    pub fn abort_cascade(&mut self, root: TxIdx) -> Vec<TxIdx> {
        let mut to_abort = vec![root];
        let mut seen: HashSet<TxIdx> = to_abort.iter().copied().collect();
        let mut cursor = 0;
        while cursor < to_abort.len() {
            let current = to_abort[cursor];
            cursor += 1;
            // Every reader that took a value written by `current` must also
            // be re-executed.
            let written_keys: Vec<Key> = self.nodes[current]
                .records
                .iter()
                .filter(|(_, rec)| rec.last_write.is_some())
                .map(|(k, _)| *k)
                .collect();
            for key in written_keys {
                for reader in self.dependent_readers(&key, current) {
                    if seen.insert(reader) {
                        to_abort.push(reader);
                    }
                }
            }
        }
        // Successors of the victims may have been waiting only on a victim;
        // remember them so they can be re-examined for commit once the
        // victims are detached.
        let mut unblocked: Vec<TxIdx> = Vec::new();
        for &idx in &to_abort {
            for &s in &self.nodes[idx].succs {
                if !seen.contains(&s) {
                    unblocked.push(s);
                }
            }
        }
        for &idx in &to_abort {
            self.detach(idx);
        }
        self.total_aborts += to_abort.len() as u64;
        for &idx in &to_abort {
            self.pending_aborts.push(idx);
        }
        for s in unblocked {
            if self.nodes[s].status == TxnStatus::Finishing {
                self.try_commit(s);
            }
        }
        to_abort
    }

    /// Removes a transaction from every per-key structure and from the edge
    /// set, bumps its epoch and marks it aborted.
    fn detach(&mut self, idx: TxIdx) {
        debug_assert_ne!(
            self.nodes[idx].status,
            TxnStatus::Committed,
            "committed transactions must never be aborted"
        );
        let preds: Vec<TxIdx> = self.nodes[idx].preds.iter().copied().collect();
        let succs: Vec<TxIdx> = self.nodes[idx].succs.iter().copied().collect();
        for p in preds {
            self.nodes[p].succs.remove(&idx);
        }
        for s in succs {
            self.nodes[s].preds.remove(&idx);
        }
        for state in self.keys.values_mut() {
            state.readers.remove(&idx);
            state.write_chain.retain(|&w| w != idx);
        }
        let node = &mut self.nodes[idx];
        node.preds.clear();
        node.succs.clear();
        node.records.clear();
        node.read_from.clear();
        node.result = None;
        node.epoch += 1;
        node.retries += 1;
        node.status = TxnStatus::Aborted;
    }

    /// Marks `idx` as finishing and commits it (and, transitively, any of its
    /// successors that were only waiting for it) if all its predecessors have
    /// committed. Returns `true` if `idx` itself committed.
    pub fn try_commit(&mut self, idx: TxIdx) -> bool {
        if self.nodes[idx].status != TxnStatus::Finishing {
            return false;
        }
        let all_preds_committed = self.nodes[idx]
            .preds
            .iter()
            .all(|&p| self.nodes[p].status == TxnStatus::Committed);
        if !all_preds_committed {
            return false;
        }
        let commit_index = self.committed_order.len() as u32;
        {
            let node = &mut self.nodes[idx];
            node.status = TxnStatus::Committed;
            node.commit_index = Some(commit_index);
            node.committed_at = Some(Instant::now());
        }
        self.committed_order.push(idx);
        // Committing this node may unblock finishing successors.
        let succs: Vec<TxIdx> = self.nodes[idx].succs.iter().copied().collect();
        for s in succs {
            self.try_commit(s);
        }
        true
    }

    /// True when every registered transaction has committed.
    pub fn all_committed(&self) -> bool {
        self.committed_order.len() == self.nodes.len()
    }

    /// Iterates over the nodes together with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (TxIdx, &TxnNode)> {
        self.nodes.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with(n: usize) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for i in 0..n {
            g.register(TxId::new(i as u64));
        }
        g
    }

    #[test]
    fn register_assigns_sequential_indices() {
        let mut g = DependencyGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.register(TxId::new(10)), 0);
        assert_eq!(g.register(TxId::new(11)), 1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(0).id, TxId::new(10));
        assert_eq!(g.node(1).status, TxnStatus::Pending);
    }

    #[test]
    fn add_edge_rejects_cycles() {
        let mut g = graph_with(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(g.reaches(0, 2));
        assert!(!g.reaches(2, 0));
        assert_eq!(g.add_edge(2, 0), Err(CycleError));
        // Duplicate and self edges are fine.
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 1).unwrap();
        assert!(g.can_add_edge(0, 2));
        assert!(!g.can_add_edge(2, 0));
    }

    #[test]
    fn record_read_keeps_first_value_only() {
        let mut g = graph_with(1);
        let k = Key::scratch(1);
        g.record_read(0, k, Value::int(1), None);
        g.record_read(0, k, Value::int(2), None);
        assert_eq!(g.node(0).records[&k].first_read, Some(Value::int(1)));
        assert!(g.key_state(&k).unwrap().readers.contains(&0));
    }

    #[test]
    fn record_write_appends_to_chain_once() {
        let mut g = graph_with(2);
        let k = Key::scratch(1);
        g.record_write(0, k, Value::int(1));
        g.record_write(0, k, Value::int(2));
        g.record_write(1, k, Value::int(3));
        assert_eq!(g.write_chain(&k), &[0, 1]);
        assert_eq!(g.node(0).records[&k].last_write, Some(Value::int(2)));
        assert!(g.node(0).has_writes());
    }

    #[test]
    fn dependent_readers_tracks_read_from() {
        let mut g = graph_with(3);
        let k = Key::scratch(1);
        g.record_write(0, k, Value::int(1));
        g.record_read(1, k, Value::int(1), Some(0));
        g.record_read(2, k, Value::int(0), None);
        let mut deps = g.dependent_readers(&k, 0);
        deps.sort_unstable();
        assert_eq!(deps, vec![1]);
    }

    #[test]
    fn abort_cascade_follows_data_flow_only() {
        let mut g = graph_with(4);
        let k = Key::scratch(1);
        // 0 writes k; 1 reads from 0; 2 reads from 1's write on another key.
        g.record_write(0, k, Value::int(1));
        g.record_read(1, k, Value::int(1), Some(0));
        let k2 = Key::scratch(2);
        g.record_write(1, k2, Value::int(5));
        g.record_read(2, k2, Value::int(5), Some(1));
        // 3 reads k from storage: must not be aborted.
        g.record_read(3, k, Value::int(0), None);
        g.node_mut(0).status = TxnStatus::Active;
        g.node_mut(1).status = TxnStatus::Active;
        g.node_mut(2).status = TxnStatus::Active;
        g.node_mut(3).status = TxnStatus::Active;

        let mut aborted = g.abort_cascade(0);
        aborted.sort_unstable();
        assert_eq!(aborted, vec![0, 1, 2]);
        assert_eq!(g.node(3).status, TxnStatus::Active);
        assert_eq!(g.node(0).epoch, 1);
        assert_eq!(g.node(1).retries, 1);
        assert_eq!(g.total_aborts(), 3);
        // Every victim (root included) is queued for re-execution.
        let mut pending = g.take_pending_aborts();
        pending.sort_unstable();
        assert_eq!(pending, vec![0, 1, 2]);
        assert!(g.take_pending_aborts().is_empty());
        // The key structures no longer mention the aborted transactions.
        assert!(g.write_chain(&k).is_empty());
        assert!(g.readers_of(&k, usize::MAX).contains(&3));
    }

    #[test]
    fn try_commit_respects_dependencies_and_cascades() {
        let mut g = graph_with(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        for idx in 0..3 {
            g.node_mut(idx).status = TxnStatus::Finishing;
        }
        // Committing 2 first is blocked by its predecessors.
        assert!(!g.try_commit(2));
        assert!(g.try_commit(0));
        // Committing 0 cascades: 1 and 2 were finishing and become committed.
        assert!(g.all_committed());
        assert_eq!(g.committed_order(), &[0, 1, 2]);
        assert_eq!(g.node(2).commit_index, Some(2));
        assert_eq!(g.committed_count(), 3);
    }

    #[test]
    fn outcome_collects_records_and_result() {
        let mut g = graph_with(1);
        let k = Key::scratch(1);
        g.record_read(0, k, Value::int(3), None);
        g.record_write(0, k, Value::int(4));
        g.node_mut(0).result = Some(CallResult::ok(Value::int(4)));
        let outcome = g.node(0).outcome();
        assert_eq!(outcome.read_value(&k), Some(&Value::int(3)));
        assert_eq!(outcome.written_value(&k), Some(&Value::int(4)));
        assert_eq!(outcome.return_value, Value::int(4));
        assert!(!outcome.logically_aborted);
    }
}
