//! The concurrency controller (`CC`) of the concurrent executor.
//!
//! The CC maintains a *runtime dependency graph* over the transactions of a
//! batch (paper Section 8). It needs no prior knowledge of read/write sets:
//! edges are added as operations arrive, reads may observe uncommitted
//! writes of other transactions, and the commit sequence defines the
//! serialized execution order shipped in the block. Conflicts that cannot be
//! resolved by rescheduling abort the offending transaction (and its
//! data-flow dependents), which is the re-execution count reported in the
//! evaluation.

pub mod controller;
pub mod graph;

pub use controller::{ConcurrencyController, FinishStatus, TxHandle};
pub use graph::{DependencyGraph, TxIdx, TxnStatus};
