//! The concurrency controller: the operation-level API executor workers use.
//!
//! The controller wraps the [`DependencyGraph`] in a mutex and implements
//! the insertion rules of paper Sections 8.2–8.4:
//!
//! * a **read** takes its value from the latest writer of the key (walking
//!   back through earlier writers, and finally committed storage, when the
//!   latest writer cannot be ordered before the reader), creating a data-flow
//!   edge from the chosen writer and an ordering edge towards the writer that
//!   follows it;
//! * a **write** is ordered after the current chain tail and after every
//!   active reader of the key; rewriting a key whose previous value has
//!   already been read by others cascades an abort through those readers
//!   (Table 1, time 5);
//! * conflicts that cannot be rescheduled abort the issuing transaction and
//!   its data-flow dependents.
//!
//! Transactions commit in dependency order; the commit sequence is the
//! serialized execution order shipped in the block.

use crate::cc::graph::{DependencyGraph, TxIdx, TxnStatus};
use parking_lot::Mutex;
use std::time::{Duration, Instant};
use tb_contracts::{CallResult, ExecError};
use tb_storage::KvRead;
use tb_types::{Key, PreplayedTx, Transaction, TxId, Value};

/// A lease on a transaction for one execution attempt. Operations carry the
/// epoch so that attempts invalidated by a cascade abort are rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxHandle {
    /// Index of the transaction in the batch.
    pub idx: TxIdx,
    /// Execution epoch this handle is valid for.
    pub epoch: u64,
}

/// Result of reporting a transaction as finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishStatus {
    /// The transaction committed immediately.
    Committed,
    /// The transaction is waiting for its dependencies to commit; it will be
    /// committed automatically once they do.
    Pending,
    /// The transaction was aborted (possibly by a concurrent cascade) and
    /// must be re-executed.
    Aborted,
}

/// The concurrency controller shared by all executor workers of one batch.
pub struct ConcurrencyController<'a> {
    graph: Mutex<DependencyGraph>,
    base: &'a (dyn KvRead + Sync),
}

impl<'a> ConcurrencyController<'a> {
    /// Creates a controller whose root reads come from `base` (the committed
    /// storage of the shard).
    pub fn new(base: &'a (dyn KvRead + Sync)) -> Self {
        ConcurrencyController {
            graph: Mutex::new(DependencyGraph::new()),
            base,
        }
    }

    /// Registers a transaction, returning its batch index.
    pub fn register(&self, id: TxId) -> TxIdx {
        self.graph.lock().register(id)
    }

    /// Registers every transaction of a batch in order.
    pub fn register_batch(&self, txs: &[Transaction]) -> Vec<TxIdx> {
        let mut graph = self.graph.lock();
        txs.iter().map(|tx| graph.register(tx.id)).collect()
    }

    /// Starts (or restarts) an execution attempt for `idx`. Returns `None`
    /// when the transaction is not in a runnable state — e.g. another worker
    /// already picked it up, or it has already committed.
    pub fn begin(&self, idx: TxIdx) -> Option<TxHandle> {
        let mut graph = self.graph.lock();
        let node = graph.node_mut(idx);
        match node.status {
            TxnStatus::Pending | TxnStatus::Aborted => {
                node.status = TxnStatus::Active;
                if node.started_at.is_none() {
                    node.started_at = Some(Instant::now());
                }
                Some(TxHandle {
                    idx,
                    epoch: node.epoch,
                })
            }
            _ => None,
        }
    }

    fn check_live(graph: &DependencyGraph, handle: TxHandle) -> Result<(), ExecError> {
        let node = graph.node(handle.idx);
        if node.epoch != handle.epoch || node.status != TxnStatus::Active {
            return Err(ExecError::aborted("superseded by a concurrent abort"));
        }
        Ok(())
    }

    /// Performs a read on behalf of `handle` (paper Sections 8.2–8.3).
    pub fn read(&self, handle: TxHandle, key: Key) -> Result<Value, ExecError> {
        let mut graph = self.graph.lock();
        Self::check_live(&graph, handle)?;
        let idx = handle.idx;

        // Read-after-own-write and repeated reads are served from the node's
        // own records.
        if let Some(record) = graph.node(idx).records.get(&key) {
            if let Some(write) = &record.last_write {
                return Ok(write.clone());
            }
            if let Some(read) = &record.first_read {
                return Ok(read.clone());
            }
        }

        let chain: Vec<TxIdx> = graph.write_chain(&key).to_vec();

        // Walk the write chain from the latest writer towards the oldest,
        // looking for a writer the reader can be placed after (and, when the
        // writer is not the tail, before the next writer in the chain).
        for pos in (0..chain.len()).rev() {
            let writer = chain[pos];
            if writer == idx {
                continue;
            }
            let next = chain.get(pos + 1).copied();
            if let Some(next) = next {
                // Reading an overwritten value is only valid while the
                // overwriting transaction has not committed yet.
                if graph.node(next).status == TxnStatus::Committed {
                    break;
                }
            }
            let feasible =
                graph.can_add_edge(writer, idx) && next.is_none_or(|n| graph.can_add_edge(idx, n));
            if !feasible {
                continue;
            }
            let value = graph
                .node(writer)
                .records
                .get(&key)
                .and_then(|r| r.last_write.clone())
                .expect("chain members always carry a write record");
            graph
                .add_edge(writer, idx)
                .expect("feasibility was just checked");
            if let Some(next) = next {
                graph
                    .add_edge(idx, next)
                    .expect("feasibility was just checked");
            }
            graph.record_read(idx, key, value.clone(), Some(writer));
            return Ok(value);
        }

        // Root fallback: read committed storage, ordering the reader before
        // the first uncommitted writer of the key.
        let root_ok = match chain.first() {
            None => true,
            Some(&first) => {
                graph.node(first).status != TxnStatus::Committed && graph.can_add_edge(idx, first)
            }
        };
        if root_ok {
            let value = self.base.get(&key);
            if let Some(&first) = chain.first() {
                graph
                    .add_edge(idx, first)
                    .expect("feasibility was just checked");
            }
            graph.record_read(idx, key, value.clone(), None);
            return Ok(value);
        }

        // No valid position exists: abort the reader (Section 8.4, case 1 —
        // extended to a cascade if it already produced writes others read).
        graph.abort_cascade(idx);
        Err(ExecError::aborted(format!(
            "no serializable position for read of {key}"
        )))
    }

    /// Performs a write on behalf of `handle` (paper Sections 8.2–8.4).
    pub fn write(&self, handle: TxHandle, key: Key, value: Value) -> Result<(), ExecError> {
        let mut graph = self.graph.lock();
        Self::check_live(&graph, handle)?;
        let idx = handle.idx;

        let already_wrote = graph
            .node(idx)
            .records
            .get(&key)
            .is_some_and(|r| r.last_write.is_some());
        if already_wrote {
            // Rewriting a value that other transactions already read makes
            // their reads stale: cascade-abort them (Table 1, time 5).
            let stale_readers = graph.dependent_readers(&key, idx);
            for reader in stale_readers {
                // The reader may already have been aborted by an earlier
                // iteration of this loop.
                if graph.node(reader).status != TxnStatus::Aborted {
                    graph.abort_cascade(reader);
                }
            }
            graph.record_write(idx, key, value);
            return Ok(());
        }

        // First write of this transaction to the key: find a position in the
        // key's write chain where the writer can be placed. Appending (the
        // common case) serializes it last; if that is impossible — e.g. a
        // later writer already depends on this transaction — the writer is
        // rescheduled to an earlier slot instead of aborting (Figure 1).
        let chain: Vec<TxIdx> = graph.write_chain(&key).to_vec();
        // The order of already-committed writers is fixed, so the new writer
        // can only be placed after the last committed one.
        let min_pos = chain
            .iter()
            .rposition(|&w| graph.node(w).status == TxnStatus::Committed)
            .map_or(0, |i| i + 1);
        let readers: Vec<(TxIdx, Option<TxIdx>)> = graph
            .readers_of(&key, idx)
            .into_iter()
            .filter(|&r| graph.node(r).status != TxnStatus::Committed)
            .map(|r| {
                let source = graph.node(r).read_from.get(&key).copied().flatten();
                (r, source)
            })
            .collect();

        let mut placement: Option<(usize, Vec<TxIdx>)> = None;
        for pos in (min_pos..=chain.len()).rev() {
            let prev_ok = pos == 0 || graph.can_add_edge(chain[pos - 1], idx);
            let next_ok = pos == chain.len() || graph.can_add_edge(idx, chain[pos]);
            if !(prev_ok && next_ok) {
                continue;
            }
            // Readers that observed a value older than this position must be
            // serialized before the new writer.
            let mut reader_edges = Vec::new();
            let mut feasible = true;
            for (reader, source) in &readers {
                let source_pos = source.and_then(|w| chain.iter().position(|&c| c == w));
                let reads_older_value = source_pos.is_none_or(|j| j < pos);
                if reads_older_value {
                    if graph.can_add_edge(*reader, idx) {
                        reader_edges.push(*reader);
                    } else {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                placement = Some((pos, reader_edges));
                break;
            }
        }

        let Some((pos, reader_edges)) = placement else {
            graph.abort_cascade(idx);
            return Err(ExecError::aborted(format!(
                "no serializable position for write of {key}"
            )));
        };
        let mut edges_ok = true;
        if pos > 0 {
            edges_ok &= graph.add_edge(chain[pos - 1], idx).is_ok();
        }
        if pos < chain.len() {
            edges_ok &= graph.add_edge(idx, chain[pos]).is_ok();
        }
        for reader in reader_edges {
            edges_ok &= graph.add_edge(reader, idx).is_ok();
        }
        if !edges_ok {
            // The individually-checked edges interacted through a path the
            // feasibility check could not see; fall back to aborting.
            graph.abort_cascade(idx);
            return Err(ExecError::aborted(format!(
                "conflicting placement for write of {key}"
            )));
        }
        graph.record_write_at(idx, key, value, pos);
        Ok(())
    }

    /// Reports that the executor finished running the transaction.
    pub fn finish(&self, handle: TxHandle, result: CallResult) -> FinishStatus {
        let mut graph = self.graph.lock();
        if Self::check_live(&graph, handle).is_err() {
            return FinishStatus::Aborted;
        }
        let node = graph.node_mut(handle.idx);
        node.result = Some(result);
        node.status = TxnStatus::Finishing;
        if graph.try_commit(handle.idx) {
            FinishStatus::Committed
        } else {
            FinishStatus::Pending
        }
    }

    /// Drains the queue of transactions aborted by cascades; the executor
    /// pool re-schedules them.
    pub fn take_aborted(&self) -> Vec<TxIdx> {
        self.graph.lock().take_pending_aborts()
    }

    /// Number of committed transactions so far.
    pub fn committed_count(&self) -> usize {
        self.graph.lock().committed_count()
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.graph.lock().len()
    }

    /// True if no transaction is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once every registered transaction committed.
    pub fn all_committed(&self) -> bool {
        self.graph.lock().all_committed()
    }

    /// Number of re-execution attempts recorded for a transaction.
    pub fn retries(&self, idx: TxIdx) -> u64 {
        self.graph.lock().node(idx).retries
    }

    /// Total number of aborts across the batch.
    pub fn total_aborts(&self) -> u64 {
        self.graph.lock().total_aborts()
    }

    /// The committed execution order (indices into the batch).
    pub fn committed_order(&self) -> Vec<TxIdx> {
        self.graph.lock().committed_order().to_vec()
    }

    /// The speculative outcome of every transaction, indexed by batch
    /// position, plus the total and per-transaction latencies (first
    /// execution attempt to speculative commit). A `None` entry means the
    /// transaction never committed speculatively; the deterministic finalize
    /// pass in [`ConcurrentExecutor::preplay`](crate::ce::ConcurrentExecutor::preplay)
    /// re-executes such entries serially.
    pub fn collect_speculative(
        &self,
        n: usize,
    ) -> (Vec<Option<tb_types::ExecOutcome>>, Duration, Vec<Duration>) {
        let graph = self.graph.lock();
        let mut outcomes = vec![None; n];
        let mut total_latency = Duration::ZERO;
        let mut latencies = Vec::with_capacity(n);
        for (idx, node) in graph.iter() {
            if node.status != TxnStatus::Committed {
                continue;
            }
            if let (Some(started), Some(committed)) = (node.started_at, node.committed_at) {
                let latency = committed.duration_since(started);
                total_latency += latency;
                latencies.push(latency);
            }
            if idx < n {
                outcomes[idx] = Some(node.outcome());
            }
        }
        (outcomes, total_latency, latencies)
    }

    /// Assembles the preplay output for the batch: every committed
    /// transaction with its outcome, ordered by commit index, plus the sum
    /// and the individual per-transaction latencies.
    pub fn collect_results(
        &self,
        txs: &[Transaction],
    ) -> (Vec<PreplayedTx>, Duration, Vec<Duration>) {
        let graph = self.graph.lock();
        let mut total_latency = Duration::ZERO;
        let mut latencies = Vec::with_capacity(graph.committed_count());
        let mut preplayed = Vec::with_capacity(graph.committed_count());
        for (idx, node) in graph.iter() {
            if node.status != TxnStatus::Committed {
                continue;
            }
            let order = node.commit_index.expect("committed nodes have an index");
            let outcome = node.outcome();
            if let (Some(started), Some(committed)) = (node.started_at, node.committed_at) {
                let latency = committed.duration_since(started);
                total_latency += latency;
                latencies.push(latency);
            }
            preplayed.push(PreplayedTx::new(txs[idx].clone(), outcome, order));
        }
        preplayed.sort_by_key(|p| p.order);
        (preplayed, total_latency, latencies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_storage::{KvWrite, MemStore};
    use tb_types::{ClientId, ContractCall, SimTime};

    fn tx(id: u64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::Noop,
            4,
            SimTime::ZERO,
        )
    }

    fn key(row: u64) -> Key {
        Key::scratch(row)
    }

    fn setup(store: &MemStore, n: u64) -> (ConcurrencyController<'_>, Vec<Transaction>) {
        let txs: Vec<Transaction> = (0..n).map(tx).collect();
        let cc = ConcurrencyController::new(store);
        cc.register_batch(&txs);
        (cc, txs)
    }

    #[test]
    fn reads_fall_back_to_storage_through_the_root() {
        let store = MemStore::new();
        store.put(key(1), Value::int(42));
        let (cc, _txs) = setup(&store, 1);
        let h = cc.begin(0).unwrap();
        assert_eq!(cc.read(h, key(1)).unwrap(), Value::int(42));
        assert_eq!(cc.read(h, key(9)).unwrap(), Value::None);
        assert_eq!(
            cc.finish(h, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert!(cc.all_committed());
    }

    #[test]
    fn read_observes_uncommitted_write_and_waits_for_it() {
        let store = MemStore::new();
        let (cc, _txs) = setup(&store, 2);
        let writer = cc.begin(0).unwrap();
        let reader = cc.begin(1).unwrap();
        cc.write(writer, key(1), Value::int(7)).unwrap();
        // The reader sees the uncommitted value (read-uncommitted inside the
        // preplay batch) ...
        assert_eq!(cc.read(reader, key(1)).unwrap(), Value::int(7));
        // ... but cannot commit before the writer.
        assert_eq!(
            cc.finish(reader, CallResult::ok(Value::None)),
            FinishStatus::Pending
        );
        assert_eq!(
            cc.finish(writer, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert!(cc.all_committed());
        assert_eq!(cc.committed_order(), vec![0, 1]);
    }

    #[test]
    fn write_write_order_follows_first_write_arrival() {
        let store = MemStore::new();
        let (cc, txs) = setup(&store, 2);
        let a = cc.begin(0).unwrap();
        let b = cc.begin(1).unwrap();
        cc.write(a, key(1), Value::int(1)).unwrap();
        cc.write(b, key(1), Value::int(2)).unwrap();
        cc.finish(b, CallResult::ok(Value::None));
        cc.finish(a, CallResult::ok(Value::None));
        assert!(cc.all_committed());
        assert_eq!(cc.committed_order(), vec![0, 1]);
        let (preplayed, _, _) = cc.collect_results(&txs);
        // Serialized order puts a's write first, so the final value is b's.
        assert_eq!(preplayed[0].tx.id, TxId::new(0));
        assert_eq!(preplayed[1].tx.id, TxId::new(1));
        assert_eq!(
            preplayed[1].outcome.written_value(&key(1)),
            Some(&Value::int(2))
        );
    }

    #[test]
    fn rescheduling_avoids_the_figure_1_abort() {
        // T1: A = B + 1 (reads B, writes A); T2: A = A + 1 (reads A, writes A).
        // T2 reads A before T1 writes it; the CC orders T2 before T1 instead
        // of aborting either transaction.
        let store = MemStore::new();
        store.put(key(10), Value::int(5)); // A
        store.put(key(11), Value::int(8)); // B
        let (cc, _txs) = setup(&store, 2);
        let t1 = cc.begin(0).unwrap();
        let t2 = cc.begin(1).unwrap();

        // T2 starts first and reads A from storage.
        let a_for_t2 = cc.read(t2, key(10)).unwrap().as_int();
        // T1 reads B and writes A.
        let b = cc.read(t1, key(11)).unwrap().as_int();
        cc.write(t1, key(10), Value::int(b + 1)).unwrap();
        // T2 writes A based on its earlier read — no abort is needed because
        // T2 can be serialized before T1.
        cc.write(t2, key(10), Value::int(a_for_t2 + 1)).unwrap();

        assert_eq!(
            cc.finish(t2, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert_eq!(
            cc.finish(t1, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert_eq!(cc.total_aborts(), 0);
        assert_eq!(cc.committed_order(), vec![1, 0]);
    }

    #[test]
    fn rewriting_a_value_read_by_others_cascades_aborts_table1() {
        // Table 1 walk-through: T1 writes D=3, T2 and T3 read it, then T1
        // writes D=5 which invalidates both readers; they re-execute and the
        // final order is [T1, T3, T2].
        let store = MemStore::new();
        store.put(key(0), Value::int(3)); // initial D = 3
        let (cc, txs) = setup(&store, 3);
        let t1 = cc.begin(0).unwrap();
        let t2 = cc.begin(1).unwrap();
        let t3 = cc.begin(2).unwrap();

        // time 1-3: T1 writes D=3; T2 and T3 read D from T1.
        cc.write(t1, key(0), Value::int(3)).unwrap();
        assert_eq!(cc.read(t2, key(0)).unwrap(), Value::int(3));
        assert_eq!(cc.read(t3, key(0)).unwrap(), Value::int(3));
        // time 4: T3 finishes and must wait for T1.
        assert_eq!(
            cc.finish(t3, CallResult::ok(Value::None)),
            FinishStatus::Pending
        );
        // time 5: T1 writes D=5 — T2 and T3 read a stale value and abort.
        cc.write(t1, key(0), Value::int(5)).unwrap();
        let mut aborted = cc.take_aborted();
        aborted.sort_unstable();
        assert_eq!(aborted, vec![1, 2]);
        // time 6: T3 re-executes and now reads D=5 from T1.
        let t3 = cc.begin(2).unwrap();
        assert_eq!(cc.read(t3, key(0)).unwrap(), Value::int(5));
        // time 7-8: T1 commits, then T3 commits.
        assert_eq!(
            cc.finish(t1, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert_eq!(
            cc.finish(t3, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        // time 9-12: T2 re-executes, reads D=5 and writes D=2, then commits.
        let t2 = cc.begin(1).unwrap();
        assert_eq!(cc.read(t2, key(0)).unwrap(), Value::int(5));
        cc.write(t2, key(0), Value::int(2)).unwrap();
        assert_eq!(
            cc.finish(t2, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );

        assert!(cc.all_committed());
        assert_eq!(cc.committed_order(), vec![0, 2, 1]);
        assert_eq!(cc.total_aborts(), 2);
        let (preplayed, _, _) = cc.collect_results(&txs);
        assert_eq!(preplayed.len(), 3);
        assert!(preplayed.iter().all(|p| p.order < 3));
    }

    #[test]
    fn stale_handles_are_rejected_after_an_abort() {
        let store = MemStore::new();
        let (cc, _txs) = setup(&store, 2);
        let t1 = cc.begin(0).unwrap();
        let t2 = cc.begin(1).unwrap();
        cc.write(t1, key(0), Value::int(1)).unwrap();
        assert_eq!(cc.read(t2, key(0)).unwrap(), Value::int(1));
        // T1 rewrites the key: T2 is aborted.
        cc.write(t1, key(0), Value::int(2)).unwrap();
        // The stale handle can no longer be used.
        assert!(cc.read(t2, key(0)).unwrap_err().is_abort());
        assert!(cc.write(t2, key(0), Value::int(9)).unwrap_err().is_abort());
        assert_eq!(
            cc.finish(t2, CallResult::ok(Value::None)),
            FinishStatus::Aborted
        );
        // Re-beginning yields a fresh epoch that works again.
        let t2 = cc.begin(1).unwrap();
        assert_eq!(cc.read(t2, key(0)).unwrap(), Value::int(2));
    }

    #[test]
    fn cyclic_conflict_aborts_the_issuing_transaction() {
        // T1 reads A then writes B; T2 reads B then writes A. Whatever edges
        // exist, one of the two writes closes a cycle and aborts its issuer.
        let store = MemStore::new();
        store.put(key(1), Value::int(1)); // A
        store.put(key(2), Value::int(2)); // B
        let (cc, _txs) = setup(&store, 2);
        let t1 = cc.begin(0).unwrap();
        let t2 = cc.begin(1).unwrap();
        let _ = cc.read(t1, key(1)).unwrap();
        let _ = cc.read(t2, key(2)).unwrap();
        cc.write(t1, key(2), Value::int(20)).unwrap(); // T2 (reader of B) -> T1
        let err = cc.write(t2, key(1), Value::int(10)); // would need T1 -> T2: cycle
        assert!(err.unwrap_err().is_abort());
        // T1 is unaffected and commits; T2 re-executes afterwards.
        assert_eq!(
            cc.finish(t1, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        let t2 = cc.begin(1).unwrap();
        assert_eq!(cc.read(t2, key(2)).unwrap(), Value::int(20));
        cc.write(t2, key(1), Value::int(10)).unwrap();
        assert_eq!(
            cc.finish(t2, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert!(cc.all_committed());
    }

    #[test]
    fn reader_can_be_scheduled_before_an_existing_writer_it_cannot_follow() {
        // Figure 10a-style recovery: the reader walks back to the root value
        // when reading from the latest writer would create a cycle.
        let store = MemStore::new();
        store.put(key(1), Value::int(100)); // A
        store.put(key(2), Value::int(200)); // B
        let (cc, _txs) = setup(&store, 2);
        let t1 = cc.begin(0).unwrap();
        let t3 = cc.begin(1).unwrap();
        // T3 reads A (from root) and writes B.
        assert_eq!(cc.read(t3, key(1)).unwrap(), Value::int(100));
        cc.write(t3, key(2), Value::int(3)).unwrap();
        // T1 writes A: ordered after T3 (reader of A).
        cc.write(t1, key(1), Value::int(5)).unwrap();
        // T1 now reads B. Reading from T3 would require T3 -> T1 ... which
        // already exists, so that is fine — but reading from T3 *and* being
        // ordered before it is impossible. The controller serves the read
        // from T3 (the latest writer) because T3 -> T1 is already the edge
        // direction. The value is T3's uncommitted write.
        assert_eq!(cc.read(t1, key(2)).unwrap(), Value::int(3));
        assert_eq!(
            cc.finish(t1, CallResult::ok(Value::None)),
            FinishStatus::Pending
        );
        assert_eq!(
            cc.finish(t3, CallResult::ok(Value::None)),
            FinishStatus::Committed
        );
        assert!(cc.all_committed());
        assert_eq!(cc.committed_order(), vec![1, 0]);
        assert_eq!(cc.total_aborts(), 0);
    }

    #[test]
    fn collect_results_orders_by_commit_index() {
        let store = MemStore::new();
        let (cc, txs) = setup(&store, 3);
        for idx in [2usize, 0, 1] {
            let h = cc.begin(idx).unwrap();
            cc.write(h, key(idx as u64 + 100), Value::int(idx as i64))
                .unwrap();
            cc.finish(h, CallResult::ok(Value::int(idx as i64)));
        }
        let (preplayed, _, _) = cc.collect_results(&txs);
        assert_eq!(preplayed.len(), 3);
        assert_eq!(preplayed[0].tx.id, TxId::new(2));
        assert_eq!(preplayed[0].order, 0);
        assert_eq!(preplayed[2].order, 2);
    }

    #[test]
    fn begin_refuses_transactions_in_flight_or_done() {
        let store = MemStore::new();
        let (cc, _txs) = setup(&store, 1);
        let h = cc.begin(0).unwrap();
        assert!(cc.begin(0).is_none(), "active transactions cannot restart");
        cc.finish(h, CallResult::ok(Value::None));
        assert!(
            cc.begin(0).is_none(),
            "committed transactions cannot restart"
        );
    }
}
