//! 2PL-No-Wait (paper Section 11.1).
//!
//! Executors acquire read/write locks through a central lock table as they
//! touch keys. If a lock cannot be granted immediately, the transaction
//! releases everything it holds and re-executes from scratch (the "no wait"
//! policy, which trades aborts for deadlock freedom). Writes are buffered and
//! applied to the store at commit time, before the locks are released.

use crate::batch::{BatchResult, ExecutorKind};
use crate::traits::{synthetic_work, BatchExecutor};
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tb_contracts::{execute_call, ExecError, StateAccess, TrackingState};
use tb_storage::{KvRead, KvWrite, MemStore};
use tb_types::{CeConfig, Key, PreplayedTx, Transaction, Value};

/// Lock modes in the central lock table.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LockState {
    /// Held in shared mode by the given transactions.
    Shared(HashSet<usize>),
    /// Held exclusively by one transaction.
    Exclusive(usize),
}

/// The central lock table.
#[derive(Debug, Default)]
struct LockTable {
    locks: Mutex<HashMap<Key, LockState>>,
}

impl LockTable {
    fn new() -> Self {
        LockTable::default()
    }

    /// Tries to acquire a shared lock for `owner`. Returns false on conflict.
    fn lock_shared(&self, key: Key, owner: usize) -> bool {
        let mut locks = self.locks.lock();
        match locks.get_mut(&key) {
            None => {
                locks.insert(key, LockState::Shared(HashSet::from([owner])));
                true
            }
            Some(LockState::Shared(holders)) => {
                holders.insert(owner);
                true
            }
            Some(LockState::Exclusive(holder)) => *holder == owner,
        }
    }

    /// Tries to acquire (or upgrade to) an exclusive lock for `owner`.
    fn lock_exclusive(&self, key: Key, owner: usize) -> bool {
        let mut locks = self.locks.lock();
        match locks.get_mut(&key) {
            None => {
                locks.insert(key, LockState::Exclusive(owner));
                true
            }
            Some(LockState::Exclusive(holder)) => *holder == owner,
            Some(LockState::Shared(holders)) => {
                if holders.len() == 1 && holders.contains(&owner) {
                    locks.insert(key, LockState::Exclusive(owner));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Releases every lock held by `owner`.
    fn release_all(&self, owner: usize) {
        let mut locks = self.locks.lock();
        locks.retain(|_, state| match state {
            LockState::Exclusive(holder) => *holder != owner,
            LockState::Shared(holders) => {
                holders.remove(&owner);
                !holders.is_empty()
            }
        });
    }
}

/// The 2PL-No-Wait baseline executor.
#[derive(Clone, Debug)]
pub struct TwoPlNoWaitExecutor {
    config: CeConfig,
}

impl TwoPlNoWaitExecutor {
    /// Creates a 2PL-No-Wait executor.
    pub fn new(config: CeConfig) -> Self {
        TwoPlNoWaitExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CeConfig {
        &self.config
    }
}

impl Default for TwoPlNoWaitExecutor {
    fn default() -> Self {
        TwoPlNoWaitExecutor::new(CeConfig::default())
    }
}

/// Per-attempt session: acquires locks as keys are touched.
struct TwoPlSession<'a> {
    store: &'a MemStore,
    table: &'a LockTable,
    owner: usize,
    writes: HashMap<Key, Value>,
    op_cost: u64,
}

impl StateAccess for TwoPlSession<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        if let Some(local) = self.writes.get(&key) {
            return Ok(local.clone());
        }
        if !self.table.lock_shared(key, self.owner) {
            return Err(ExecError::aborted(format!("read lock on {key} denied")));
        }
        Ok(self.store.get(&key))
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        if !self.table.lock_exclusive(key, self.owner) {
            return Err(ExecError::aborted(format!("write lock on {key} denied")));
        }
        self.writes.insert(key, value);
        Ok(())
    }
}

impl BatchExecutor for TwoPlNoWaitExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::TwoPlNoWait
    }

    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult {
        let started = Instant::now();
        if txs.is_empty() {
            return BatchResult::default();
        }
        let queue: SegQueue<usize> = SegQueue::new();
        for idx in 0..txs.len() {
            queue.push(idx);
        }
        let table = LockTable::new();
        let reexecutions = AtomicU64::new(0);
        let commit_counter = AtomicU64::new(0);
        let slots: Mutex<Vec<Option<(PreplayedTx, Duration)>>> =
            Mutex::new((0..txs.len()).map(|_| None).collect());
        let op_cost = self.config.synthetic_op_cost_ns;
        let workers = self.config.executors.max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(idx) = queue.pop() {
                        let tx = &txs[idx];
                        let tx_started = Instant::now();
                        let mut attempts = 0u64;
                        loop {
                            attempts += 1;
                            let session = TwoPlSession {
                                store,
                                table: &table,
                                owner: idx,
                                writes: HashMap::new(),
                                op_cost,
                            };
                            let mut tracking = TrackingState::new(session);
                            match execute_call(&tx.call, &mut tracking) {
                                Ok(result) => {
                                    let (mut outcome, session) = tracking.finish();
                                    outcome.return_value = result.return_value;
                                    outcome.logically_aborted = result.logically_aborted;
                                    // Commit: apply buffered writes, then
                                    // release the locks.
                                    for (key, value) in &session.writes {
                                        store.put(*key, value.clone());
                                    }
                                    table.release_all(idx);
                                    let order =
                                        commit_counter.fetch_add(1, Ordering::Relaxed) as u32;
                                    slots.lock()[idx] = Some((
                                        PreplayedTx::new(tx.clone(), outcome, order),
                                        tx_started.elapsed(),
                                    ));
                                    if attempts > 1 {
                                        reexecutions.fetch_add(attempts - 1, Ordering::Relaxed);
                                    }
                                    break;
                                }
                                Err(err) => {
                                    debug_assert!(err.is_abort());
                                    // No-wait: drop every lock and retry.
                                    table.release_all(idx);
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
        });

        let slots = slots.into_inner();
        let mut preplayed = Vec::with_capacity(txs.len());
        let mut total_latency = Duration::ZERO;
        let mut latencies = Vec::with_capacity(txs.len());
        let mut logical_rejections = 0;
        for slot in slots.into_iter().flatten() {
            total_latency += slot.1;
            latencies.push(slot.1);
            if slot.0.outcome.logically_aborted {
                logical_rejections += 1;
            }
            preplayed.push(slot.0);
        }
        preplayed.sort_by_key(|p| p.order);
        BatchResult {
            preplayed,
            reexecutions: reexecutions.into_inner(),
            logical_rejections,
            elapsed: started.elapsed(),
            total_latency,
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
    use tb_types::{ClientId, ContractCall, SimTime, SmallBankProcedure, TxId};

    fn payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            1,
            SimTime::ZERO,
        )
    }

    fn two_pl(executors: usize) -> TwoPlNoWaitExecutor {
        TwoPlNoWaitExecutor::new(CeConfig::new(executors, 512).without_synthetic_cost())
    }

    fn funded_store(accounts: u64) -> MemStore {
        let store = MemStore::new();
        store.load(tb_workload::initial_smallbank_state(
            accounts,
            SMALLBANK_DEFAULT_BALANCE,
        ));
        store
    }

    #[test]
    fn lock_table_grants_and_blocks() {
        let table = LockTable::new();
        let k = Key::scratch(1);
        assert!(table.lock_shared(k, 0));
        assert!(table.lock_shared(k, 1), "shared locks are compatible");
        assert!(!table.lock_exclusive(k, 2), "exclusive blocked by readers");
        table.release_all(1);
        assert!(!table.lock_exclusive(k, 2), "still blocked by reader 0");
        table.release_all(0);
        assert!(table.lock_exclusive(k, 2));
        assert!(!table.lock_shared(k, 0), "shared blocked by writer");
        assert!(table.lock_exclusive(k, 2), "re-acquire by owner is fine");
        table.release_all(2);
        assert!(table.lock_shared(k, 0));
    }

    #[test]
    fn upgrade_from_sole_shared_holder_succeeds() {
        let table = LockTable::new();
        let k = Key::scratch(9);
        assert!(table.lock_shared(k, 5));
        assert!(table.lock_exclusive(k, 5));
        assert!(!table.lock_shared(k, 6));
    }

    #[test]
    fn commits_everything_and_conserves_money_under_contention() {
        let store = funded_store(2);
        let initial = store.stats().int_sum;
        let txs: Vec<Transaction> = (0..64).map(|i| payment(i, 0, 1, 1)).collect();
        let result = two_pl(8).execute_batch(&txs, &store);
        assert_eq!(result.committed(), 64);
        assert_eq!(store.stats().int_sum, initial);
        assert_eq!(
            store.get(&Key::checking(0)),
            Value::int(SMALLBANK_DEFAULT_BALANCE - 64)
        );
    }

    #[test]
    fn no_contention_means_no_reexecutions() {
        let store = funded_store(64);
        let txs: Vec<Transaction> = (0..32).map(|i| payment(i, i * 2, i * 2 + 1, 1)).collect();
        let result = two_pl(4).execute_batch(&txs, &store);
        assert_eq!(result.reexecutions, 0);
        assert_eq!(result.committed(), 32);
    }

    #[test]
    fn empty_batch_short_circuits() {
        let store = funded_store(1);
        let result = two_pl(4).execute_batch(&[], &store);
        assert_eq!(result.committed(), 0);
    }

    /// Deterministic version of the Figure 11 abort comparison.
    ///
    /// The wall-clock engines interleave however the OS schedules their
    /// workers, which on a single-core machine makes abort counts depend on
    /// preemption luck. This test removes the scheduler: it drives the same
    /// hot-key read-modify-write workload through the concurrency controller
    /// and through the no-wait lock table under one fixed round-robin
    /// interleaving of 8 logical executors, and checks the paper's claim —
    /// the CC reschedules conflicts that no-wait locking can only abort.
    #[test]
    fn deterministic_interleaving_ce_reschedules_where_no_wait_locking_aborts() {
        use crate::cc::controller::{ConcurrencyController, FinishStatus};
        use std::collections::VecDeque;
        use tb_storage::MemStore;

        const N: usize = 64;
        const SLOTS: usize = 8;
        let hot = Key::scratch(0);
        // Transaction i: read-modify-write of the hot key plus of a private
        // key — the contended SmallBank SendPayment access pattern.
        let script = |i: usize| {
            [
                (false, hot),
                (false, Key::scratch(1 + i as u64)),
                (true, hot),
                (true, Key::scratch(1 + i as u64)),
            ]
        };

        // --- concurrent executor under round-robin interleaving ---
        let store = MemStore::new();
        let txs: Vec<Transaction> = (0..N)
            .map(|i| {
                Transaction::new(
                    TxId::new(i as u64),
                    ClientId::new(0),
                    ContractCall::Noop,
                    4,
                    SimTime::ZERO,
                )
            })
            .collect();
        let cc = ConcurrencyController::new(&store);
        cc.register_batch(&txs);
        let mut queue: VecDeque<usize> = (0..N).collect();
        let mut slots: Vec<Option<(usize, crate::cc::controller::TxHandle, usize)>> =
            (0..SLOTS).map(|_| None).collect();
        let mut steps = 0u64;
        while !cc.all_committed() {
            steps += 1;
            assert!(steps < 100_000, "interleaved CC run did not converge");
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    if let Some(idx) = queue.pop_front() {
                        // `begin` refuses transactions that are committed or
                        // already running in another slot (stale duplicates
                        // from the abort queue).
                        if let Some(handle) = cc.begin(idx) {
                            *slot = Some((idx, handle, 0));
                        }
                    }
                }
                let Some((idx, handle, pc)) = slot else {
                    continue;
                };
                let (is_write, key) = script(*idx)[*pc];
                let outcome = if is_write {
                    cc.write(*handle, key, Value::int(*idx as i64)).map(|_| ())
                } else {
                    cc.read(*handle, key).map(|_| ())
                };
                match outcome {
                    Ok(()) => {
                        *pc += 1;
                        if *pc == script(*idx).len() {
                            if cc.finish(*handle, tb_contracts::CallResult::ok(Value::None))
                                == FinishStatus::Aborted
                            {
                                queue.push_back(*idx);
                            }
                            *slot = None;
                        }
                    }
                    Err(_) => {
                        queue.push_back(*idx);
                        *slot = None;
                    }
                }
            }
            for idx in cc.take_aborted() {
                queue.push_back(idx);
            }
        }
        let cc_aborts = cc.total_aborts();

        // --- no-wait locking under the same interleaving ---
        let table = LockTable::new();
        let mut queue: VecDeque<usize> = (0..N).collect();
        let mut slots: Vec<Option<(usize, usize)>> = (0..SLOTS).map(|_| None).collect();
        let mut committed = 0usize;
        let mut lock_aborts = 0u64;
        let mut steps = 0u64;
        while committed < N {
            steps += 1;
            assert!(steps < 100_000, "interleaved 2PL run did not converge");
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    if let Some(idx) = queue.pop_front() {
                        *slot = Some((idx, 0));
                    }
                }
                let Some((idx, pc)) = slot else {
                    continue;
                };
                let (is_write, key) = script(*idx)[*pc];
                let granted = if is_write {
                    table.lock_exclusive(key, *idx)
                } else {
                    table.lock_shared(key, *idx)
                };
                if granted {
                    *pc += 1;
                    if *pc == script(*idx).len() {
                        table.release_all(*idx);
                        committed += 1;
                        *slot = None;
                    }
                } else {
                    // No-wait: drop all locks and start over later.
                    table.release_all(*idx);
                    lock_aborts += 1;
                    queue.push_back(*idx);
                    *slot = None;
                }
            }
        }

        assert!(
            cc_aborts < lock_aborts,
            "the CC must reschedule conflicts no-wait locking aborts: \
             CC {cc_aborts} aborts vs no-wait {lock_aborts}"
        );
    }
}
