//! Serial in-order execution.
//!
//! This is what a DAG protocol with sequential post-consensus execution
//! (plain Tusk in the evaluation) does: transactions are executed one after
//! the other in their consensus order. It also serves as the reference
//! implementation the property tests compare the concurrent engines against.

use crate::batch::{BatchResult, ExecutorKind};
use crate::traits::{synthetic_work, BatchExecutor};
use std::time::{Duration, Instant};
use tb_contracts::{execute_call, ExecError, StateAccess, TrackingState};
use tb_storage::{KvRead, KvWrite, MemStore};
use tb_types::{CeConfig, Key, PreplayedTx, Transaction, Value};

/// Executes transactions serially, applying each transaction's writes before
/// the next one starts.
#[derive(Clone, Debug, Default)]
pub struct SerialExecutor {
    /// Synthetic per-operation cost, matching the other engines so that
    /// comparisons are apples-to-apples.
    pub op_cost_ns: u64,
}

impl SerialExecutor {
    /// Creates a serial executor with no synthetic per-operation cost.
    pub fn new() -> Self {
        SerialExecutor { op_cost_ns: 0 }
    }

    /// Creates a serial executor matching the costs of a [`CeConfig`].
    pub fn from_config(config: &CeConfig) -> Self {
        SerialExecutor {
            op_cost_ns: config.synthetic_op_cost_ns,
        }
    }
}

/// Session reading from / writing straight to the store.
struct SerialSession<'a> {
    store: &'a MemStore,
    op_cost: u64,
}

impl StateAccess for SerialSession<'_> {
    fn read(&mut self, key: Key) -> Result<Value, ExecError> {
        synthetic_work(self.op_cost);
        Ok(self.store.get(&key))
    }

    fn write(&mut self, key: Key, value: Value) -> Result<(), ExecError> {
        synthetic_work(self.op_cost);
        self.store.put(key, value);
        Ok(())
    }
}

impl BatchExecutor for SerialExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Serial
    }

    fn execute_batch(&self, txs: &[Transaction], store: &MemStore) -> BatchResult {
        let started = Instant::now();
        let mut preplayed = Vec::with_capacity(txs.len());
        let mut total_latency = Duration::ZERO;
        let mut latencies = Vec::with_capacity(txs.len());
        let mut logical_rejections = 0;
        for (order, tx) in txs.iter().enumerate() {
            let tx_started = Instant::now();
            let session = SerialSession {
                store,
                op_cost: self.op_cost_ns,
            };
            let mut tracking = TrackingState::new(session);
            let result =
                execute_call(&tx.call, &mut tracking).expect("serial execution never aborts");
            let (mut outcome, _) = tracking.finish();
            outcome.return_value = result.return_value;
            outcome.logically_aborted = result.logically_aborted;
            if outcome.logically_aborted {
                logical_rejections += 1;
            }
            let latency = tx_started.elapsed();
            total_latency += latency;
            latencies.push(latency);
            preplayed.push(PreplayedTx::new(tx.clone(), outcome, order as u32));
        }
        BatchResult {
            preplayed,
            reexecutions: 0,
            logical_rejections,
            elapsed: started.elapsed(),
            total_latency,
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::{ClientId, ContractCall, SimTime, SmallBankProcedure, TxId};

    fn payment(id: u64, from: u64, to: u64, amount: i64) -> Transaction {
        Transaction::new(
            TxId::new(id),
            ClientId::new(0),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount }),
            1,
            SimTime::ZERO,
        )
    }

    #[test]
    fn executes_in_input_order_and_applies_writes() {
        let store = MemStore::new();
        store.put(Key::checking(0), Value::int(100));
        store.put(Key::checking(1), Value::int(0));
        let txs = vec![payment(1, 0, 1, 60), payment(2, 0, 1, 60)];
        let result = SerialExecutor::new().execute_batch(&txs, &store);
        assert_eq!(result.committed(), 2);
        // The second payment sees only 40 left and is rejected.
        assert_eq!(result.logical_rejections, 1);
        assert_eq!(store.get(&Key::checking(0)), Value::int(40));
        assert_eq!(store.get(&Key::checking(1)), Value::int(60));
        assert_eq!(result.preplayed[0].order, 0);
        assert_eq!(result.preplayed[1].order, 1);
        assert_eq!(result.reexecutions, 0);
    }

    #[test]
    fn tracks_read_and_write_sets() {
        let store = MemStore::new();
        store.put(Key::checking(3), Value::int(10));
        let txs = vec![payment(1, 3, 4, 5)];
        let result = SerialExecutor::new().execute_batch(&txs, &store);
        let outcome = &result.preplayed[0].outcome;
        assert_eq!(outcome.read_value(&Key::checking(3)), Some(&Value::int(10)));
        assert_eq!(
            outcome.written_value(&Key::checking(3)),
            Some(&Value::int(5))
        );
        assert_eq!(
            outcome.written_value(&Key::checking(4)),
            Some(&Value::int(5))
        );
    }
}
