//! Transaction execution engines for Thunderbolt.
//!
//! This crate implements the paper's **Concurrent Executor** (`CE`,
//! Sections 7–8): a pool of executor workers that run contracts against a
//! central **concurrency controller** (`CC`) which tracks all accesses in a
//! runtime dependency graph, lets transactions read uncommitted data, and
//! reschedules instead of aborting whenever a valid serialization exists.
//! The CC needs no prior knowledge of read/write sets — they are *outputs*
//! of the preplay, shipped in the block for later validation.
//!
//! It also implements the evaluation baselines (Section 11.1):
//!
//! * [`occ`] — optimistic concurrency control with a central verifier,
//! * [`two_pl`] — 2PL-No-Wait with a central lock table,
//! * [`serial`] — in-order execution (what Tusk does after consensus),
//!
//! and the post-consensus [`validation`] pass that rebuilds a dependency
//! graph from the read/write sets declared in a block and re-executes the
//! transactions in parallel to check the preplay results (Section 4).

// `deny` rather than `forbid`: the worker pool is the single sanctioned
// exception (lifetime erasure for borrowed tasks, like any scoped pool);
// everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cc;
pub mod ce;
pub mod occ;
#[allow(unsafe_code)]
pub mod pool;
pub mod serial;
pub mod traits;
pub mod two_pl;
pub mod validation;

pub use batch::{BatchResult, ExecutorKind};
pub use cc::controller::{ConcurrencyController, FinishStatus};
pub use ce::ConcurrentExecutor;
pub use occ::OccExecutor;
pub use pool::{Backoff, WorkerPool};
pub use serial::SerialExecutor;
pub use traits::{available_cores, effective_workers, strict_figures_enabled, BatchExecutor};
pub use two_pl::TwoPlNoWaitExecutor;
pub use validation::{validate_block, ValidationConfig, ValidationReport};
