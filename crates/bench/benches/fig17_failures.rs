//! Criterion bench for Figure 17: healthy cluster vs f crashed replicas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{Scale, SystemRun};
use tb_core::ExecutionMode;

fn small_scale() -> Scale {
    let mut scale = Scale::quick();
    scale.system_rounds = 8;
    scale.system_batch = 50;
    scale.system_executors = 2;
    scale.system_accounts = 200;
    scale.op_cost_ns = 0;
    scale
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_failures");
    group.sample_size(10);
    for crashed in [0u32, 1] {
        group.bench_with_input(
            BenchmarkId::new("Thunderbolt", format!("crashed{crashed}")),
            &crashed,
            |b, &crashed| {
                b.iter(|| {
                    let mut run = SystemRun::new(ExecutionMode::Thunderbolt, 4, small_scale());
                    run.crashed = crashed;
                    run.cross_shard = 0.2;
                    run.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
