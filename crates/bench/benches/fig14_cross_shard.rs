//! Criterion bench for Figure 14: single-shard-only vs all-cross-shard load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{Scale, SystemRun};
use tb_core::ExecutionMode;

fn small_scale() -> Scale {
    let mut scale = Scale::quick();
    scale.system_rounds = 6;
    scale.system_batch = 50;
    scale.system_executors = 2;
    scale.system_accounts = 200;
    scale.op_cost_ns = 0;
    scale
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_cross_shard");
    group.sample_size(10);
    for cross in [0.0f64, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("Thunderbolt", format!("P{:.0}%", cross * 100.0)),
            &cross,
            |b, &cross| {
                b.iter(|| {
                    let mut run = SystemRun::new(ExecutionMode::Thunderbolt, 4, small_scale());
                    run.cross_shard = cross;
                    run.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
