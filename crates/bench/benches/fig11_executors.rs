//! Criterion bench for Figure 11: one preplay batch per engine on the
//! read-write balanced SmallBank workload (θ = 0.85, Pr = 0.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{run_executor_cell, Engine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_executors");
    group.sample_size(10);
    for engine in Engine::ALL {
        for executors in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), executors),
                &executors,
                |b, &executors| {
                    b.iter(|| run_executor_cell(engine, executors, 300, 0.85, 0.5, 1_000, 300, 0))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
