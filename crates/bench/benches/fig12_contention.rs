//! Criterion bench for Figure 12: the skew sweep at its two extremes
//! (θ = 0.75 vs θ = 0.9) for the concurrent executor and OCC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{run_executor_cell, Engine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_contention");
    group.sample_size(10);
    for engine in [Engine::Thunderbolt, Engine::Occ] {
        for theta in [0.75f64, 0.9] {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), format!("theta{theta}")),
                &theta,
                |b, &theta| b.iter(|| run_executor_cell(engine, 8, 300, theta, 0.5, 1_000, 300, 0)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
