//! Criterion bench for Figure 15: frequent vs rare reconfiguration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{Scale, SystemRun};
use tb_core::ExecutionMode;
use tb_types::ReconfigConfig;

fn small_scale() -> Scale {
    let mut scale = Scale::quick();
    scale.system_rounds = 12;
    scale.system_batch = 50;
    scale.system_executors = 2;
    scale.system_accounts = 200;
    scale.op_cost_ns = 0;
    scale
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_reconfiguration");
    group.sample_size(10);
    for k_prime in [4u64, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("Thunderbolt", format!("Kprime{k_prime}")),
            &k_prime,
            |b, &k_prime| {
                b.iter(|| {
                    let mut run = SystemRun::new(ExecutionMode::Thunderbolt, 4, small_scale());
                    run.reconfig = ReconfigConfig::new(k_prime - 1, k_prime);
                    run.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
