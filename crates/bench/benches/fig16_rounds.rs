//! Criterion bench for Figure 16: a run with periodic reconfiguration,
//! measuring that per-round commit progress is sustained.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::{Scale, SystemRun};
use tb_core::ExecutionMode;
use tb_types::ReconfigConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_rounds");
    group.sample_size(10);
    group.bench_function("Thunderbolt_Kprime6_20rounds", |b| {
        b.iter(|| {
            let mut scale = Scale::quick();
            scale.system_rounds = 20;
            scale.system_batch = 50;
            scale.system_executors = 2;
            scale.system_accounts = 200;
            scale.op_cost_ns = 0;
            let mut run = SystemRun::new(ExecutionMode::Thunderbolt, 4, scale);
            run.reconfig = ReconfigConfig::new(5, 6);
            run.run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
