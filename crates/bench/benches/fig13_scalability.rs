//! Criterion bench for Figure 13: a small LAN cluster per system variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tb_bench::{Scale, SystemRun};
use tb_core::ExecutionMode;

fn small_scale() -> Scale {
    let mut scale = Scale::quick();
    scale.system_rounds = 6;
    scale.system_batch = 50;
    scale.system_executors = 2;
    scale.system_accounts = 200;
    scale.op_cost_ns = 0;
    scale
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_scalability");
    group.sample_size(10);
    for mode in [
        ExecutionMode::Thunderbolt,
        ExecutionMode::ThunderboltOcc,
        ExecutionMode::Tusk,
    ] {
        group.bench_with_input(BenchmarkId::new(mode.label(), 4), &mode, |b, &mode| {
            b.iter(|| SystemRun::new(mode, 4, small_scale()).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
