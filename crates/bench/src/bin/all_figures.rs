//! Runs every figure of the evaluation in sequence.
//!
//! `cargo run --release -p tb-bench --bin all_figures`
//! (set `TB_BENCH_FULL=1` for paper-scale parameters).

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — full evaluation sweep (scale: {scale:?})\n");
    let _ = tb_bench::figures::run_fig11(scale);
    let _ = tb_bench::figures::run_fig12(scale);
    let _ = tb_bench::figures::run_fig13(scale);
    let _ = tb_bench::figures::run_fig14(scale);
    let _ = tb_bench::figures::run_fig15(scale);
    let _ = tb_bench::figures::run_fig16(scale);
    let _ = tb_bench::figures::run_fig17(scale);
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured comparison.");
}
