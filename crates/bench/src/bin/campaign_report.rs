//! Runs the chaos campaign and writes its machine-readable report.
//!
//! ```text
//! cargo run --release -p tb-bench --bin campaign_report [output-path]
//! ```
//!
//! Drives every adversarial scenario of the default campaign — Byzantine
//! proposers, healing partitions, WAN tails, crashes under reconfiguration,
//! a long soak — with machine-checked safety/liveness invariants after each
//! run, and writes `CAMPAIGN_report.json` (or the given path). Scale is
//! controlled by `TB_BENCH_SMOKE=1` (CI chaos-smoke) or left at the quick
//! profile. The schema is documented in `docs/PERF.md` and the scenarios in
//! `docs/CHAOS.md`.
//!
//! Exits non-zero if any scenario fails an invariant, so CI can gate on a
//! broken safety or liveness property.

use tb_bench::report::generate_campaigns;
use tb_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CAMPAIGN_report.json".to_string());
    eprintln!(
        "campaign_report: scale={} cores={} -> {out_path}",
        scale.label(),
        tb_executor::available_cores()
    );

    let report = generate_campaigns(scale);

    let json = tb_bench::to_json(&report);
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("campaign_report: cannot write {out_path}: {err}");
        std::process::exit(1);
    }

    // Human-readable recap on stdout; the JSON on disk is the interface.
    println!(
        "{:<26} {:<6} {:>10} {:>9} {:>9} {:>9} {:>8} {:>12}",
        "scenario", "pass", "committed", "invalid", "dropped", "reconfig", "faults", "tps"
    );
    for row in &report.campaigns {
        println!(
            "{:<26} {:<6} {:>10} {:>9} {:>9} {:>9} {:>5}/{:<2} {:>12.0}",
            row.scenario,
            if row.passed { "ok" } else { "FAIL" },
            row.committed_txs,
            row.invalid_blocks,
            row.msgs_dropped,
            row.reconfigurations,
            row.faults_applied,
            row.faults_unapplied,
            row.throughput_tps,
        );
        for failure in &row.failures {
            println!("    FAILED: {failure}");
        }
    }

    if let Err(reason) = report.validate() {
        eprintln!("campaign_report: INVALID report: {reason}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path} (schema v{})", report.schema_version);
}
