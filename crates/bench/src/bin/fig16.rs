//! Regenerates Figure 16: average commit runtime per window of rounds while
//! the system reconfigures periodically (K' = 300 in the paper).
//!
//! `cargo run --release -p tb-bench --bin fig16`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 16 (scale: {scale:?})");
    let _ = tb_bench::figures::run_fig16(scale);
    println!("\nPaper shape: per-round runtime stays flat (~0.07-0.1s) across the run —");
    println!("the reconfigurations never stall commit progress.");
}
