//! Regenerates Figure 12: throughput/latency while sweeping the Zipfian skew
//! θ (a, b) and the read fraction Pr (c, d).
//!
//! `cargo run --release -p tb-bench --bin fig12`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 12 (scale: {scale:?})");
    let rows = tb_bench::figures::run_fig12(scale);
    println!("\nPaper shape: at θ = 0.75 Thunderbolt and OCC are comparable; as θ grows");
    println!("to 0.9 OCC drops sharply while Thunderbolt stays ahead. With Pr = 1 all");
    println!("engines are similar; more writes favour Thunderbolt over OCC and 2PL.");
    println!("\nJSON: {}", tb_bench::to_json(&rows));
}
