//! Regenerates Figure 17: throughput/latency with f crashed replicas while
//! the cross-shard ratio grows (16 replicas).
//!
//! `cargo run --release -p tb-bench --bin fig17`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 17 (scale: {scale:?})");
    let _ = tb_bench::figures::run_fig17(scale);
    println!("\nPaper shape: with f=1 or f=2 crashed replicas throughput drops moderately");
    println!("(78K/66K tps at P=0 vs 100K healthy) but latency stays stable thanks to");
    println!("the DAG's leader rotation.");
}
