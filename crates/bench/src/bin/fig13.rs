//! Regenerates Figure 13: system scalability (8..64 replicas, LAN and WAN)
//! for Thunderbolt, Thunderbolt-OCC and Tusk, plus the 50x headline speedup.
//!
//! `cargo run --release -p tb-bench --bin fig13`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 13 (scale: {scale:?})");
    let _ = tb_bench::figures::run_fig13(scale);
    println!("\nPaper shape: Thunderbolt reaches ~500K tps at 64 replicas vs ~11K tps for");
    println!("Tusk (50x); Thunderbolt-OCC trails Thunderbolt at scale; WAN latencies");
    println!("shrink the latency gap because network delay dominates.");
}
