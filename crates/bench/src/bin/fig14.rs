//! Regenerates Figure 14: throughput/latency as the cross-shard transaction
//! ratio grows (16 replicas).
//!
//! `cargo run --release -p tb-bench --bin fig14`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 14 (scale: {scale:?})");
    let _ = tb_bench::figures::run_fig14(scale);
    println!("\nPaper shape: both Thunderbolt variants decline as P grows; Thunderbolt");
    println!("stays well above Thunderbolt-OCC at moderate P (64K vs 16K tps at P=8%)");
    println!("and still beats Tusk when every transaction is cross-shard.");
}
