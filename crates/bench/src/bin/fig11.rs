//! Regenerates Figure 11: CE vs OCC vs 2PL-No-Wait while sweeping the number
//! of executors (read-write balanced and update-only workloads).
//!
//! `cargo run --release -p tb-bench --bin fig11` (set `TB_BENCH_FULL=1` for
//! paper-scale parameters).

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 11 (scale: {scale:?})");
    let rows = tb_bench::figures::run_fig11(scale);
    println!("\nPaper shape: Thunderbolt and OCC keep scaling past 8 executors while");
    println!("2PL-No-Wait degrades; Thunderbolt has the lowest re-execution count");
    println!("(~50% of OCC, ~10% of 2PL-No-Wait).");
    println!("\nJSON: {}", tb_bench::to_json(&rows));
}
