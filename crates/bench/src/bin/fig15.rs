//! Regenerates Figure 15: throughput/latency for different reconfiguration
//! periods K' (8 replicas).
//!
//! `cargo run --release -p tb-bench --bin fig15`

fn main() {
    let scale = tb_bench::Scale::from_env();
    println!("Thunderbolt reproduction — Figure 15 (scale: {scale:?})");
    let _ = tb_bench::figures::run_fig15(scale);
    println!("\nPaper shape: very small K' (frequent DAG transitions) costs throughput;");
    println!("from K' >= 1000 the system is stable and latency improves slightly.");
}
