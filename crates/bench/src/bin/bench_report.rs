//! Generates the machine-readable perf-regression report.
//!
//! ```text
//! cargo run --release -p tb-bench --bin bench_report [output-path]
//! ```
//!
//! Runs every executor engine (Thunderbolt CE, OCC, 2PL-No-Wait, Serial)
//! and the cluster scenarios under fixed seeds, validates the result and
//! writes `BENCH_report.json` (or the given path). Scale is controlled by
//! `TB_BENCH_SMOKE=1` (CI perf-smoke), `TB_BENCH_FULL=1` (paper scale) or
//! neither (quick). The schema is documented in `docs/PERF.md`.
//!
//! Exits non-zero if the report fails its structural validation, so CI can
//! gate on malformed or empty output.

use tb_bench::report::{generate, generate_real_net};
use tb_bench::Scale;

fn main() {
    // Node-image dispatch MUST come first: the real-net scenarios re-execute
    // this binary as cluster node processes (TB_NODE_SPEC set), and a child
    // that fell through here would run the whole benchmark suite recursively.
    if tb_launcher::maybe_run_node_from_env() {
        return;
    }

    let scale = Scale::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_report.json".to_string());
    eprintln!(
        "bench_report: scale={} cores={} -> {out_path}",
        scale.label(),
        tb_executor::available_cores()
    );

    let mut report = generate(scale);
    match generate_real_net(scale) {
        Ok(rows) => report.real_net = rows,
        Err(reason) => {
            eprintln!("bench_report: real-net scenarios failed: {reason}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = report.validate() {
        eprintln!("bench_report: INVALID report: {reason}");
        std::process::exit(1);
    }
    // Silent-zero pathology probe (warn-only): a pipeline counter that
    // rounds to zero on *every* scenario usually means the machinery behind
    // it went dead — exactly how `coalesced_batches: 0` shipped unnoticed in
    // three consecutive baselines before ROADMAP item 2 was fixed.
    for field in report.silent_zero_counters() {
        eprintln!(
            "bench_report: WARNING: {field} rounds to zero across all probed \
             scenarios — a stage or counter may be dead (see docs/PIPELINE.md)"
        );
    }

    let json = tb_bench::to_json(&report);
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("bench_report: cannot write {out_path}: {err}");
        std::process::exit(1);
    }

    // Human-readable recap on stdout; the JSON on disk is the interface.
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "engine", "tps", "p50(s)", "p99(s)", "aborts"
    );
    for row in &report.engines {
        println!(
            "{:<14} {:>12.0} {:>12.6} {:>12.6} {:>10}",
            row.engine, row.throughput_tps, row.latency_p50_s, row.latency_p99_s, row.aborts
        );
    }
    println!(
        "\n{:<24} {:<10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "scenario",
        "workload",
        "tps",
        "p50(s)",
        "p99(s)",
        "val%",
        "apply%",
        "exec%",
        "coal",
        "applies"
    );
    for row in &report.clusters {
        println!(
            "{:<24} {:<10} {:>12.0} {:>12.6} {:>12.6} {:>8.1}% {:>8.1}% {:>8.1}% {:>7} {:>7}",
            row.scenario,
            row.workload,
            row.throughput_tps,
            row.latency_p50_s,
            row.latency_p99_s,
            row.pipeline.validate_share * 100.0,
            row.pipeline.apply_share * 100.0,
            row.pipeline.execute_share * 100.0,
            row.pipeline.coalesced_batches,
            row.pipeline.apply_calls,
        );
    }
    println!(
        "\n{:<28} {:<10} {:>12} {:>12} {:>12} {:>12} {:>7} {:>5}",
        "real-net scenario", "transport", "tps", "p50(s)", "p99(s)", "bytes", "agree", "sim"
    );
    for row in &report.real_net {
        println!(
            "{:<28} {:<10} {:>12.0} {:>12.6} {:>12.6} {:>12} {:>7} {:>5}",
            row.scenario,
            row.transport,
            row.throughput_tps,
            row.latency_p50_s,
            row.latency_p99_s,
            row.bytes_sent,
            if row.nodes_agree { "yes" } else { "NO" },
            if !row.sim_digest_checked {
                "-"
            } else if row.sim_digest_match {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!(
        "\n{:<12} {:>8} {:>10} {:>12} {:>8} {:>18}",
        "workload", "workers", "effective", "tps", "reexec", "digest"
    );
    for row in &report.executor_scaling {
        println!(
            "{:<12} {:>8} {:>10} {:>12.0} {:>8} {:>18}",
            row.workload,
            row.workers,
            row.effective_workers,
            row.throughput_tps,
            row.reexecutions,
            row.commit_digest,
        );
    }
    println!(
        "\n{:<10} {:>12} {:>12} {:>8} {:>7} {:>7} {:>18} {:>9}",
        "backend", "tps", "apply(s)", "apply%", "coal", "applies", "digest", "recovered"
    );
    for row in &report.storage {
        println!(
            "{:<10} {:>12.0} {:>12.6} {:>7.1}% {:>7} {:>7} {:>18} {:>9}",
            row.backend,
            row.throughput_tps,
            row.apply_busy_s,
            row.apply_share * 100.0,
            row.coalesced_batches,
            row.apply_calls,
            row.commit_order_digest,
            if !row.persistent {
                "-"
            } else if row.recovery_digest_match {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!("\nwrote {out_path} (schema v{})", report.schema_version);
}
