//! The machine-readable perf-regression report (`BENCH_report.json`).
//!
//! Every PR can prove (or disprove) that it made a hot path faster: the
//! `bench_report` binary runs every executor engine and a set of cluster
//! scenarios under fixed seeds and emits one JSON document with throughput,
//! p50/p99 latency, abort counts and commit-pipeline stage occupancy. CI
//! runs it in scaled-down mode on every push (`perf-smoke`), validates the
//! shape and uploads the report as a build artifact, so the perf trajectory
//! of the repository is recorded run over run.
//!
//! The schema is documented in `docs/PERF.md`; bump
//! [`BENCH_REPORT_SCHEMA_VERSION`] whenever a field changes meaning.

use crate::{Engine, Scale, SystemRun};
use serde::Serialize;
use std::time::{Duration, SystemTime};
use tb_core::campaign::{default_campaign, run_campaign, CampaignProfile, ScenarioResult};
use tb_core::{ExecutionMode, ScenarioBuilder};
use tb_executor::{effective_workers, BatchExecutor, ConcurrentExecutor};
use tb_launcher::{run_real_net_scenario, LaunchOptions};
use tb_storage::{MemStore, Store, TempDir, WalOptions, WalStore};
use tb_types::{CeConfig, SimTime, StorageBackend, StorageConfig};
use tb_workload::{
    ContractWorkloadConfig, KvWorkloadConfig, SmallBankConfig, SmallBankWorkload, Workload,
};

/// Version of the `BENCH_report.json` schema (see `docs/PERF.md`).
/// v2: cluster rows carry a `workload` field and the scenario set grew the
/// contract and hot-key KV workloads.
/// v3: the report carries a `campaigns` table — the chaos campaign's
/// per-scenario pass/fail + loss metrics rows.
/// v4: `pipeline` rows carry `apply_calls`, and per-stage occupancy
/// regression thresholds ([`MAX_VALIDATE_SHARE`], [`MAX_APPLY_SHARE`],
/// coalescing liveness) are enforced by [`BenchReport::validate`].
/// v5: the report carries a `real_net` table — scenarios executed as N OS
/// processes over localhost TCP (`tb-launcher`), with message/byte traffic
/// and digest-agreement verdicts; sim cluster rows gain `msgs_sent` /
/// `bytes_sent` so the two transports report comparable traffic.
/// v6: the report carries an `executor_scaling` table — a concurrent-executor
/// worker sweep (1→2→4→8, contended + uncontended) whose per-workload
/// commit-digest equality is the machine-checked proof that multi-worker
/// preplay serializes deterministically ([`BenchReport::validate`] rejects a
/// report whose digests diverge).
/// v7: the report carries a `storage` table — the same seeded lockstep
/// scenario run once per store backend (`mem`, `wal`). The WAL row's
/// `apply_share` finally measures real storage work, its commit digest must
/// equal the MemStore row's (backend choice cannot change commit semantics),
/// and `recovery_digest_match` is a machine-checked crash-recovery verdict:
/// replica 0's directory is reopened post-run and the durable commit marker
/// must reproduce the run's FNV-1a commit-order digest.
pub const BENCH_REPORT_SCHEMA_VERSION: u32 = 7;

/// Regression ceiling on `validate_share` for every non-Tusk cluster
/// scenario: validation must never again become the wall the way the PR 2–4
/// baselines recorded (ROADMAP item 2 measured up to 0.88 on cross-shard
/// runs before the parallel fan-out landed).
pub const MAX_VALIDATE_SHARE: f64 = 0.60;

/// Regression ceiling on `apply_share` for every non-Tusk cluster scenario.
/// Storage apply is stripe-coalesced and cheap today; if a future storage
/// backend pushes its share past this, the pipeline needs rebalancing, not
/// silence. The cross-shard `execute` stage has no ceiling — its share is
/// workload-determined (the Tusk baseline is 100% execute by construction),
/// see `docs/PIPELINE.md`.
pub const MAX_APPLY_SHARE: f64 = 0.60;

/// A per-scenario share or counter below this value "rounds to zero" for
/// [`BenchReport::silent_zero_counters`]: three decimals of a share, or a
/// plain zero for integer counters.
const SILENT_ZERO_EPSILON: f64 = 5e-4;

/// Minimum measured stage time (validate + apply + execute, in seconds)
/// before the share ceilings are enforced on a scenario. Stage shares are
/// ratios of wall-clock measurements; a tiny run on a loaded machine can
/// measure a few milliseconds total, where a single preemption swings a
/// share by half. Below this floor the ceilings would gate on noise, so
/// they are skipped — the coalescing check is deterministic and is always
/// enforced. The committed quick-scale baseline measures hundreds of
/// milliseconds per scenario, far above the floor.
pub const MIN_OCCUPANCY_MEASURED_S: f64 = 0.05;

/// Fixed seed for every benchmark in the report, so two reports from the
/// same tree are comparable run over run.
pub const BENCH_SEED: u64 = 42;

/// One engine measurement: a fixed SmallBank configuration executed batch by
/// batch on a single store.
#[derive(Clone, Debug, Serialize)]
pub struct EngineBench {
    /// Engine label (`Thunderbolt`, `OCC`, `2PL-No-Wait`, `Serial`).
    pub engine: String,
    /// Executor workers.
    pub executors: usize,
    /// Transactions per batch.
    pub batch: usize,
    /// Zipfian skew of the workload.
    pub theta: f64,
    /// Read fraction of the workload.
    pub pr: f64,
    /// Total transactions executed.
    pub txs: usize,
    /// Throughput in transactions per second of wall-clock time.
    pub throughput_tps: f64,
    /// Average per-transaction latency in seconds.
    pub avg_latency_s: f64,
    /// Median per-transaction latency in seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile per-transaction latency in seconds.
    pub latency_p99_s: f64,
    /// Total concurrency-control re-executions (the abort count).
    pub aborts: u64,
    /// Average re-executions per transaction.
    pub aborts_per_tx: f64,
    /// Transactions rejected by their own logic (committed as no-ops).
    pub logical_rejections: u64,
}

/// Commit-pipeline stage occupancy of a cluster run, measured on the
/// observer replica.
#[derive(Clone, Debug, Serialize)]
pub struct StageOccupancy {
    /// Wall-clock seconds the validation stage was busy.
    pub validate_busy_s: f64,
    /// Wall-clock seconds the storage-apply stage was busy.
    pub apply_busy_s: f64,
    /// Wall-clock seconds the cross-shard execution stage was busy.
    pub execute_busy_s: f64,
    /// Validation's share of total stage time (0..=1).
    pub validate_share: f64,
    /// Apply's share of total stage time (0..=1).
    pub apply_share: f64,
    /// Execution's share of total stage time (0..=1).
    pub execute_share: f64,
    /// Write batches the pipelined applier coalesced with at least one
    /// other batch.
    pub coalesced_batches: u64,
    /// Storage apply calls the commit path performed (one per applier drain
    /// when pipelined; fewer calls than valid blocks means batches were
    /// coalesced). Schema v4.
    pub apply_calls: u64,
}

/// One cluster scenario: a full multi-replica simulation under a fixed seed.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterBench {
    /// Scenario name (stable across reports; compare by this key).
    pub scenario: String,
    /// System variant label.
    pub mode: String,
    /// Stable workload name (`smallbank`, `contract`, `kv-hot`), so two
    /// scenarios under the same engine remain distinguishable.
    pub workload: String,
    /// Committee size.
    pub replicas: u32,
    /// Measured fraction of committed transactions that took the
    /// cross-shard (order-first) path. Derived from the run — not the
    /// configured mix — so workloads without a cross-shard knob (and
    /// single-shard conversions under rules P3/P4) are reported honestly.
    pub cross_shard: f64,
    /// Total committed transactions on the observer replica.
    pub committed_txs: u64,
    /// Committed single-shard (preplayed) transactions.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions.
    pub cross_shard_txs: u64,
    /// Preplayed blocks discarded by validation.
    pub invalid_blocks: u64,
    /// Throughput in transactions per second of simulated time.
    pub throughput_tps: f64,
    /// Average end-to-end latency in seconds of simulated time.
    pub avg_latency_s: f64,
    /// Median commit latency in seconds (log2-bucket upper bound).
    pub latency_p50_s: f64,
    /// 99th-percentile commit latency in seconds.
    pub latency_p99_s: f64,
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Messages handed to the simulated network during the run.
    pub msgs_sent: u64,
    /// Wire-encoded payload bytes handed to the network (schema v5). The
    /// same accounting the TCP transport reports — payload only, length
    /// prefixes and handshakes excluded — so sim and `real_net` rows carry
    /// comparable traffic numbers.
    pub bytes_sent: u64,
    /// FNV-1a digest of the committed transaction order as a 16-hex-digit
    /// string (equal digests mean two runs committed identically; expect
    /// digests to differ between independently regenerated reports, see
    /// `docs/PERF.md`).
    pub commit_order_digest: String,
    /// Commit-pipeline stage occupancy.
    pub pipeline: StageOccupancy,
}

/// One real-net scenario: the same cluster protocol executed as N OS
/// processes over localhost TCP by `tb-launcher` (schema v5).
///
/// Unlike sim rows, throughput here is transactions per second of
/// *wall-clock* time, and the digest columns are machine-checked agreement
/// verdicts: `nodes_agree` compares the per-round commit digests across all
/// N processes, `sim_digest_match` compares node 0 against an in-process
/// sim run of the identical scenario (only attempted for lockstep,
/// fully-single-shard scenarios — see `docs/NET.md`).
#[derive(Clone, Debug, Serialize)]
pub struct RealNetBench {
    /// Scenario name (stable across reports; compare by this key).
    pub scenario: String,
    /// System variant label.
    pub mode: String,
    /// Stable workload name (always `smallbank` today).
    pub workload: String,
    /// Transport label (always `tcp` today; sim rows live in `clusters`).
    pub transport: String,
    /// Committee size == number of OS processes.
    pub replicas: u32,
    /// Total committed transactions on node 0.
    pub committed_txs: u64,
    /// Committed single-shard transactions on node 0.
    pub single_shard_txs: u64,
    /// Committed cross-shard transactions on node 0.
    pub cross_shard_txs: u64,
    /// Throughput in transactions per second of wall-clock time.
    pub throughput_tps: f64,
    /// Average end-to-end commit latency in seconds.
    pub avg_latency_s: f64,
    /// Median commit latency in seconds (log2-bucket upper bound).
    pub latency_p50_s: f64,
    /// 99th-percentile commit latency in seconds.
    pub latency_p99_s: f64,
    /// Messages node 0 handed to the transport.
    pub msgs_sent: u64,
    /// Messages delivered to node 0.
    pub msgs_delivered: u64,
    /// Wire-encoded payload bytes node 0 sent (same accounting as the sim's
    /// `bytes_sent`).
    pub bytes_sent: u64,
    /// Wire-encoded payload bytes delivered to node 0.
    pub bytes_delivered: u64,
    /// Node 0's FNV-1a commit-order digest (16 hex digits).
    pub commit_order_digest: String,
    /// All N processes carried identical `(dag, round, digest)` commit
    /// samples on their common prefix.
    pub nodes_agree: bool,
    /// Whether an in-process sim twin ran for comparison.
    pub sim_digest_checked: bool,
    /// The sim twin's commit digests prefix-matched node 0's (`false`
    /// whenever `sim_digest_checked` is).
    pub sim_digest_match: bool,
}

/// One row of the schema-v7 `storage` table: a fixed seeded lockstep
/// scenario run on one store backend.
///
/// The table exists for two machine-checked claims. **Equivalence**: the
/// `commit_order_digest` column must be identical across backends — durable
/// storage is a refinement of the in-memory semantics, never a behavioral
/// change. **Recoverability**: for the persistent backend, replica 0's data
/// directory is reopened through the real recovery path after the cluster is
/// torn down, and the recovered durable commit marker must reproduce the
/// run's digest (`recovery_digest_match`). The occupancy columns give
/// `apply_share` a row where it measures genuine storage work (WAL framing,
/// buffering, file writes) instead of a MemStore drain.
#[derive(Clone, Debug, Serialize)]
pub struct StorageBench {
    /// Scenario name (stable across reports; compare by this key).
    pub scenario: String,
    /// Backend label (`mem` / `wal`).
    pub backend: String,
    /// Whether the backend claims durability ([`Store::persistent`]).
    pub persistent: bool,
    /// Total committed transactions on the observer replica.
    pub committed_txs: u64,
    /// Throughput in transactions per second of simulated time.
    pub throughput_tps: f64,
    /// Wall-clock seconds the storage-apply stage was busy.
    pub apply_busy_s: f64,
    /// Apply's share of total stage time (0..=1). Nonzero for the WAL
    /// backend, or the report fails validation.
    pub apply_share: f64,
    /// Write batches the pipelined applier coalesced with at least one
    /// other batch.
    pub coalesced_batches: u64,
    /// Storage apply calls the commit path performed.
    pub apply_calls: u64,
    /// The observer's FNV-1a commit-order digest (16 hex digits). Equal
    /// across backends, or the report fails validation.
    pub commit_order_digest: String,
    /// Recovery replayed from an on-disk snapshot (persistent backend only;
    /// `false` for `mem`).
    pub recovery_snapshot_loaded: bool,
    /// WAL records replayed by post-run recovery (persistent backend only).
    pub recovery_replayed_records: u64,
    /// The recovered durable commit marker reproduces
    /// `commit_order_digest` (persistent backend only; `false` for `mem`).
    pub recovery_digest_match: bool,
}

/// Configured worker counts of the schema-v6 `executor_scaling` sweep.
pub const EXECUTOR_SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// One cell of the schema-v6 `executor_scaling` sweep: the Thunderbolt
/// concurrent executor run batch-by-batch over an identical seeded
/// transaction stream at one configured worker count.
///
/// The table exists for one invariant: per workload, the `commit_digest`
/// column must be constant across the whole worker sweep. The digest folds
/// the serialized order, every transaction id, and every (sorted) read and
/// write set of every committed batch, so equality means `executors(N)`
/// committed byte-for-byte the same serialization as `executors(1)` — the
/// deterministic-finalize guarantee of `docs/PIPELINE.md`, machine-checked
/// on every report. Throughput and re-execution columns contextualize the
/// cost: speedup is only expected where `effective_workers` actually grew.
#[derive(Clone, Debug, Serialize)]
pub struct ExecutorScalingBench {
    /// Workload label (`contended` / `uncontended`).
    pub workload: String,
    /// Configured preplay worker count (the sweep axis).
    pub workers: usize,
    /// Workers the run could actually use after clamping to available
    /// cores. Context for the throughput column on small machines; the
    /// digest column must be independent of it.
    pub effective_workers: usize,
    /// Total committed transactions.
    pub txs: usize,
    /// Throughput in transactions per second of wall-clock time.
    pub throughput_tps: f64,
    /// Speculative re-executions: concurrency-control aborts plus finalize
    /// repairs.
    pub reexecutions: u64,
    /// FNV-1a digest (16 hex digits) folded over every batch's
    /// `BatchResult::commit_digest` — order, ids, sorted read/write sets,
    /// return values. Equal per workload across the sweep, or the report
    /// fails validation.
    pub commit_digest: String,
}

/// The full machine-readable report.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Schema version (see `docs/PERF.md`).
    pub schema_version: u32,
    /// Unix timestamp (milliseconds) at which the report was generated.
    pub generated_unix_ms: u64,
    /// Scale label (`smoke`, `quick`, `full`).
    pub scale: String,
    /// Seed every benchmark ran under.
    pub seed: u64,
    /// Hardware threads available to the run (context for wall-clock rows).
    pub cores: usize,
    /// Per-engine executor measurements.
    pub engines: Vec<EngineBench>,
    /// Cluster scenario measurements.
    pub clusters: Vec<ClusterBench>,
    /// Out-of-process cluster measurements over localhost TCP (schema v5,
    /// see `docs/NET.md`). Empty when the report was generated without
    /// subprocess spawning (library tests); the `bench_report` binary always
    /// fills it.
    pub real_net: Vec<RealNetBench>,
    /// Concurrent-executor worker sweep (schema v6): per-workload digest
    /// equality across [`EXECUTOR_SCALING_WORKERS`] is the determinism proof.
    pub executor_scaling: Vec<ExecutorScalingBench>,
    /// Store-backend comparison (schema v7): one row per backend over the
    /// identical seeded scenario; digest equality and the WAL row's
    /// crash-recovery verdict are enforced by [`BenchReport::validate`].
    pub storage: Vec<StorageBench>,
    /// Chaos campaign results: one pass/fail + metrics row per adversarial
    /// scenario (schema v3, see `docs/CHAOS.md`).
    pub campaigns: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Structural validation: the report covers every engine, at least one
    /// cluster scenario, and every throughput is positive. This is what the
    /// CI `perf-smoke` job enforces before uploading the artifact.
    pub fn validate(&self) -> Result<(), String> {
        for engine in Engine::BENCHED {
            if !self.engines.iter().any(|e| e.engine == engine.label()) {
                return Err(format!("missing engine row for {}", engine.label()));
            }
        }
        if self.clusters.is_empty() {
            return Err("no cluster scenarios recorded".to_string());
        }
        for row in &self.engines {
            if row.throughput_tps <= 0.0 {
                return Err(format!("non-positive throughput for engine {}", row.engine));
            }
            if row.latency_p99_s < row.latency_p50_s {
                return Err(format!("p99 < p50 for engine {}", row.engine));
            }
        }
        for row in &self.clusters {
            if row.committed_txs == 0 {
                return Err(format!("scenario {} committed nothing", row.scenario));
            }
            if row.throughput_tps <= 0.0 {
                return Err(format!("non-positive throughput for {}", row.scenario));
            }
            if row.workload.is_empty() {
                return Err(format!("scenario {} has no workload name", row.scenario));
            }
        }
        for workload in ["smallbank", "contract", "kv-hot"] {
            if !self.clusters.iter().any(|c| c.workload == workload) {
                return Err(format!("missing cluster scenario for workload {workload}"));
            }
        }
        self.validate_real_net()?;
        self.validate_executor_scaling()?;
        self.validate_stage_occupancy()?;
        self.validate_storage()?;
        validate_campaigns(&self.campaigns)
    }

    /// Schema v7 storage gates: the table must cover both backends over the
    /// identical scenario, the backends must commit the identical order
    /// (digest equality — persistence is a refinement, not a behavior
    /// change), and the WAL row must prove it did real, recoverable work:
    /// live coalescing and apply counters, a strictly positive measured
    /// apply stage, and a post-run recovery whose durable marker reproduces
    /// the run's digest.
    fn validate_storage(&self) -> Result<(), String> {
        let find = |backend: &str| {
            self.storage
                .iter()
                .find(|r| r.backend == backend)
                .ok_or_else(|| format!("storage: missing row for the {backend} backend"))
        };
        let mem = find("mem")?;
        let wal = find("wal")?;
        for row in &self.storage {
            if row.committed_txs == 0 {
                return Err(format!("storage {} row committed nothing", row.backend));
            }
            if row.throughput_tps <= 0.0 {
                return Err(format!(
                    "non-positive throughput for the storage {} row",
                    row.backend
                ));
            }
        }
        if wal.commit_order_digest != mem.commit_order_digest {
            return Err(format!(
                "storage: the wal backend committed digest {} but mem committed {} — the \
                 backend changed commit semantics",
                wal.commit_order_digest, mem.commit_order_digest
            ));
        }
        if !wal.persistent {
            return Err("storage: the wal row claims no durability".to_string());
        }
        if wal.coalesced_batches == 0 {
            return Err("storage: the wal applier never coalesced batches".to_string());
        }
        if wal.apply_calls == 0 {
            return Err("storage: the wal row recorded no apply calls".to_string());
        }
        if wal.apply_busy_s <= 0.0 || wal.apply_share <= 0.0 {
            return Err(format!(
                "storage: the wal apply stage measured nothing (busy {:.6}s, share {:.6}) — \
                 a persistent backend must make apply_share real",
                wal.apply_busy_s, wal.apply_share
            ));
        }
        if !wal.recovery_snapshot_loaded && wal.recovery_replayed_records == 0 {
            return Err("storage: post-run recovery found nothing on disk".to_string());
        }
        if !wal.recovery_digest_match {
            return Err(
                "storage: the recovered durable commit marker does not reproduce the run's \
                 commit-order digest"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Schema v6 determinism gate. Unlike the share ceilings this check is
    /// exact and unconditional — the serialized order is a pure function of
    /// the batch, so a digest that moves with the worker count is a
    /// correctness bug (a hole in the deterministic finalize pass), never
    /// measurement noise, and must fail the report on every machine
    /// including single-core CI runners where `effective_workers` is 1.
    fn validate_executor_scaling(&self) -> Result<(), String> {
        for workload in ["contended", "uncontended"] {
            let rows: Vec<&ExecutorScalingBench> = self
                .executor_scaling
                .iter()
                .filter(|r| r.workload == workload)
                .collect();
            if rows.len() != EXECUTOR_SCALING_WORKERS.len() {
                return Err(format!(
                    "executor_scaling: {} rows for the {workload} workload, want one per \
                     worker count in {EXECUTOR_SCALING_WORKERS:?}",
                    rows.len()
                ));
            }
            let reference = rows[0];
            for row in &rows {
                if row.txs == 0 {
                    return Err(format!(
                        "executor_scaling {workload}/workers={}: committed nothing",
                        row.workers
                    ));
                }
                if row.throughput_tps <= 0.0 {
                    return Err(format!(
                        "executor_scaling {workload}/workers={}: non-positive throughput",
                        row.workers
                    ));
                }
                if row.commit_digest != reference.commit_digest {
                    return Err(format!(
                        "executor_scaling {workload}: workers={} committed digest {} but \
                         workers={} committed {} — multi-worker preplay diverged from the \
                         deterministic serialization order",
                        row.workers, row.commit_digest, reference.workers, reference.commit_digest
                    ));
                }
            }
        }
        Ok(())
    }

    /// Schema v5 real-net gates. An empty table is allowed (subprocess-free
    /// generation paths), but every present row must have committed work and
    /// carry passing digest verdicts — a real-net run whose nodes disagree,
    /// or whose lockstep run diverged from the sim twin, is a correctness
    /// failure, not a perf data point.
    fn validate_real_net(&self) -> Result<(), String> {
        for row in &self.real_net {
            if row.committed_txs == 0 {
                return Err(format!(
                    "real-net scenario {} committed nothing",
                    row.scenario
                ));
            }
            if row.throughput_tps <= 0.0 {
                return Err(format!(
                    "non-positive throughput for real-net scenario {}",
                    row.scenario
                ));
            }
            if !row.nodes_agree {
                return Err(format!(
                    "real-net scenario {}: nodes disagreed on commit digests",
                    row.scenario
                ));
            }
            if row.sim_digest_checked && !row.sim_digest_match {
                return Err(format!(
                    "real-net scenario {}: TCP run diverged from the sim twin",
                    row.scenario
                ));
            }
            if row.bytes_sent == 0 {
                return Err(format!(
                    "real-net scenario {}: byte accounting is dead",
                    row.scenario
                ));
            }
        }
        Ok(())
    }

    /// Per-stage occupancy regression thresholds (schema v4): on every
    /// pipelined (non-Tusk) scenario, validation and apply must each stay at
    /// or below their share ceilings and the applier must have actually
    /// coalesced batches at least once. A report violating these is the
    /// exact regression shape ROADMAP item 2 diagnosed — a stage quietly
    /// becoming the wall, or the coalescing machinery going dead — so it
    /// fails validation (and with it the `perf-smoke` CI job) instead of
    /// shipping as a baseline.
    fn validate_stage_occupancy(&self) -> Result<(), String> {
        for row in self.clusters.iter().filter(|c| c.mode != "Tusk") {
            let measured = row.pipeline.validate_busy_s
                + row.pipeline.apply_busy_s
                + row.pipeline.execute_busy_s;
            if measured >= MIN_OCCUPANCY_MEASURED_S {
                if row.pipeline.validate_share > MAX_VALIDATE_SHARE {
                    return Err(format!(
                        "scenario {}: validate_share {:.3} exceeds the {MAX_VALIDATE_SHARE} ceiling",
                        row.scenario, row.pipeline.validate_share
                    ));
                }
                if row.pipeline.apply_share > MAX_APPLY_SHARE {
                    return Err(format!(
                        "scenario {}: apply_share {:.3} exceeds the {MAX_APPLY_SHARE} ceiling",
                        row.scenario, row.pipeline.apply_share
                    ));
                }
            }
            if row.pipeline.coalesced_batches == 0 {
                return Err(format!(
                    "scenario {}: coalesced_batches is 0 — the pipelined applier never \
                     drained two batches together (the ROADMAP item 2 pathology)",
                    row.scenario
                ));
            }
        }
        Ok(())
    }

    /// Names of pipeline counter fields that round to zero across *every*
    /// cluster scenario — the silent-zero pathology class: a counter that is
    /// uniformly ≈0 usually means the machinery behind it went dead (the way
    /// `coalesced_batches: 0` shipped unnoticed in three consecutive
    /// baselines), not that the workloads all happen to avoid it. The
    /// `bench_report` binary warns on stderr for each returned name.
    pub fn silent_zero_counters(&self) -> Vec<&'static str> {
        type Probe = fn(&ClusterBench) -> f64;
        // `apply_share` is deliberately not probed: a MemStore drain is
        // microseconds against milliseconds of validation/execution, so its
        // share legitimately rounds to zero on every healthy run — the
        // applier's liveness is what `coalesced_batches` and `apply_calls`
        // probe. A warning that fires on every green baseline trains people
        // to ignore warnings.
        let probes: [(&'static str, Probe); 4] = [
            ("pipeline.validate_share", |c| c.pipeline.validate_share),
            ("pipeline.execute_share", |c| c.pipeline.execute_share),
            ("pipeline.coalesced_batches", |c| {
                c.pipeline.coalesced_batches as f64
            }),
            ("pipeline.apply_calls", |c| c.pipeline.apply_calls as f64),
        ];
        let mut dead: Vec<&'static str> = probes
            .iter()
            .filter(|(_, probe)| {
                !self.clusters.is_empty()
                    && self.clusters.iter().all(|c| probe(c) < SILENT_ZERO_EPSILON)
            })
            .map(|(name, _)| *name)
            .collect();
        // Schema v7 lifts the apply_share exemption where it no longer
        // applies: once a persistent backend is in the report, apply is real
        // I/O work and a share that rounds to zero on every persistent row
        // means the measurement (or the backend) went dead.
        let persistent: Vec<&StorageBench> = self.storage.iter().filter(|r| r.persistent).collect();
        if !persistent.is_empty()
            && persistent
                .iter()
                .all(|r| r.apply_share < SILENT_ZERO_EPSILON)
        {
            dead.push("storage.apply_share");
        }
        dead
    }

    /// Per-key throughput ratios `self / baseline` over the rows both
    /// reports share — the comparison `docs/PERF.md` describes. Keys are
    /// `engine:<label>` and `cluster:<scenario>`.
    pub fn throughput_ratios(&self, baseline: &BenchReport) -> Vec<(String, f64)> {
        let mut ratios = Vec::new();
        for row in &self.engines {
            if let Some(base) = baseline.engines.iter().find(|b| {
                b.engine == row.engine && b.batch == row.batch && b.executors == row.executors
            }) {
                if base.throughput_tps > 0.0 {
                    ratios.push((
                        format!("engine:{}", row.engine),
                        row.throughput_tps / base.throughput_tps,
                    ));
                }
            }
        }
        for row in &self.clusters {
            if let Some(base) = baseline
                .clusters
                .iter()
                .find(|b| b.scenario == row.scenario)
            {
                if base.throughput_tps > 0.0 {
                    ratios.push((
                        format!("cluster:{}", row.scenario),
                        row.throughput_tps / base.throughput_tps,
                    ));
                }
            }
        }
        ratios
    }
}

/// Shared structural validation of a `campaigns` table: at least six
/// adversarial scenarios, all passed, all with committed transactions. A
/// failing invariant therefore fails report validation — and with it the
/// `chaos-smoke` CI job.
pub fn validate_campaigns(campaigns: &[ScenarioResult]) -> Result<(), String> {
    if campaigns.len() < 6 {
        return Err(format!(
            "only {} campaign scenarios recorded, need at least 6",
            campaigns.len()
        ));
    }
    for row in campaigns {
        if !row.passed {
            return Err(format!(
                "campaign scenario {} failed: {}",
                row.scenario,
                row.failures.join("; ")
            ));
        }
        if row.committed_txs == 0 {
            return Err(format!(
                "campaign scenario {} committed nothing",
                row.scenario
            ));
        }
    }
    Ok(())
}

/// Maps the bench scale onto the campaign's own profile (`tb-core` cannot
/// depend on `tb-bench`, so the campaign defines its own scale knobs).
pub fn campaign_profile(scale: Scale) -> CampaignProfile {
    if scale.label() == "smoke" {
        CampaignProfile::smoke()
    } else {
        CampaignProfile::quick()
    }
}

/// A standalone chaos-campaign report (the `campaign_report` binary's
/// output): the `campaigns` table of [`BenchReport`] without the perf rows,
/// so the `chaos-smoke` CI job does not pay for the engine benchmarks.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// Schema version, shared with [`BenchReport`].
    pub schema_version: u32,
    /// Unix timestamp (milliseconds) at which the report was generated.
    pub generated_unix_ms: u64,
    /// Scale label (`smoke`, `quick`, `full`).
    pub scale: String,
    /// One row per adversarial scenario.
    pub campaigns: Vec<ScenarioResult>,
}

impl CampaignReport {
    /// Structural validation (see [`validate_campaigns`]).
    pub fn validate(&self) -> Result<(), String> {
        validate_campaigns(&self.campaigns)
    }
}

/// Runs the default chaos campaign at the given scale and wraps the rows in
/// a [`CampaignReport`].
pub fn generate_campaigns(scale: Scale) -> CampaignReport {
    CampaignReport {
        schema_version: BENCH_REPORT_SCHEMA_VERSION,
        generated_unix_ms: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        scale: scale.label().to_string(),
        campaigns: run_campaign(default_campaign(campaign_profile(scale))),
    }
}

/// Runs one engine under the report's fixed workload and collects the
/// latency distribution alongside the throughput row.
fn run_engine_bench(engine: Engine, scale: Scale) -> EngineBench {
    let executors = scale.system_executors.max(2);
    let batch = scale.system_batch.max(32);
    let theta = 0.85;
    let pr = 0.5;
    let mut ce_config = CeConfig::new(executors, batch);
    ce_config.synthetic_op_cost_ns = scale.op_cost_ns;
    let runner = engine.build(ce_config);

    let store = MemStore::new();
    let mut workload = SmallBankWorkload::new(SmallBankConfig {
        accounts: scale.executor_accounts,
        theta,
        pr_read: pr,
        n_shards: 1,
        seed: BENCH_SEED,
        ..SmallBankConfig::default()
    });
    store.load(workload.initial_state());

    let total_txs = scale.executor_txs;
    let mut committed = 0usize;
    let mut aborts = 0u64;
    let mut logical_rejections = 0u64;
    let mut latency_sum = 0.0f64;
    let mut samples: Vec<f64> = Vec::with_capacity(total_txs);
    let mut elapsed = 0.0f64;
    let mut remaining = total_txs;
    while remaining > 0 {
        let size = batch.min(remaining);
        let txs = workload.batch(size, SimTime::ZERO);
        let result = runner.execute_batch(&txs, &store);
        committed += result.committed();
        aborts += result.reexecutions;
        logical_rejections += result.logical_rejections;
        latency_sum += result.total_latency.as_secs_f64();
        samples.extend(result.latencies.iter().map(|d| d.as_secs_f64()));
        elapsed += result.elapsed.as_secs_f64();
        remaining -= size;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let quantile = |q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let rank = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[rank]
    };
    EngineBench {
        engine: engine.label().to_string(),
        executors,
        batch,
        theta,
        pr,
        txs: committed,
        throughput_tps: if elapsed > 0.0 {
            committed as f64 / elapsed
        } else {
            0.0
        },
        avg_latency_s: if committed > 0 {
            latency_sum / committed as f64
        } else {
            0.0
        },
        latency_p50_s: quantile(0.5),
        latency_p99_s: quantile(0.99),
        aborts,
        aborts_per_tx: if committed > 0 {
            aborts as f64 / committed as f64
        } else {
            0.0
        },
        logical_rejections,
    }
}

/// Runs one `executor_scaling` cell: the concurrent executor over a fixed
/// seeded SmallBank stream at one configured worker count, folding every
/// batch's commit digest into the row's digest.
fn run_executor_scaling_cell(
    label: &str,
    workers: usize,
    accounts: u64,
    theta: f64,
    scale: Scale,
) -> ExecutorScalingBench {
    // FNV-1a over the per-batch digests, so the row digest covers the whole
    // stream's serialization (same constants as `BatchResult::commit_digest`).
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0100_0000_01b3;

    let batch = scale.system_batch.max(32);
    let mut ce_config = CeConfig::new(workers, batch);
    ce_config.synthetic_op_cost_ns = scale.op_cost_ns;
    let runner = ConcurrentExecutor::new(ce_config);

    let store = MemStore::new();
    // Reconstructed per cell so every worker count consumes the identical
    // seeded transaction stream — the precondition for digest comparison.
    let mut workload = SmallBankWorkload::new(SmallBankConfig {
        accounts,
        theta,
        pr_read: 0.5,
        n_shards: 1,
        seed: BENCH_SEED,
        ..SmallBankConfig::default()
    });
    store.load(workload.initial_state());

    let mut committed = 0usize;
    let mut reexecutions = 0u64;
    let mut elapsed = 0.0f64;
    let mut digest = FNV_OFFSET;
    let mut remaining = scale.executor_txs;
    while remaining > 0 {
        let size = batch.min(remaining);
        let txs = workload.batch(size, SimTime::ZERO);
        let result = runner.execute_batch(&txs, &store);
        committed += result.committed();
        reexecutions += result.reexecutions;
        elapsed += result.elapsed.as_secs_f64();
        digest = (digest ^ result.commit_digest()).wrapping_mul(FNV_PRIME);
        remaining -= size;
    }
    ExecutorScalingBench {
        workload: label.to_string(),
        workers,
        effective_workers: effective_workers(workers),
        txs: committed,
        throughput_tps: if elapsed > 0.0 {
            committed as f64 / elapsed
        } else {
            0.0
        },
        reexecutions,
        commit_digest: format!("{digest:016x}"),
    }
}

/// Generates the schema-v6 `executor_scaling` table: the worker sweep over
/// a contended (hot Zipfian, few accounts) and an uncontended (flat, many
/// accounts) SmallBank stream. Per-workload digest equality across the
/// sweep is enforced by [`BenchReport::validate`].
pub fn generate_executor_scaling(scale: Scale) -> Vec<ExecutorScalingBench> {
    let workloads: [(&str, u64, f64); 2] = [
        ("contended", 64, 0.95),
        ("uncontended", scale.executor_accounts.max(1024), 0.5),
    ];
    let mut rows = Vec::new();
    for (label, accounts, theta) in workloads {
        for workers in EXECUTOR_SCALING_WORKERS {
            rows.push(run_executor_scaling_cell(
                label, workers, accounts, theta, scale,
            ));
        }
    }
    rows
}

/// Runs one `storage` cell: the fixed seeded lockstep SmallBank scenario on
/// one backend. Lockstep + fully-single-shard makes the commit order a pure
/// function of the client stream (the same argument the real-net digest gate
/// rests on), so backend-induced timing differences cannot move the digest —
/// any inequality validation then finds is a semantic divergence.
///
/// For the WAL backend the cluster is torn down first (dropping every open
/// store) and replica 0's directory is reopened through [`WalStore::open`] —
/// the real recovery path — to produce the row's recovery columns.
fn run_storage_cell(storage: StorageConfig, scale: Scale) -> StorageBench {
    let backend = match storage.backend {
        StorageBackend::Mem => "mem",
        StorageBackend::Wal => "wal",
    };
    let options = WalOptions {
        compact_wal_bytes: storage.compact_wal_bytes,
        flush_buffered_writes: storage.flush_buffered_writes as usize,
    };
    let data_dir = storage.data_dir.clone();
    let report = ScenarioBuilder::new(4)
        .executors(scale.system_executors.max(2), scale.system_batch)
        .validators(2)
        .rounds(scale.system_rounds)
        .seed(BENCH_SEED)
        .lockstep()
        // Storage rows measure the store, not synthetic compute: with the
        // op cost off, apply (framing, buffering, file writes) is a real
        // fraction of the pipeline instead of rounding error.
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
        .workload(SmallBankConfig {
            accounts: scale.system_accounts,
            n_shards: 4,
            cross_shard_fraction: 0.0,
            seed: BENCH_SEED,
            ..SmallBankConfig::default()
        })
        .storage(storage)
        .run();
    let (_, apply_share, _) = report.stage_occupancy();
    let (snapshot_loaded, replayed, digest_match) = match backend {
        "wal" => {
            let dir = std::path::Path::new(&data_dir).join("replica-0");
            let recovered = WalStore::open(&dir, options)
                .unwrap_or_else(|err| panic!("reopen storage bench dir {}: {err}", dir.display()));
            let info = recovered.recovery();
            let digest = recovered
                .last_commit()
                .map(|m| format!("{:016x}", m.digest));
            (
                info.snapshot_loaded,
                info.replayed_records,
                digest.as_deref() == Some(report.commit_order_digest.as_str()),
            )
        }
        _ => (false, 0, false),
    };
    StorageBench {
        scenario: "storage-smallbank-lockstep-n4".to_string(),
        backend: backend.to_string(),
        persistent: backend == "wal",
        committed_txs: report.committed_txs,
        throughput_tps: report.throughput_tps(),
        apply_busy_s: report.apply_busy_secs,
        apply_share,
        coalesced_batches: report.coalesced_batches,
        apply_calls: report.apply_calls,
        commit_order_digest: report.commit_order_digest,
        recovery_snapshot_loaded: snapshot_loaded,
        recovery_replayed_records: replayed,
        recovery_digest_match: digest_match,
    }
}

/// Generates the schema-v7 `storage` table: the identical seeded scenario on
/// the in-memory backend and on the WAL backend (in a scoped temp directory
/// that is removed when the rows are built).
pub fn generate_storage(scale: Scale) -> Vec<StorageBench> {
    let dir = TempDir::new("bench-storage").expect("scoped temp dir for the storage bench");
    let wal = StorageConfig {
        backend: StorageBackend::Wal,
        data_dir: dir.path().display().to_string(),
        // Small thresholds so flushing and snapshot compaction both run at
        // every scale, smoke included.
        compact_wal_bytes: 64 * 1024,
        flush_buffered_writes: 64,
    };
    vec![
        run_storage_cell(StorageConfig::mem(), scale),
        run_storage_cell(wal, scale),
    ]
}

/// Runs one cluster scenario — the figure-scale system parameters with the
/// given workload plugged in through the `Workload` trait — and flattens its
/// run report into a row.
fn run_cluster_bench(
    scenario: &str,
    mode: ExecutionMode,
    replicas: u32,
    workload: Box<dyn Workload>,
    scale: Scale,
) -> ClusterBench {
    let mut run = SystemRun::new(mode, replicas, scale);
    run.seed = BENCH_SEED;
    let report = run.scenario().workload(workload).run();
    let (validate_share, apply_share, execute_share) = report.stage_occupancy();
    ClusterBench {
        scenario: scenario.to_string(),
        mode: mode.label().to_string(),
        workload: report.workload.clone(),
        replicas,
        cross_shard: if report.committed_txs > 0 {
            report.cross_shard_txs as f64 / report.committed_txs as f64
        } else {
            0.0
        },
        committed_txs: report.committed_txs,
        single_shard_txs: report.single_shard_txs,
        cross_shard_txs: report.cross_shard_txs,
        invalid_blocks: report.invalid_blocks,
        throughput_tps: report.throughput_tps(),
        avg_latency_s: report.avg_latency_secs(),
        latency_p50_s: report.latency_p50_secs,
        latency_p99_s: report.latency_p99_secs,
        reconfigurations: report.reconfigurations,
        msgs_sent: report.msgs_sent,
        bytes_sent: report.bytes_sent,
        commit_order_digest: report.commit_order_digest,
        pipeline: StageOccupancy {
            validate_busy_s: report.validate_busy_secs,
            apply_busy_s: report.apply_busy_secs,
            execute_busy_s: report.execute_busy_secs,
            validate_share,
            apply_share,
            execute_share,
            coalesced_batches: report.coalesced_batches,
            apply_calls: report.apply_calls,
        },
    }
}

/// Generates the full report at the given scale: all four engines plus the
/// cluster scenarios — SmallBank under Thunderbolt (single-shard and 20%
/// cross-shard) and Tusk, the interpreter-contract workload, and the
/// Zipfian hot-key KV workload — and the chaos campaign at the matching
/// [`CampaignProfile`].
pub fn generate(scale: Scale) -> BenchReport {
    generate_with(scale, campaign_profile(scale))
}

/// [`generate`] with an explicit campaign profile (tests use a smaller
/// campaign than the scale's default).
pub fn generate_with(scale: Scale, profile: CampaignProfile) -> BenchReport {
    let engines = Engine::BENCHED
        .iter()
        .map(|&engine| run_engine_bench(engine, scale))
        .collect();
    let smallbank = |replicas: u32, cross_shard: f64| SmallBankConfig {
        accounts: scale.system_accounts,
        n_shards: replicas,
        cross_shard_fraction: cross_shard,
        ..SmallBankConfig::default()
    };
    let contract = ContractWorkloadConfig {
        slots: scale.system_accounts,
        ..ContractWorkloadConfig::default()
    };
    let kv_hot = KvWorkloadConfig {
        keys: scale.system_accounts,
        cross_shard_fraction: 0.2,
        ..KvWorkloadConfig::default()
    };
    let clusters = vec![
        run_cluster_bench(
            "thunderbolt-lan-n4",
            ExecutionMode::Thunderbolt,
            4,
            smallbank(4, 0.0).into(),
            scale,
        ),
        run_cluster_bench(
            "thunderbolt-cross20-n4",
            ExecutionMode::Thunderbolt,
            4,
            smallbank(4, 0.2).into(),
            scale,
        ),
        run_cluster_bench(
            "tusk-lan-n4",
            ExecutionMode::Tusk,
            4,
            smallbank(4, 0.0).into(),
            scale,
        ),
        run_cluster_bench(
            "contract-n4",
            ExecutionMode::Thunderbolt,
            4,
            contract.into(),
            scale,
        ),
        run_cluster_bench(
            "kv-hot-cross20-n4",
            ExecutionMode::Thunderbolt,
            4,
            kv_hot.into(),
            scale,
        ),
    ];
    BenchReport {
        schema_version: BENCH_REPORT_SCHEMA_VERSION,
        generated_unix_ms: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        scale: scale.label().to_string(),
        seed: BENCH_SEED,
        cores: tb_executor::available_cores(),
        engines,
        clusters,
        real_net: Vec::new(),
        executor_scaling: generate_executor_scaling(scale),
        storage: generate_storage(scale),
        campaigns: run_campaign(default_campaign(profile)),
    }
}

/// Runs the schema-v5 real-net scenario family: the SmallBank cluster
/// scenarios executed as N OS processes over localhost TCP.
///
/// The calling **binary** must dispatch
/// [`tb_launcher::maybe_run_node_from_env`] at the very top of `main`: the
/// launcher re-executes `std::env::current_exe()` as the node image, and
/// without the dispatch the children would run the whole benchmark suite
/// recursively. This is why the subprocess-free [`generate`] leaves
/// `real_net` empty and the `bench_report` binary appends these rows itself.
pub fn generate_real_net(scale: Scale) -> Result<Vec<RealNetBench>, String> {
    Ok(vec![
        // Digest-gated: lockstep + fully single-shard makes the commit order
        // a pure function of the client stream — preplay is deterministic at
        // any worker count (the CE's finalize pass, `docs/PIPELINE.md`) — so
        // the TCP run must match an in-process sim twin exactly.
        run_real_net_bench("real-net-smallbank-lan-n4", 4, 0.0, true, scale)?,
        // 20% cross-shard: the order-first path interleaves cross-shard
        // commits by real message timing, so only cross-node agreement is
        // checked (every process must still commit the same order as its
        // peers).
        run_real_net_bench("real-net-smallbank-cross20-n4", 4, 0.2, false, scale)?,
    ])
}

/// Runs one scenario as `replicas` OS processes and flattens node 0's
/// report plus the agreement verdicts into a [`RealNetBench`] row.
fn run_real_net_bench(
    scenario: &str,
    replicas: u32,
    cross_shard: f64,
    digest_gate: bool,
    scale: Scale,
) -> Result<RealNetBench, String> {
    // Preplay serialization is deterministic at any worker count (the CE's
    // finalize pass, docs/PIPELINE.md), so digest-gated scenarios run
    // multi-worker like everything else.
    let executors = scale.system_executors.max(2);
    let plan = ScenarioBuilder::new(replicas)
        .smallbank(SmallBankConfig {
            accounts: scale.system_accounts,
            cross_shard_fraction: cross_shard,
            ..SmallBankConfig::default()
        })
        .executors(executors, scale.system_batch)
        .validators(2)
        .rounds(scale.system_rounds)
        .seed(BENCH_SEED)
        .lockstep()
        // Real-net rows measure the transport, not synthetic compute; the
        // synthetic op cost would burn real wall-clock time here.
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
        .build_real_net()
        .map_err(|err| format!("{scenario}: {err}"))?;
    let options = LaunchOptions {
        node_deadline: Duration::from_secs(60),
        check_sim_digest: digest_gate,
    };
    let outcome =
        run_real_net_scenario(&plan, &options).map_err(|err| format!("{scenario}: {err}"))?;
    let report = &outcome.observer;
    Ok(RealNetBench {
        scenario: scenario.to_string(),
        mode: ExecutionMode::Thunderbolt.label().to_string(),
        workload: report.workload.clone(),
        transport: "tcp".to_string(),
        replicas,
        committed_txs: report.committed_txs,
        single_shard_txs: report.single_shard_txs,
        cross_shard_txs: report.cross_shard_txs,
        throughput_tps: report.throughput_tps(),
        avg_latency_s: report.avg_latency_secs(),
        latency_p50_s: report.latency_p50_secs,
        latency_p99_s: report.latency_p99_secs,
        msgs_sent: report.msgs_sent,
        msgs_delivered: report.msgs_delivered,
        bytes_sent: report.bytes_sent,
        bytes_delivered: report.bytes_delivered,
        commit_order_digest: report.commit_order_digest.clone(),
        nodes_agree: outcome.nodes_agree,
        sim_digest_checked: outcome.sim_digest_checked,
        sim_digest_match: outcome.sim_digest_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            executor_accounts: 64,
            executor_txs: 64,
            system_accounts: 64,
            system_rounds: 6,
            system_batch: 32,
            system_executors: 2,
            op_cost_ns: 0,
        }
    }

    /// One shared `generate_with` run (the campaign is the expensive part in
    /// debug builds) exercised by every structural check below.
    #[test]
    fn generated_report_validates_end_to_end() {
        let report = generate_with(tiny_scale(), CampaignProfile::smoke());
        report.validate().expect("tiny report must validate");
        assert_eq!(report.engines.len(), 4);
        assert_eq!(report.clusters.len(), 5);
        let workloads: Vec<&str> = report
            .clusters
            .iter()
            .map(|c| c.workload.as_str())
            .collect();
        assert!(workloads.contains(&"smallbank"));
        assert!(workloads.contains(&"contract"));
        assert!(workloads.contains(&"kv-hot"));
        assert_eq!(report.schema_version, BENCH_REPORT_SCHEMA_VERSION);
        assert_eq!(report.schema_version, 7);
        // The subprocess-free generation path leaves real_net empty (the
        // bench_report binary fills it) and still validates.
        assert!(report.real_net.is_empty());

        // Schema v6: the executor-scaling sweep covers every worker count on
        // both workloads and the digests agree per workload — on this very
        // machine, whatever its core count (a single-core runner exercises
        // the clamp path; a multi-core runner exercises real interleaving).
        assert_eq!(
            report.executor_scaling.len(),
            2 * EXECUTOR_SCALING_WORKERS.len()
        );
        for workload in ["contended", "uncontended"] {
            let digests: Vec<&str> = report
                .executor_scaling
                .iter()
                .filter(|r| r.workload == workload)
                .map(|r| r.commit_digest.as_str())
                .collect();
            assert_eq!(digests.len(), EXECUTOR_SCALING_WORKERS.len());
            assert!(
                digests.iter().all(|d| *d == digests[0]),
                "{workload} digests diverged across the worker sweep: {digests:?}"
            );
        }

        // Schema v7: both backends ran the identical scenario, committed the
        // identical order, and the WAL row proves real recoverable work —
        // live apply counters, a measured apply stage, and a post-run
        // recovery that reproduced the run's digest.
        assert_eq!(report.storage.len(), 2);
        let mem = report.storage.iter().find(|r| r.backend == "mem").unwrap();
        let wal = report.storage.iter().find(|r| r.backend == "wal").unwrap();
        assert!(!mem.persistent);
        assert!(wal.persistent);
        assert_eq!(mem.commit_order_digest, wal.commit_order_digest);
        assert!(wal.committed_txs > 0);
        assert!(wal.coalesced_batches > 0, "wal applier never coalesced");
        assert!(wal.apply_calls > 0);
        assert!(wal.apply_busy_s > 0.0 && wal.apply_share > 0.0);
        assert!(
            wal.recovery_snapshot_loaded || wal.recovery_replayed_records > 0,
            "recovery found nothing on disk"
        );
        assert!(wal.recovery_digest_match);

        // Schema v4 stage-occupancy gates hold on the generated report: no
        // pipelined scenario has a dead applier. (The share ceilings are
        // validated too — validate() enforces them on every row whose
        // measured stage time clears MIN_OCCUPANCY_MEASURED_S; a tiny run's
        // milliseconds-long measurements are exempt by design, so the test
        // does not re-assert raw shares here.)
        for row in report.clusters.iter().filter(|c| c.mode != "Tusk") {
            assert!(
                row.pipeline.coalesced_batches > 0,
                "{}: applier never coalesced",
                row.scenario
            );
            assert!(row.pipeline.apply_calls > 0);
        }
        // ... and the silent-zero probe does not flag the live counters.
        let dead = report.silent_zero_counters();
        assert!(
            !dead.contains(&"pipeline.coalesced_batches"),
            "coalesced_batches rounds to zero across all scenarios again"
        );
        assert!(!dead.contains(&"pipeline.validate_share"));
        assert!(!dead.contains(&"pipeline.apply_calls"));
        assert!(
            report.campaigns.len() >= 6,
            "chaos campaign must cover at least 6 adversarial scenarios, got {}",
            report.campaigns.len()
        );
        assert!(report.campaigns.iter().all(|c| c.passed));

        // The report is serializable and the JSON is non-trivial.
        let json = crate::to_json(&report);
        assert!(json.contains("\"engines\""));
        assert!(json.contains("Thunderbolt"));
        assert!(json.contains("\"pipeline\""));
        assert!(json.contains("\"campaigns\""));
        assert!(json.contains("byz-tamper-writes"));
        assert!(json.contains("\"executor_scaling\""));
        assert!(json.contains("\"uncontended\""));
        assert!(json.contains("\"storage\""));
        assert!(json.contains("\"recovery_digest_match\""));

        // Validation rejects structurally broken variants of the same report.
        let mut broken = report.clone();
        broken.engines.retain(|e| e.engine != "Serial");
        assert!(broken.validate().is_err());
        let mut broken = report.clone();
        broken.clusters.clear();
        assert!(broken.validate().is_err());
        let mut broken = report.clone();
        broken.campaigns.truncate(3);
        assert!(broken.validate().is_err(), "fewer than 6 campaign rows");
        let mut broken = report.clone();
        broken.campaigns[0].passed = false;
        broken.campaigns[0]
            .failures
            .push("synthetic failure".to_string());
        assert!(broken.validate().is_err(), "a failed scenario must reject");
        // The share ceilings only arm once a row has enough measured stage
        // time (MIN_OCCUPANCY_MEASURED_S), so the broken variants clear the
        // floor explicitly — a tiny run's rows measure in milliseconds.
        let mut broken = report.clone();
        broken.clusters[0].pipeline.validate_busy_s = 1.0;
        broken.clusters[0].pipeline.validate_share = 0.95;
        assert!(
            broken.validate().is_err(),
            "validate_share past the ceiling"
        );
        let mut broken = report.clone();
        broken.clusters[0].pipeline.apply_busy_s = 1.0;
        broken.clusters[0].pipeline.apply_share = 0.75;
        assert!(broken.validate().is_err(), "apply_share past the ceiling");
        let mut broken = report.clone();
        broken.clusters[0].pipeline.validate_busy_s = 0.0;
        broken.clusters[0].pipeline.apply_busy_s = 0.0;
        broken.clusters[0].pipeline.execute_busy_s = 0.0;
        broken.clusters[0].pipeline.validate_share = 0.95;
        assert!(
            broken.validate().is_ok(),
            "share ceilings must stay disarmed below the measured-time floor"
        );
        // Schema v6 determinism gate: a digest that moves with the worker
        // count rejects the report, as does a truncated sweep.
        let mut broken = report.clone();
        broken.executor_scaling[1].commit_digest = "deadbeefdeadbeef".to_string();
        assert!(
            broken.validate().is_err(),
            "a worker-dependent digest must reject"
        );
        let mut broken = report.clone();
        broken.executor_scaling.truncate(3);
        assert!(broken.validate().is_err(), "a partial sweep must reject");
        // Schema v7 storage gates: a missing backend, a digest divergence, a
        // failed recovery verdict and a dead apply stage all reject.
        let mut broken = report.clone();
        broken.storage.retain(|r| r.backend != "wal");
        assert!(broken.validate().is_err(), "missing wal row must reject");
        let mut broken = report.clone();
        for row in broken.storage.iter_mut().filter(|r| r.backend == "wal") {
            row.commit_order_digest = "deadbeefdeadbeef".to_string();
        }
        assert!(
            broken.validate().is_err(),
            "a backend-dependent digest must reject"
        );
        let mut broken = report.clone();
        for row in broken.storage.iter_mut().filter(|r| r.backend == "wal") {
            row.recovery_digest_match = false;
        }
        assert!(
            broken.validate().is_err(),
            "a failed recovery verdict must reject"
        );
        let mut broken = report.clone();
        for row in broken.storage.iter_mut().filter(|r| r.backend == "wal") {
            row.apply_busy_s = 0.0;
            row.apply_share = 0.0;
        }
        assert!(
            broken.validate().is_err(),
            "a dead wal apply stage must reject"
        );
        // ... and a persistent backend whose apply_share rounds to zero is
        // no longer exempt from the silent-zero probe.
        let mut zeroed = report.clone();
        for row in zeroed.storage.iter_mut() {
            row.apply_share = 0.0;
        }
        assert!(
            zeroed
                .silent_zero_counters()
                .contains(&"storage.apply_share"),
            "persistent apply_share must be probed"
        );
        assert!(
            !report
                .silent_zero_counters()
                .contains(&"storage.apply_share"),
            "the live report's wal apply_share must not round to zero"
        );
        let mut broken = report.clone();
        for row in broken.clusters.iter_mut() {
            row.pipeline.coalesced_batches = 0;
        }
        assert!(broken.validate().is_err(), "dead applier must reject");
        assert!(
            broken
                .silent_zero_counters()
                .contains(&"pipeline.coalesced_batches"),
            "the silent-zero probe must flag an all-zero counter"
        );

        // Schema v5: a well-formed real-net row validates; rows recording a
        // digest disagreement or dead byte accounting reject the report.
        let real_net_row = RealNetBench {
            scenario: "real-net-smallbank-lan-n4".to_string(),
            mode: "Thunderbolt".to_string(),
            workload: "smallbank".to_string(),
            transport: "tcp".to_string(),
            replicas: 4,
            committed_txs: 1_000,
            single_shard_txs: 1_000,
            cross_shard_txs: 0,
            throughput_tps: 2_000.0,
            avg_latency_s: 0.05,
            latency_p50_s: 0.04,
            latency_p99_s: 0.2,
            msgs_sent: 500,
            msgs_delivered: 480,
            bytes_sent: 100_000,
            bytes_delivered: 96_000,
            commit_order_digest: "00aabbccddeeff11".to_string(),
            nodes_agree: true,
            sim_digest_checked: true,
            sim_digest_match: true,
        };
        let mut with_real_net = report.clone();
        with_real_net.real_net.push(real_net_row.clone());
        with_real_net
            .validate()
            .expect("well-formed real-net row must validate");
        let json = crate::to_json(&with_real_net);
        assert!(json.contains("\"real_net\""));
        assert!(json.contains("\"transport\""));
        let mut broken = with_real_net.clone();
        broken.real_net[0].nodes_agree = false;
        assert!(
            broken.validate().is_err(),
            "digest disagreement must reject"
        );
        let mut broken = with_real_net.clone();
        broken.real_net[0].sim_digest_match = false;
        assert!(
            broken.validate().is_err(),
            "sim-twin divergence must reject"
        );
        let mut broken = with_real_net.clone();
        broken.real_net[0].bytes_sent = 0;
        assert!(
            broken.validate().is_err(),
            "dead byte accounting must reject"
        );
        let mut broken = with_real_net.clone();
        broken.real_net[0].committed_txs = 0;
        assert!(broken.validate().is_err(), "empty real-net run must reject");
        // An unchecked sim digest is not a failure (cross-shard scenarios).
        let mut unchecked = with_real_net.clone();
        unchecked.real_net[0].sim_digest_checked = false;
        unchecked.real_net[0].sim_digest_match = false;
        unchecked
            .validate()
            .expect("unchecked sim digest is allowed");

        // Self-ratios are exactly 1 on every shared row.
        let ratios = report.throughput_ratios(&report);
        assert_eq!(ratios.len(), report.engines.len() + report.clusters.len());
        for (key, ratio) in ratios {
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "self-ratio for {key} is {ratio}"
            );
        }

        // The standalone campaign report shares schema + validation.
        let standalone = CampaignReport {
            schema_version: report.schema_version,
            generated_unix_ms: report.generated_unix_ms,
            scale: report.scale.clone(),
            campaigns: report.campaigns.clone(),
        };
        standalone
            .validate()
            .expect("campaign report must validate");
    }

    #[test]
    fn campaign_profile_tracks_the_scale_label() {
        assert_eq!(campaign_profile(Scale::smoke()), CampaignProfile::smoke());
        assert_eq!(campaign_profile(Scale::quick()), CampaignProfile::quick());
        assert_eq!(campaign_profile(tiny_scale()), CampaignProfile::quick());
    }
}
