//! Benchmark harness regenerating the paper's evaluation figures.
//!
//! Every figure of the evaluation (Sections 11 and 12) has a corresponding
//! binary (`fig11` … `fig17`, plus `all_figures`) that prints the same rows
//! or series the paper reports, and a Criterion bench exercising one
//! representative configuration. Absolute numbers differ from the paper —
//! the substrate is a laptop-scale simulation, not a 64-machine AWS cluster —
//! but the *shape* (which system wins, by roughly what factor, where the
//! crossover points are) is what the harness reproduces; see EXPERIMENTS.md.
//!
//! By default the harness runs scaled-down parameters so that
//! `cargo bench --workspace` and the figure binaries finish quickly. Set
//! `TB_BENCH_FULL=1` to use paper-scale parameters (more accounts, bigger
//! batches, more rounds — minutes instead of seconds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;

use serde::Serialize;
use tb_core::{ExecutionMode, RunReport, ScenarioBuilder};
use tb_executor::{
    BatchExecutor, ConcurrentExecutor, OccExecutor, SerialExecutor, TwoPlNoWaitExecutor,
};
use tb_network::FaultPlan;
use tb_storage::MemStore;
use tb_types::{CeConfig, LatencyModel, ReconfigConfig, SimTime};
use tb_workload::{SmallBankConfig, SmallBankWorkload};

/// Scaling profile of the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Number of SmallBank accounts for the executor experiments
    /// (paper: 10 000).
    pub executor_accounts: u64,
    /// Transactions executed per executor-experiment measurement.
    pub executor_txs: usize,
    /// Number of accounts for the system experiments (paper: 1 000).
    pub system_accounts: u64,
    /// DAG rounds per system experiment.
    pub system_rounds: u64,
    /// Batch size used by the system experiments (paper: 500).
    pub system_batch: usize,
    /// Executors per replica in the system experiments (paper: 16).
    pub system_executors: usize,
    /// Synthetic per-operation cost in nanoseconds (models EVM overhead).
    pub op_cost_ns: u64,
}

impl Scale {
    /// Scaled-down defaults used by CI and `cargo bench`.
    pub fn quick() -> Self {
        Scale {
            executor_accounts: 2_000,
            executor_txs: 2_000,
            system_accounts: 500,
            system_rounds: 12,
            system_batch: 200,
            system_executors: 4,
            op_cost_ns: 20_000,
        }
    }

    /// Paper-scale parameters (set `TB_BENCH_FULL=1`).
    pub fn full() -> Self {
        Scale {
            executor_accounts: 10_000,
            executor_txs: 20_000,
            system_accounts: 1_000,
            system_rounds: 30,
            system_batch: 500,
            system_executors: 16,
            op_cost_ns: 20_000,
        }
    }

    /// Minimal parameters for the CI `perf-smoke` job (set
    /// `TB_BENCH_SMOKE=1`): every engine and scenario still runs, but with
    /// batch counts sized for a shared single- or dual-core runner.
    pub fn smoke() -> Self {
        Scale {
            executor_accounts: 512,
            executor_txs: 512,
            system_accounts: 128,
            system_rounds: 8,
            system_batch: 64,
            system_executors: 2,
            op_cost_ns: 2_000,
        }
    }

    /// Reads the scale from the environment: `TB_BENCH_SMOKE=1` wins over
    /// `TB_BENCH_FULL=1`; the default is [`Scale::quick`].
    pub fn from_env() -> Self {
        let set = |name: &str| std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty());
        if set("TB_BENCH_SMOKE") {
            Scale::smoke()
        } else if set("TB_BENCH_FULL") {
            Scale::full()
        } else {
            Scale::quick()
        }
    }

    /// The label recorded in `BENCH_report.json`.
    pub fn label(&self) -> &'static str {
        if *self == Scale::smoke() {
            "smoke"
        } else if *self == Scale::full() {
            "full"
        } else {
            "quick"
        }
    }
}

/// One row of an executor experiment (Figures 11 and 12).
#[derive(Clone, Debug, Serialize)]
pub struct ExecRow {
    /// Engine label (Thunderbolt, OCC, 2PL-No-Wait).
    pub engine: String,
    /// Batch size used.
    pub batch: usize,
    /// Number of executor workers.
    pub executors: usize,
    /// Zipfian skew.
    pub theta: f64,
    /// Read fraction `Pr`.
    pub pr: f64,
    /// Measured throughput (transactions per second of wall-clock time).
    pub throughput_tps: f64,
    /// Average per-transaction latency in seconds.
    pub latency_s: f64,
    /// Average re-executions per transaction (the paper's abort metric).
    pub reexecutions_per_tx: f64,
}

/// Which executor engine to run in an executor experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The Thunderbolt concurrent executor.
    Thunderbolt,
    /// Optimistic concurrency control.
    Occ,
    /// Two-phase locking, no-wait.
    TwoPlNoWait,
    /// Serial in-order execution (the lower baseline).
    Serial,
}

impl Engine {
    /// The engines compared in Figures 11 and 12.
    pub const ALL: [Engine; 3] = [Engine::Thunderbolt, Engine::Occ, Engine::TwoPlNoWait];

    /// Every engine the perf-regression harness records, including the
    /// serial baseline (which the paper's figures omit).
    pub const BENCHED: [Engine; 4] = [
        Engine::Thunderbolt,
        Engine::Occ,
        Engine::TwoPlNoWait,
        Engine::Serial,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Thunderbolt => "Thunderbolt",
            Engine::Occ => "OCC",
            Engine::TwoPlNoWait => "2PL-No-Wait",
            Engine::Serial => "Serial",
        }
    }

    fn build(&self, config: CeConfig) -> Box<dyn BatchExecutor> {
        match self {
            Engine::Thunderbolt => Box::new(ConcurrentExecutor::new(config)),
            Engine::Occ => Box::new(OccExecutor::new(config)),
            Engine::TwoPlNoWait => Box::new(TwoPlNoWaitExecutor::new(config)),
            Engine::Serial => Box::new(SerialExecutor::from_config(&config)),
        }
    }
}

/// Runs one executor-experiment cell: `total_txs` SmallBank transactions in
/// batches of `batch`, with the given engine and parameters. Returns the
/// measured row.
#[allow(clippy::too_many_arguments)]
pub fn run_executor_cell(
    engine: Engine,
    executors: usize,
    batch: usize,
    theta: f64,
    pr: f64,
    accounts: u64,
    total_txs: usize,
    op_cost_ns: u64,
) -> ExecRow {
    let mut ce_config = CeConfig::new(executors, batch);
    ce_config.synthetic_op_cost_ns = op_cost_ns;
    let runner = engine.build(ce_config);

    let store = MemStore::new();
    let workload_config = SmallBankConfig {
        accounts,
        theta,
        pr_read: pr,
        n_shards: 1,
        ..SmallBankConfig::default()
    };
    let mut workload = SmallBankWorkload::new(workload_config);
    store.load(workload.initial_state());

    let mut committed = 0usize;
    let mut reexecutions = 0u64;
    let mut latency = 0.0f64;
    let mut elapsed = 0.0f64;
    let mut remaining = total_txs;
    while remaining > 0 {
        let size = batch.min(remaining);
        let txs = workload.batch(size, SimTime::ZERO);
        let result = runner.execute_batch(&txs, &store);
        committed += result.committed();
        reexecutions += result.reexecutions;
        latency += result.total_latency.as_secs_f64();
        elapsed += result.elapsed.as_secs_f64();
        remaining -= size;
    }
    ExecRow {
        engine: engine.label().to_string(),
        batch,
        executors,
        theta,
        pr,
        throughput_tps: if elapsed > 0.0 {
            committed as f64 / elapsed
        } else {
            0.0
        },
        latency_s: if committed > 0 {
            latency / committed as f64
        } else {
            0.0
        },
        reexecutions_per_tx: if committed > 0 {
            reexecutions as f64 / committed as f64
        } else {
            0.0
        },
    }
}

/// Parameters of one system experiment (Figures 13–17).
#[derive(Clone, Debug)]
pub struct SystemRun {
    /// Which system variant to run.
    pub mode: ExecutionMode,
    /// Number of replicas (and shards).
    pub replicas: u32,
    /// Fraction of cross-shard transactions (`P`).
    pub cross_shard: f64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Reconfiguration parameters (`K`, `K'`).
    pub reconfig: ReconfigConfig,
    /// Number of replicas to crash at time zero.
    pub crashed: u32,
    /// Harness scale.
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
}

impl SystemRun {
    /// A default Thunderbolt run on a LAN with no faults.
    pub fn new(mode: ExecutionMode, replicas: u32, scale: Scale) -> Self {
        SystemRun {
            mode,
            replicas,
            cross_shard: 0.0,
            latency: LatencyModel::lan(),
            reconfig: ReconfigConfig::disabled(),
            crashed: 0,
            scale,
            seed: 42,
        }
    }

    /// Executes the run and returns the report.
    pub fn run(&self) -> RunReport {
        let workload = SmallBankConfig {
            accounts: self.scale.system_accounts,
            n_shards: self.replicas,
            cross_shard_fraction: self.cross_shard,
            ..SmallBankConfig::default()
        };
        self.scenario().workload(workload).run()
    }

    /// The figure's system parameters as a [`ScenarioBuilder`], so callers
    /// can swap the workload (or any other knob) before running.
    pub fn scenario(&self) -> ScenarioBuilder {
        let faults = if self.crashed > 0 {
            FaultPlan::crash_replicas(self.replicas, self.crashed, SimTime::ZERO)
        } else {
            FaultPlan::none()
        };
        let op_cost_ns = self.scale.op_cost_ns;
        ScenarioBuilder::new(self.replicas)
            .engine(self.mode)
            .executors(self.scale.system_executors, self.scale.system_batch)
            .validators(self.scale.system_executors)
            .rounds(self.scale.system_rounds)
            .seed(self.seed)
            .latency(self.latency)
            .reconfig(self.reconfig)
            .faults(faults)
            .tune(|system| system.ce.synthetic_op_cost_ns = op_cost_ns)
    }
}

/// Prints a table of executor rows in the layout of Figures 11/12.
pub fn print_exec_rows(title: &str, rows: &[ExecRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:>6} {:>10} {:>6} {:>5} {:>12} {:>12} {:>10}",
        "engine", "batch", "executors", "theta", "Pr", "tps", "latency(s)", "re-exec/tx"
    );
    for row in rows {
        println!(
            "{:<14} {:>6} {:>10} {:>6.2} {:>5.2} {:>12.0} {:>12.5} {:>10.3}",
            row.engine,
            row.batch,
            row.executors,
            row.theta,
            row.pr,
            row.throughput_tps,
            row.latency_s,
            row.reexecutions_per_tx
        );
    }
}

/// Prints a table of system-run reports in the layout of Figures 13–17.
pub fn print_reports(title: &str, rows: &[(String, RunReport)]) {
    println!("\n== {title} ==");
    println!(
        "{:<36} {:>10} {:>12} {:>12} {:>8} {:>10}",
        "configuration", "replicas", "tps", "latency(s)", "reconf", "committed"
    );
    for (name, report) in rows {
        println!(
            "{:<36} {:>10} {:>12.0} {:>12.3} {:>8} {:>10}",
            name,
            report.replicas,
            report.throughput_tps(),
            report.avg_latency_secs(),
            report.reconfigurations,
            report.committed_txs
        );
    }
}

/// Serializes rows to JSON for EXPERIMENTS.md regeneration.
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("rows serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        std::env::remove_var("TB_BENCH_FULL");
        assert_eq!(Scale::from_env(), Scale::quick());
    }

    #[test]
    fn executor_cell_produces_positive_throughput() {
        let row = run_executor_cell(Engine::Thunderbolt, 2, 64, 0.85, 0.5, 128, 128, 0);
        assert!(row.throughput_tps > 0.0);
        assert_eq!(row.engine, "Thunderbolt");
        assert_eq!(row.batch, 64);
    }

    #[test]
    fn system_run_produces_a_report() {
        let mut scale = Scale::quick();
        scale.system_rounds = 6;
        scale.system_batch = 32;
        scale.system_executors = 2;
        scale.op_cost_ns = 0;
        scale.system_accounts = 64;
        let report = SystemRun::new(ExecutionMode::Thunderbolt, 4, scale).run();
        assert!(report.committed_txs > 0);
    }
}
