//! One entry point per evaluation figure.
//!
//! Each function sweeps the same parameter grid as the corresponding figure
//! in the paper (scaled by [`Scale`]) and prints the measured rows; the
//! `figNN` binaries and `all_figures` are thin wrappers around these
//! functions, and EXPERIMENTS.md records the measured shapes next to the
//! paper's numbers.

use crate::{print_exec_rows, print_reports, run_executor_cell, Engine, ExecRow, Scale, SystemRun};
use tb_core::{ExecutionMode, RunReport};
use tb_types::{LatencyModel, ReconfigConfig};

/// Figure 11: concurrent-executor throughput / latency / re-executions as a
/// function of the number of executors, for batch sizes 300 and 500, under a
/// read-write balanced (`Pr = 0.5`) and an update-only (`Pr = 0`) workload.
pub fn run_fig11(scale: Scale) -> Vec<ExecRow> {
    let executors = if scale == Scale::full() {
        vec![1usize, 4, 8, 12, 16]
    } else {
        vec![1usize, 4, 8]
    };
    let batches = [300usize, 500];
    let mut all_rows = Vec::new();
    for pr in [0.5, 0.0] {
        let mut rows = Vec::new();
        for &batch in &batches {
            for &n_exec in &executors {
                for engine in Engine::ALL {
                    rows.push(run_executor_cell(
                        engine,
                        n_exec,
                        batch,
                        0.85,
                        pr,
                        scale.executor_accounts,
                        scale.executor_txs,
                        scale.op_cost_ns,
                    ));
                }
            }
        }
        let title = if pr > 0.0 {
            "Figure 11a: read-write balanced workload (Pr = 0.5)"
        } else {
            "Figure 11b: update-only workload (Pr = 0)"
        };
        print_exec_rows(title, &rows);
        all_rows.extend(rows);
    }
    all_rows
}

/// Figure 12: throughput and latency while sweeping the Zipfian skew `θ`
/// (a, b) and the read fraction `Pr` (c, d).
pub fn run_fig12(scale: Scale) -> Vec<ExecRow> {
    let executors = if scale == Scale::full() { 12 } else { 8 };
    let batches: &[usize] = if scale == Scale::full() {
        &[300, 500]
    } else {
        &[500]
    };
    let mut all_rows = Vec::new();

    let mut theta_rows = Vec::new();
    for &batch in batches {
        for theta in [0.75, 0.8, 0.85, 0.9] {
            for engine in Engine::ALL {
                theta_rows.push(run_executor_cell(
                    engine,
                    executors,
                    batch,
                    theta,
                    0.5,
                    scale.executor_accounts,
                    scale.executor_txs,
                    scale.op_cost_ns,
                ));
            }
        }
    }
    print_exec_rows("Figure 12a/b: skew sweep (Pr = 0.5)", &theta_rows);
    all_rows.extend(theta_rows);

    let mut pr_rows = Vec::new();
    for &batch in batches {
        for pr in [1.0, 0.8, 0.5, 0.1, 0.0] {
            for engine in Engine::ALL {
                pr_rows.push(run_executor_cell(
                    engine,
                    executors,
                    batch,
                    0.85,
                    pr,
                    scale.executor_accounts,
                    scale.executor_txs,
                    scale.op_cost_ns,
                ));
            }
        }
    }
    print_exec_rows("Figure 12c/d: read-fraction sweep (theta = 0.85)", &pr_rows);
    all_rows.extend(pr_rows);
    all_rows
}

/// Figure 13: system throughput and latency as the committee grows, on LAN
/// and WAN, for Thunderbolt, Thunderbolt-OCC and Tusk. Also prints the
/// headline Thunderbolt-vs-Tusk speedup at the largest committee.
pub fn run_fig13(scale: Scale) -> Vec<(String, RunReport)> {
    let replica_counts: Vec<u32> = if scale == Scale::full() {
        vec![8, 16, 32, 64]
    } else {
        vec![4, 8, 16]
    };
    let mut rows = Vec::new();
    for (net_label, latency) in [("LAN", LatencyModel::lan()), ("WAN", LatencyModel::wan())] {
        for &n in &replica_counts {
            for mode in [
                ExecutionMode::Thunderbolt,
                ExecutionMode::ThunderboltOcc,
                ExecutionMode::Tusk,
            ] {
                let mut run = SystemRun::new(mode, n, scale);
                run.latency = latency;
                let report = run.run();
                rows.push((format!("{net_label} {} n={n}", mode.label()), report));
            }
        }
    }
    print_reports("Figure 13: scalability (LAN and WAN)", &rows);

    // Headline speedup: Thunderbolt vs Tusk at the largest LAN committee.
    let largest = *replica_counts.last().expect("non-empty");
    let tb = rows
        .iter()
        .find(|(l, _)| l == &format!("LAN Thunderbolt n={largest}"))
        .map(|(_, r)| r.throughput_tps())
        .unwrap_or(0.0);
    let tusk = rows
        .iter()
        .find(|(l, _)| l == &format!("LAN Tusk n={largest}"))
        .map(|(_, r)| r.throughput_tps())
        .unwrap_or(1.0);
    if tusk > 0.0 {
        println!(
            "\nHeadline: Thunderbolt / Tusk speedup at n={largest} (LAN): {:.1}x (paper reports ~50x at n=64)",
            tb / tusk
        );
    }
    rows
}

/// Figure 14: throughput and latency as the fraction of cross-shard
/// transactions grows, at a fixed committee size.
pub fn run_fig14(scale: Scale) -> Vec<(String, RunReport)> {
    let n = if scale == Scale::full() { 16 } else { 8 };
    let fractions = [0.0, 0.04, 0.08, 0.2, 0.6, 1.0];
    let mut rows = Vec::new();
    for mode in [
        ExecutionMode::Thunderbolt,
        ExecutionMode::ThunderboltOcc,
        ExecutionMode::Tusk,
    ] {
        for &p in &fractions {
            let mut run = SystemRun::new(mode, n, scale);
            run.cross_shard = p;
            let report = run.run();
            rows.push((format!("{} P={:.0}%", mode.label(), p * 100.0), report));
        }
    }
    print_reports(
        &format!("Figure 14: cross-shard transaction ratio (n = {n})"),
        &rows,
    );
    rows
}

/// Figure 15: throughput and latency for different reconfiguration periods
/// `K'` on a small committee.
pub fn run_fig15(scale: Scale) -> Vec<(String, RunReport)> {
    let n = 8;
    let periods: Vec<u64> = if scale == Scale::full() {
        vec![10, 100, 500, 1_000, 5_000]
    } else {
        vec![4, 8, 16, 1_000]
    };
    let mut rows = Vec::new();
    for &k_prime in &periods {
        let mut run = SystemRun::new(ExecutionMode::Thunderbolt, n, scale);
        run.reconfig = ReconfigConfig::new(k_prime.saturating_sub(1).max(1), k_prime);
        let report = run.run();
        rows.push((format!("Thunderbolt K'={k_prime}"), report));
    }
    print_reports("Figure 15: reconfiguration period sweep (n = 8)", &rows);
    rows
}

/// Figure 16: average commit-to-commit runtime per window of leader rounds
/// while reconfiguring periodically.
pub fn run_fig16(scale: Scale) -> Vec<(usize, f64)> {
    let mut run = SystemRun::new(ExecutionMode::Thunderbolt, 8, scale);
    let (k_prime, window) = if scale == Scale::full() {
        (300u64, 50usize)
    } else {
        (8u64, 4usize)
    };
    run.reconfig = ReconfigConfig::new(k_prime - 1, k_prime);
    let mut scaled = scale;
    scaled.system_rounds = if scale == Scale::full() { 1_300 } else { 40 };
    run.scale = scaled;
    let report = run.run();
    let series = report.per_round_runtime(window);
    println!("\n== Figure 16: per-round commit runtime (K' = {k_prime}) ==");
    println!("{:<16} {:>14}", "rounds (window)", "avg runtime (s)");
    for (end, avg) in &series {
        println!("{end:<16} {avg:>14.5}");
    }
    println!(
        "reconfigurations during the run: {} (consensus never stalled: {} leader commits)",
        report.reconfigurations,
        report.round_commits.len()
    );
    series
}

/// Figure 17: throughput and latency with `f` crashed replicas while the
/// cross-shard ratio grows.
pub fn run_fig17(scale: Scale) -> Vec<(String, RunReport)> {
    let n = if scale == Scale::full() { 16 } else { 8 };
    let fractions = [0.0, 0.2, 1.0];
    let crashes = [0u32, 1, 2];
    let mut rows = Vec::new();
    for &crashed in &crashes {
        for &p in &fractions {
            let mut run = SystemRun::new(ExecutionMode::Thunderbolt, n, scale);
            run.cross_shard = p;
            run.crashed = crashed;
            let report = run.run();
            let label = if crashed == 0 {
                format!("Thunderbolt P={:.0}%", p * 100.0)
            } else {
                format!("Thunderbolt/{crashed} P={:.0}%", p * 100.0)
            };
            rows.push((label, report));
        }
    }
    print_reports(
        &format!("Figure 17: crash faults under cross-shard load (n = {n})"),
        &rows,
    );
    rows
}
