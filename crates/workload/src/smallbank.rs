//! SmallBank workload generation.
//!
//! Mirrors the setup of the paper's evaluation (Sections 11.2 and 12):
//!
//! * a pool of accounts (10 000 for the executor experiments, 1 000 for the
//!   system experiments), each starting with a fixed balance,
//! * accounts selected with a Zipfian distribution of skew `θ`,
//! * `GetBalance` chosen with probability `Pr`, `SendPayment` otherwise,
//! * a fraction `P` of transactions designated cross-shard (a `SendPayment`
//!   whose two accounts live in different shards).
//!
//! The generator is deterministic for a fixed seed so experiments are
//! reproducible.

use crate::zipf::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tb_contracts::SMALLBANK_DEFAULT_BALANCE;
use tb_types::{
    ClientId, ContractCall, Key, ShardId, SimTime, SmallBankProcedure, Transaction, TxId, Value,
};

/// Configuration of the SmallBank workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmallBankConfig {
    /// Number of accounts in the pool.
    pub accounts: u64,
    /// Zipfian skew parameter `θ` (the paper focuses on `0.75..=0.9`).
    pub theta: f64,
    /// Probability of generating the read-only `GetBalance` (`Pr`).
    pub pr_read: f64,
    /// Fraction of transactions designated cross-shard (`P`, `0.0..=1.0`).
    /// Cross-shard transactions are `SendPayment`s whose two accounts live in
    /// different shards.
    pub cross_shard_fraction: f64,
    /// Number of shards in the system (used to steer cross-shard selection).
    pub n_shards: u32,
    /// Maximum transfer amount for `SendPayment`.
    pub max_amount: i64,
    /// Initial balance of every account (checking and savings each).
    pub initial_balance: i64,
    /// RNG seed.
    pub seed: u64,
}

/// Fixed default RNG seed so out-of-the-box runs are reproducible.
const DEFAULT_SEED: u64 = 0xB017_5EED;

impl Default for SmallBankConfig {
    fn default() -> Self {
        SmallBankConfig {
            accounts: 10_000,
            theta: 0.85,
            pr_read: 0.5,
            cross_shard_fraction: 0.0,
            n_shards: 4,
            max_amount: 100,
            initial_balance: SMALLBANK_DEFAULT_BALANCE,
            seed: DEFAULT_SEED,
        }
    }
}

impl SmallBankConfig {
    /// The executor-evaluation configuration (Section 11): 10 000 accounts,
    /// `θ = 0.85`.
    pub fn executor_eval(pr_read: f64) -> Self {
        SmallBankConfig {
            pr_read,
            ..SmallBankConfig::default()
        }
    }

    /// The system-evaluation configuration (Section 12): 1 000 accounts,
    /// `θ = 0.85`, `Pr = 0.5`.
    pub fn system_eval(n_shards: u32, cross_shard_fraction: f64) -> Self {
        SmallBankConfig {
            accounts: 1_000,
            n_shards,
            cross_shard_fraction,
            ..SmallBankConfig::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the skew parameter.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }
}

/// The initial state the workload expects: every account's checking and
/// savings balance set to `initial_balance`.
pub fn initial_smallbank_state(
    accounts: u64,
    initial_balance: i64,
) -> impl Iterator<Item = (Key, Value)> {
    (0..accounts).flat_map(move |a| {
        [
            (Key::checking(a), Value::int(initial_balance)),
            (Key::savings(a), Value::int(initial_balance)),
        ]
    })
}

/// A deterministic SmallBank transaction generator.
#[derive(Clone, Debug)]
pub struct SmallBankWorkload {
    config: SmallBankConfig,
    zipf: ZipfianGenerator,
    rng: StdRng,
    next_tx: u64,
}

impl SmallBankWorkload {
    /// Creates a workload generator.
    pub fn new(config: SmallBankConfig) -> Self {
        let seed = if config.seed == 0 {
            DEFAULT_SEED
        } else {
            config.seed
        };
        SmallBankWorkload {
            zipf: ZipfianGenerator::scrambled(config.accounts, config.theta),
            rng: StdRng::seed_from_u64(seed),
            next_tx: 0,
            config,
        }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &SmallBankConfig {
        &self.config
    }

    /// Number of transactions generated so far.
    pub fn generated(&self) -> u64 {
        self.next_tx
    }

    /// The initial store contents for this workload.
    pub fn initial_state(&self) -> impl Iterator<Item = (Key, Value)> {
        initial_smallbank_state(self.config.accounts, self.config.initial_balance)
    }

    fn pick_account(&mut self) -> u64 {
        self.zipf.next(&mut self.rng)
    }

    /// Picks a second account whose shard relation to `from` is `cross`
    /// (different shard when `true`, same shard when `false`).
    fn pick_partner(&mut self, from: u64, cross: bool) -> u64 {
        let n_shards = self.config.n_shards.max(1);
        let from_shard = Key::checking(from).shard(n_shards);
        // Rejection-sample from the Zipfian distribution so the partner
        // account keeps the configured skew; fall back to a deterministic
        // shift if the pool is too small to satisfy the constraint.
        for _ in 0..64 {
            let candidate = self.pick_account();
            if candidate == from {
                continue;
            }
            let candidate_shard = Key::checking(candidate).shard(n_shards);
            if (candidate_shard != from_shard) == cross {
                return candidate;
            }
        }
        let shift = if cross {
            // Next account in a different shard.
            1
        } else {
            // Same shard: jump a whole stripe of shards.
            u64::from(n_shards)
        };
        let candidate = (from + shift) % self.config.accounts;
        if candidate == from {
            (from + 1) % self.config.accounts
        } else {
            candidate
        }
    }

    /// Generates the next contract call according to the configured mix.
    pub fn next_call(&mut self) -> ContractCall {
        let cross = self.config.cross_shard_fraction > 0.0
            && self.rng.gen::<f64>() < self.config.cross_shard_fraction
            && self.config.n_shards > 1;
        if cross {
            // Cross-shard transactions are SendPayments between shards.
            let from = self.pick_account();
            let to = self.pick_partner(from, true);
            let amount = self.rng.gen_range(1..=self.config.max_amount);
            return ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount });
        }
        if self.rng.gen::<f64>() < self.config.pr_read {
            let account = self.pick_account();
            ContractCall::SmallBank(SmallBankProcedure::GetBalance { account })
        } else {
            let from = self.pick_account();
            let to = self.pick_partner(from, false);
            let amount = self.rng.gen_range(1..=self.config.max_amount);
            ContractCall::SmallBank(SmallBankProcedure::SendPayment { from, to, amount })
        }
    }

    /// Generates the next transaction, stamping it with a fresh id and the
    /// given submission time.
    pub fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        let call = self.next_call();
        let id = TxId::new(self.next_tx);
        self.next_tx += 1;
        let client = ClientId::new((id.as_inner() % 64) as u32);
        Transaction::new(id, client, call, self.config.n_shards, submitted_at)
    }

    /// Generates a batch of transactions with the same submission time.
    pub fn batch(&mut self, size: usize, submitted_at: SimTime) -> Vec<Transaction> {
        (0..size)
            .map(|_| self.next_transaction(submitted_at))
            .collect()
    }

    /// Generates a batch of transactions that all belong to `shard`
    /// (single-shard transactions for that shard). Used by shard proposers
    /// that pull from a per-shard client queue.
    pub fn batch_for_shard(
        &mut self,
        shard: ShardId,
        size: usize,
        submitted_at: SimTime,
    ) -> Vec<Transaction> {
        let mut out = Vec::with_capacity(size);
        let mut guard = 0usize;
        while out.len() < size && guard < size * 1_000 {
            guard += 1;
            let tx = self.next_transaction(submitted_at);
            if tx.shards.len() == 1 && tx.home_shard() == shard {
                out.push(tx);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::TxClass;

    fn workload(cfg: SmallBankConfig) -> SmallBankWorkload {
        SmallBankWorkload::new(cfg)
    }

    #[test]
    fn read_fraction_tracks_pr() {
        let mut w = workload(SmallBankConfig {
            pr_read: 0.8,
            accounts: 1_000,
            ..SmallBankConfig::default()
        });
        let total = 5_000;
        let reads = (0..total)
            .filter(|_| {
                matches!(
                    w.next_call(),
                    ContractCall::SmallBank(SmallBankProcedure::GetBalance { .. })
                )
            })
            .count();
        let fraction = reads as f64 / total as f64;
        assert!(
            (fraction - 0.8).abs() < 0.05,
            "read fraction {fraction} should be near 0.8"
        );
    }

    #[test]
    fn pr_zero_generates_no_reads() {
        let mut w = workload(SmallBankConfig {
            pr_read: 0.0,
            accounts: 100,
            ..SmallBankConfig::default()
        });
        for _ in 0..500 {
            assert!(matches!(
                w.next_call(),
                ContractCall::SmallBank(SmallBankProcedure::SendPayment { .. })
            ));
        }
    }

    #[test]
    fn cross_shard_fraction_controls_tx_class() {
        let cfg = SmallBankConfig::system_eval(16, 0.6);
        let mut w = workload(cfg);
        let total = 4_000;
        let cross = (0..total)
            .filter(|_| w.next_transaction(SimTime::ZERO).class() == TxClass::CrossShard)
            .count();
        let fraction = cross as f64 / total as f64;
        assert!(
            (fraction - 0.6).abs() < 0.05,
            "cross-shard fraction {fraction} should be near 0.6"
        );
    }

    #[test]
    fn zero_cross_shard_fraction_yields_only_single_shard() {
        let cfg = SmallBankConfig::system_eval(8, 0.0);
        let mut w = workload(cfg);
        for _ in 0..1_000 {
            let tx = w.next_transaction(SimTime::ZERO);
            assert_eq!(tx.class(), TxClass::SingleShard, "tx {tx} spans shards");
        }
    }

    #[test]
    fn full_cross_shard_fraction_yields_only_cross_shard() {
        let cfg = SmallBankConfig::system_eval(16, 1.0);
        let mut w = workload(cfg);
        for _ in 0..1_000 {
            let tx = w.next_transaction(SimTime::ZERO);
            assert_eq!(tx.class(), TxClass::CrossShard);
        }
    }

    #[test]
    fn transactions_get_unique_increasing_ids() {
        let mut w = workload(SmallBankConfig::default());
        let a = w.next_transaction(SimTime::ZERO);
        let b = w.next_transaction(SimTime::ZERO);
        assert!(a.id < b.id);
        assert_eq!(w.generated(), 2);
    }

    #[test]
    fn batch_for_shard_only_returns_matching_single_shard_txs() {
        let cfg = SmallBankConfig::system_eval(4, 0.0);
        let mut w = workload(cfg);
        let shard = ShardId::new(2);
        let batch = w.batch_for_shard(shard, 50, SimTime::ZERO);
        assert_eq!(batch.len(), 50);
        for tx in batch {
            assert_eq!(tx.class(), TxClass::SingleShard);
            assert_eq!(tx.home_shard(), shard);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SmallBankConfig::default().with_seed(7);
        let mut a = workload(cfg);
        let mut b = workload(cfg);
        for _ in 0..100 {
            assert_eq!(a.next_call(), b.next_call());
        }
    }

    #[test]
    fn initial_state_covers_every_account_twice() {
        let entries: Vec<_> = initial_smallbank_state(10, 500).collect();
        assert_eq!(entries.len(), 20);
        assert!(entries.iter().all(|(_, v)| *v == Value::int(500)));
    }

    #[test]
    fn executor_and_system_presets_match_the_paper() {
        let exec = SmallBankConfig::executor_eval(0.5);
        assert_eq!(exec.accounts, 10_000);
        assert!((exec.theta - 0.85).abs() < 1e-12);
        let sys = SmallBankConfig::system_eval(64, 0.08);
        assert_eq!(sys.accounts, 1_000);
        assert_eq!(sys.n_shards, 64);
        assert!((sys.cross_shard_fraction - 0.08).abs() < 1e-12);
    }
}
