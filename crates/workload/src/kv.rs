//! A Zipfian hot-key key-value workload.
//!
//! The SmallBank and contract workloads both wrap their state accesses in
//! application logic; this workload strips that away and stresses the
//! system with raw `<Read, K>` / `<Write, K, V>` operation lists
//! ([`ContractCall::KvOps`]) over a small pool of keys selected with a
//! *strongly* skewed Zipfian distribution. It models the hot-key regime the
//! paper's skewed cross-shard mixes probe: a handful of keys absorb most of
//! the traffic, so the concurrency controller's re-execution chains and the
//! cross-shard ordering path are exercised directly, without interpreter or
//! SmallBank overhead in the way.
//!
//! Transactions come in two shapes, chosen per transaction:
//!
//! * **read-only** — `ops_per_tx` reads (probability `read_fraction`),
//! * **update** — a read followed by a blind write per selected key.
//!
//! A `cross_shard_fraction` of transactions select their keys from at least
//! two different shards, mirroring the SmallBank generator's `P` parameter.

use crate::zipf::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tb_types::{ClientId, ContractCall, Key, Operation, SimTime, Transaction, TxId, Value};

/// Configuration of the hot-key KV workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KvWorkloadConfig {
    /// Number of keys in the pool.
    pub keys: u64,
    /// Zipfian skew over the keys. The default is deliberately hotter than
    /// the SmallBank setting (`0.99` vs `0.85`) — this workload exists to
    /// probe the hot-key regime.
    pub theta: f64,
    /// Probability that a transaction is read-only.
    pub read_fraction: f64,
    /// Keys touched per transaction.
    pub ops_per_tx: usize,
    /// Fraction of transactions whose keys span at least two shards.
    pub cross_shard_fraction: f64,
    /// Number of shards transactions are tagged for.
    pub n_shards: u32,
    /// Initial integer value stored under every key.
    pub initial_value: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvWorkloadConfig {
    fn default() -> Self {
        KvWorkloadConfig {
            keys: 1_000,
            theta: 0.99,
            read_fraction: 0.5,
            ops_per_tx: 2,
            cross_shard_fraction: 0.0,
            n_shards: 4,
            initial_value: 1_000,
            seed: 0x4B56_4B56, // "KVKV"
        }
    }
}

impl KvWorkloadConfig {
    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the skew parameter.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Overrides the cross-shard fraction.
    pub fn with_cross_shard(mut self, fraction: f64) -> Self {
        self.cross_shard_fraction = fraction;
        self
    }
}

/// A deterministic hot-key KV transaction generator.
#[derive(Clone, Debug)]
pub struct KvWorkload {
    config: KvWorkloadConfig,
    zipf: ZipfianGenerator,
    rng: StdRng,
    next_tx: u64,
}

impl KvWorkload {
    /// Creates a generator.
    pub fn new(config: KvWorkloadConfig) -> Self {
        KvWorkload {
            zipf: ZipfianGenerator::scrambled(config.keys.max(1), config.theta),
            rng: StdRng::seed_from_u64(config.seed),
            next_tx: 0,
            config,
        }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &KvWorkloadConfig {
        &self.config
    }

    /// Number of transactions generated so far.
    pub fn generated(&self) -> u64 {
        self.next_tx
    }

    /// Initial state: every key holds the configured integer value.
    pub fn initial_state(&self) -> Vec<(Key, Value)> {
        (0..self.config.keys)
            .map(|k| (Key::scratch(k), Value::int(self.config.initial_value)))
            .collect()
    }

    fn shard_of(&self, key: u64) -> u32 {
        Key::scratch(key)
            .shard(self.config.n_shards.max(1))
            .as_inner()
    }

    /// Picks a key whose shard relation to `anchor` is `cross` (different
    /// shard when `true`, same shard when `false`), keeping the Zipfian skew
    /// by rejection sampling with a deterministic fallback.
    fn pick_relative(&mut self, anchor: u64, cross: bool) -> u64 {
        let anchor_shard = self.shard_of(anchor);
        for _ in 0..64 {
            let candidate = self.zipf.next(&mut self.rng);
            if candidate == anchor {
                continue;
            }
            if (self.shard_of(candidate) != anchor_shard) == cross {
                return candidate;
            }
        }
        // Deterministic fallback: walk the pool until the shard relation
        // holds. A fixed stride of `n_shards` would break on wrap-around
        // whenever `keys % n_shards != 0` (shard is `row % n_shards`), so
        // every candidate is checked. Falls back to the anchor itself when
        // the pool cannot satisfy the relation (e.g. a same-shard partner
        // in a shard holding a single key) — a duplicate key keeps the
        // transaction's class intact, which is the guarantee that matters.
        let keys = self.config.keys.max(1);
        for step in 1..keys {
            let candidate = (anchor + step) % keys;
            if (self.shard_of(candidate) != anchor_shard) == cross {
                return candidate;
            }
        }
        anchor
    }

    /// Generates the next operation list according to the configured mix.
    pub fn next_call(&mut self) -> ContractCall {
        let cross = self.config.cross_shard_fraction > 0.0
            && self.config.n_shards > 1
            && self.rng.gen::<f64>() < self.config.cross_shard_fraction;
        let read_only = self.rng.gen::<f64>() < self.config.read_fraction;

        let per_tx = self.config.ops_per_tx.max(1);
        let mut keys = Vec::with_capacity(per_tx);
        let anchor = self.zipf.next(&mut self.rng);
        keys.push(anchor);
        for i in 1..per_tx {
            // The second key decides the transaction class: cross-shard
            // transactions place it in a different shard, single-shard
            // transactions keep every key in the anchor's shard.
            let want_cross = cross && i == 1;
            keys.push(self.pick_relative(anchor, want_cross));
        }

        let mut ops = Vec::with_capacity(per_tx * 2);
        for key in keys {
            let key = Key::scratch(key);
            ops.push(Operation::read(key));
            if !read_only {
                let value = self.rng.gen_range(0..1_000);
                ops.push(Operation::write(key, Value::int(value)));
            }
        }
        ContractCall::KvOps(ops)
    }

    /// Generates the next transaction, stamping it with a fresh id and the
    /// given submission time.
    pub fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        let call = self.next_call();
        let id = TxId::new(self.next_tx);
        self.next_tx += 1;
        Transaction::new(
            id,
            ClientId::new((id.as_inner() % 32) as u32),
            call,
            self.config.n_shards,
            submitted_at,
        )
    }

    /// Generates a batch of transactions with the same submission time.
    pub fn batch(&mut self, size: usize, submitted_at: SimTime) -> Vec<Transaction> {
        (0..size)
            .map(|_| self.next_transaction(submitted_at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_types::TxClass;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let config = KvWorkloadConfig::default().with_seed(11);
        let mut a = KvWorkload::new(config);
        let mut b = KvWorkload::new(config);
        assert_eq!(a.batch(200, SimTime::ZERO), b.batch(200, SimTime::ZERO));
        assert_eq!(a.generated(), 200);
    }

    #[test]
    fn read_fraction_controls_read_only_transactions() {
        let mut workload = KvWorkload::new(KvWorkloadConfig {
            read_fraction: 0.7,
            ..KvWorkloadConfig::default()
        });
        let total = 4_000;
        let read_only = (0..total)
            .filter(|_| workload.next_call().declared_read_only())
            .count();
        let fraction = read_only as f64 / total as f64;
        assert!(
            (fraction - 0.7).abs() < 0.05,
            "read-only fraction {fraction} should be near 0.7"
        );
    }

    #[test]
    fn cross_shard_fraction_controls_tx_class() {
        let mut workload = KvWorkload::new(KvWorkloadConfig {
            cross_shard_fraction: 0.4,
            n_shards: 8,
            ..KvWorkloadConfig::default()
        });
        let total = 4_000;
        let cross = (0..total)
            .filter(|_| workload.next_transaction(SimTime::ZERO).class() == TxClass::CrossShard)
            .count();
        let fraction = cross as f64 / total as f64;
        assert!(
            (fraction - 0.4).abs() < 0.05,
            "cross-shard fraction {fraction} should be near 0.4"
        );
    }

    #[test]
    fn zero_cross_shard_fraction_yields_only_single_shard() {
        let mut workload = KvWorkload::new(KvWorkloadConfig {
            cross_shard_fraction: 0.0,
            n_shards: 8,
            ops_per_tx: 3,
            ..KvWorkloadConfig::default()
        });
        for _ in 0..1_000 {
            let tx = workload.next_transaction(SimTime::ZERO);
            assert_eq!(tx.class(), TxClass::SingleShard, "tx {tx} spans shards");
        }
    }

    #[test]
    fn single_shard_guarantee_survives_awkward_pool_sizes() {
        // The deterministic fallback must respect the shard relation even
        // when the pool does not divide evenly into shards (shard is
        // `row % n_shards`, so a fixed stride breaks on wrap-around) and in
        // the degenerate one-key-per-shard pool.
        for (keys, n_shards) in [(100, 8), (13, 4), (8, 8)] {
            let mut workload = KvWorkload::new(KvWorkloadConfig {
                keys,
                n_shards,
                cross_shard_fraction: 0.0,
                ops_per_tx: 2,
                theta: 0.99,
                ..KvWorkloadConfig::default()
            });
            for _ in 0..2_000 {
                let tx = workload.next_transaction(SimTime::ZERO);
                assert_eq!(
                    tx.class(),
                    TxClass::SingleShard,
                    "tx {tx} spans shards with keys={keys} n_shards={n_shards}"
                );
            }
        }
    }

    #[test]
    fn skew_concentrates_traffic_on_few_keys() {
        let mut workload = KvWorkload::new(KvWorkloadConfig::default());
        let mut hits = std::collections::HashMap::new();
        for _ in 0..4_000 {
            if let ContractCall::KvOps(ops) = workload.next_call() {
                for op in ops {
                    *hits.entry(op.key()).or_insert(0u64) += 1;
                }
            }
        }
        let total: u64 = hits.values().sum();
        let mut counts: Vec<u64> = hits.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.3,
            "theta=0.99 should put >30% of traffic on the 10 hottest keys, got {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn initial_state_covers_the_key_pool() {
        let workload = KvWorkload::new(KvWorkloadConfig {
            keys: 32,
            initial_value: 5,
            ..KvWorkloadConfig::default()
        });
        let state = workload.initial_state();
        assert_eq!(state.len(), 32);
        assert!(state
            .iter()
            .all(|(k, v)| { k.space == tb_types::KeySpace::Scratch && *v == Value::int(5) }));
    }

    #[test]
    fn updates_read_before_writing_the_same_key() {
        let mut workload = KvWorkload::new(KvWorkloadConfig {
            read_fraction: 0.0,
            ..KvWorkloadConfig::default()
        });
        for _ in 0..200 {
            let ContractCall::KvOps(ops) = workload.next_call() else {
                panic!("KV workload must emit KvOps");
            };
            for pair in ops.chunks(2) {
                assert_eq!(pair.len(), 2);
                assert!(matches!(pair[0], Operation::Read { .. }));
                assert!(matches!(pair[1], Operation::Write { .. }));
                assert_eq!(pair[0].key(), pair[1].key());
            }
        }
    }
}
