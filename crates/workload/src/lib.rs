//! Workload generation for the Thunderbolt evaluation.
//!
//! The paper evaluates with the SmallBank benchmark: accounts are selected
//! with a Zipfian distribution (skew parameter `θ`), the read/write mix is
//! controlled by `Pr` (probability of the read-only `GetBalance`), and the
//! system evaluation additionally designates a percentage `P` of transactions
//! as cross-shard (Sections 11.2 and 12). This crate provides:
//!
//! * [`ZipfianGenerator`] — the YCSB-style Zipfian sampler (optionally
//!   scrambled so the hottest keys spread over all shards),
//! * [`SmallBankWorkload`] — a deterministic, seedable generator of SmallBank
//!   transactions following the paper's parameters,
//! * [`ContractWorkload`] — a mixed interpreter-program workload used by the
//!   examples and extension benchmarks,
//! * [`initial_smallbank_state`] — the initial balances loaded into every
//!   replica's store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod smallbank;
pub mod zipf;

pub use contract::{ContractWorkload, ContractWorkloadConfig};
pub use smallbank::{initial_smallbank_state, SmallBankConfig, SmallBankWorkload};
pub use zipf::ZipfianGenerator;
