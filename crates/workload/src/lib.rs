//! Workload generation for the Thunderbolt evaluation.
//!
//! The paper evaluates with the SmallBank benchmark: accounts are selected
//! with a Zipfian distribution (skew parameter `θ`), the read/write mix is
//! controlled by `Pr` (probability of the read-only `GetBalance`), and the
//! system evaluation additionally designates a percentage `P` of transactions
//! as cross-shard (Sections 11.2 and 12). This crate provides:
//!
//! * [`Workload`] — the scenario-facing trait every generator implements:
//!   a stable report name, the initial state, and a deterministic
//!   transaction stream with shard tagging,
//! * [`ZipfianGenerator`] — the YCSB-style Zipfian sampler (optionally
//!   scrambled so the hottest keys spread over all shards),
//! * [`SmallBankWorkload`] — a deterministic, seedable generator of SmallBank
//!   transactions following the paper's parameters,
//! * [`ContractWorkload`] — a mixed interpreter-program workload used by the
//!   examples and extension benchmarks,
//! * [`KvWorkload`] — a Zipfian hot-key read/write workload over raw
//!   operation lists,
//! * [`initial_smallbank_state`] — the initial balances loaded into every
//!   replica's store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod kv;
pub mod smallbank;
pub mod traits;
pub mod zipf;

pub use contract::{ContractWorkload, ContractWorkloadConfig};
pub use kv::{KvWorkload, KvWorkloadConfig};
pub use smallbank::{initial_smallbank_state, SmallBankConfig, SmallBankWorkload};
pub use traits::Workload;
pub use zipf::ZipfianGenerator;
