//! Zipfian sampling (YCSB style).
//!
//! The evaluation selects SmallBank accounts with a Zipfian distribution and
//! controls contention through the skew parameter `θ` (the paper uses
//! `θ = 0.85` for its high-contention workloads and sweeps `0.75..=0.9` in
//! Figure 12). This is the standard Gray et al. / YCSB generator with the
//! optional FNV-style scrambling that spreads the hottest items over the key
//! space (and therefore over all shards).

use rand::Rng;

/// A Zipfian distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scrambled: bool,
}

impl ZipfianGenerator {
    /// Creates a generator over `0..n` with skew `theta` (`0 <= theta < 1`).
    /// Higher `theta` means more skew; `theta = 0` degenerates to uniform.
    pub fn new(n: u64, theta: f64) -> Self {
        Self::build(n, theta, false)
    }

    /// Creates a *scrambled* generator: ranks are hashed so the most popular
    /// items are spread over the whole domain instead of clustering at 0.
    pub fn scrambled(n: u64, theta: f64) -> Self {
        Self::build(n, theta, true)
    }

    fn build(n: u64, theta: f64, scrambled: bool) -> Self {
        assert!(n > 0, "the Zipfian domain must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfianGenerator {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scrambled,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples the next value in `0..n`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scrambled {
            scramble(rank) % self.n
        } else {
            rank
        }
    }
}

/// FNV-1a-style integer scrambling.
fn scramble(value: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(gen: &ZipfianGenerator, samples: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; gen.domain() as usize];
        for _ in 0..samples {
            counts[gen.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_domain() {
        let gen = ZipfianGenerator::new(100, 0.85);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(gen.next(&mut rng) < 100);
        }
        assert_eq!(gen.domain(), 100);
        assert!((gen.theta() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn higher_theta_concentrates_mass_on_the_hottest_item() {
        let low = ZipfianGenerator::new(1_000, 0.5);
        let high = ZipfianGenerator::new(1_000, 0.9);
        let low_hist = histogram(&low, 50_000, 7);
        let high_hist = histogram(&high, 50_000, 7);
        let low_top = *low_hist.iter().max().unwrap();
        let high_top = *high_hist.iter().max().unwrap();
        assert!(
            high_top > low_top,
            "theta=0.9 should be more skewed than theta=0.5 ({high_top} <= {low_top})"
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let gen = ZipfianGenerator::new(10, 0.0);
        let hist = histogram(&gen, 100_000, 3);
        let max = *hist.iter().max().unwrap() as f64;
        let min = *hist.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "uniform histogram too skewed: {hist:?}");
    }

    #[test]
    fn unscrambled_zipfian_prefers_low_ranks() {
        let gen = ZipfianGenerator::new(1_000, 0.85);
        let hist = histogram(&gen, 50_000, 11);
        let first_ten: u64 = hist[..10].iter().sum();
        let total: u64 = hist.iter().sum();
        assert!(
            first_ten as f64 > total as f64 * 0.2,
            "the 1% hottest keys should draw >20% of accesses"
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_the_hot_keys() {
        let gen = ZipfianGenerator::scrambled(1_000, 0.85);
        let hist = histogram(&gen, 50_000, 11);
        let first_ten: u64 = hist[..10].iter().sum();
        let total: u64 = hist.iter().sum();
        // The first ten ranks are no longer special once scrambled.
        assert!((first_ten as f64) < total as f64 * 0.2);
        // But the distribution is still skewed: some key is much hotter than
        // the mean.
        let max = *hist.iter().max().unwrap() as f64;
        assert!(max > (total as f64 / 1_000.0) * 5.0);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = ZipfianGenerator::new(500, 0.8);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| gen.next(&mut a)).collect();
        let ys: Vec<u64> = (0..100).map(|_| gen.next(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_is_rejected() {
        let _ = ZipfianGenerator::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn theta_one_is_rejected() {
        let _ = ZipfianGenerator::new(10, 1.0);
    }
}
