//! The scenario-facing [`Workload`] abstraction.
//!
//! The cluster simulation (and any other driver) talks to workloads through
//! this trait instead of naming a concrete benchmark: a workload knows its
//! stable report name, the initial store contents it expects, and how to
//! produce the next transaction of a deterministic, seedable stream. Shard
//! tagging happens inside the generator — every produced [`Transaction`]
//! carries the shards derived from its declared keys, so the driver can
//! route it without knowing what benchmark it came from.
//!
//! Concrete workloads ([`SmallBankWorkload`], [`ContractWorkload`],
//! [`KvWorkload`]) implement the trait, and their config structs convert
//! into `Box<dyn Workload>` so call sites can pass either a ready generator
//! or just its configuration:
//!
//! ```
//! use tb_workload::{SmallBankConfig, Workload};
//!
//! let mut workload: Box<dyn Workload> = SmallBankConfig::default().into();
//! workload.configure_for_cluster(4, 42);
//! let tx = workload.next_transaction(tb_types::SimTime::ZERO);
//! assert!(!tx.shards.is_empty());
//! ```

use crate::contract::{ContractWorkload, ContractWorkloadConfig};
use crate::kv::{KvWorkload, KvWorkloadConfig};
use crate::smallbank::{SmallBankConfig, SmallBankWorkload};
use tb_types::{Key, SimTime, Transaction, Value};

/// A deterministic, seedable transaction generator a scenario can run.
///
/// Implementations must be deterministic for a fixed configuration: two
/// generators built from the same config produce identical streams. This is
/// what makes scenario reports comparable run over run and what the
/// SmallBank digest-equivalence test pins down.
pub trait Workload: Send {
    /// Stable name recorded in run reports (`RunReport::workload`) and in
    /// `BENCH_report.json` scenario rows.
    fn name(&self) -> &str;

    /// The number of shards produced transactions are tagged with.
    fn n_shards(&self) -> u32;

    /// Adapts the generator to a cluster: transactions are tagged for
    /// `n_shards` shards and `cluster_seed` is folded into the workload's
    /// own seed (so two clusters with different seeds see different
    /// streams). Called once by the simulation before the run starts;
    /// implementations reset their stream.
    fn configure_for_cluster(&mut self, n_shards: u32, cluster_seed: u64);

    /// The initial store contents every replica loads before the run.
    fn initial_state(&self) -> Vec<(Key, Value)>;

    /// Generates the next transaction, stamped with the given submission
    /// time.
    fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction;

    /// Generates a batch of transactions with the same submission time.
    fn batch(&mut self, size: usize, submitted_at: SimTime) -> Vec<Transaction> {
        (0..size)
            .map(|_| self.next_transaction(submitted_at))
            .collect()
    }
}

impl Workload for SmallBankWorkload {
    fn name(&self) -> &str {
        "smallbank"
    }

    fn n_shards(&self) -> u32 {
        self.config().n_shards
    }

    fn configure_for_cluster(&mut self, n_shards: u32, cluster_seed: u64) {
        // Exactly the transformation the pre-trait cluster harness applied
        // to its hardwired `SmallBankConfig`, so the boxed path generates
        // the identical stream (see `tests/scenario_equivalence.rs`).
        let mut config = *self.config();
        config.n_shards = n_shards;
        config.seed = config.seed.wrapping_add(cluster_seed);
        *self = SmallBankWorkload::new(config);
    }

    fn initial_state(&self) -> Vec<(Key, Value)> {
        SmallBankWorkload::initial_state(self).collect()
    }

    fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        SmallBankWorkload::next_transaction(self, submitted_at)
    }
}

impl Workload for ContractWorkload {
    fn name(&self) -> &str {
        "contract"
    }

    fn n_shards(&self) -> u32 {
        self.config().n_shards
    }

    fn configure_for_cluster(&mut self, n_shards: u32, cluster_seed: u64) {
        let mut config = *self.config();
        config.n_shards = n_shards;
        config.seed = config.seed.wrapping_add(cluster_seed);
        *self = ContractWorkload::new(config);
    }

    fn initial_state(&self) -> Vec<(Key, Value)> {
        ContractWorkload::initial_state(self)
    }

    fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        ContractWorkload::next_transaction(self, submitted_at)
    }
}

impl Workload for KvWorkload {
    fn name(&self) -> &str {
        "kv-hot"
    }

    fn n_shards(&self) -> u32 {
        self.config().n_shards
    }

    fn configure_for_cluster(&mut self, n_shards: u32, cluster_seed: u64) {
        let mut config = *self.config();
        config.n_shards = n_shards;
        config.seed = config.seed.wrapping_add(cluster_seed);
        *self = KvWorkload::new(config);
    }

    fn initial_state(&self) -> Vec<(Key, Value)> {
        KvWorkload::initial_state(self)
    }

    fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        KvWorkload::next_transaction(self, submitted_at)
    }
}

impl From<SmallBankConfig> for Box<dyn Workload> {
    fn from(config: SmallBankConfig) -> Self {
        Box::new(SmallBankWorkload::new(config))
    }
}

impl From<ContractWorkloadConfig> for Box<dyn Workload> {
    fn from(config: ContractWorkloadConfig) -> Self {
        Box::new(ContractWorkload::new(config))
    }
}

impl From<KvWorkloadConfig> for Box<dyn Workload> {
    fn from(config: KvWorkloadConfig) -> Self {
        Box::new(KvWorkload::new(config))
    }
}

impl From<SmallBankWorkload> for Box<dyn Workload> {
    fn from(workload: SmallBankWorkload) -> Self {
        Box::new(workload)
    }
}

impl From<ContractWorkload> for Box<dyn Workload> {
    fn from(workload: ContractWorkload) -> Self {
        Box::new(workload)
    }
}

impl From<KvWorkload> for Box<dyn Workload> {
    fn from(workload: KvWorkload) -> Self {
        Box::new(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_smallbank_matches_the_hardwired_generator_stream() {
        // The legacy cluster harness mutated the config before constructing
        // the generator; configure_for_cluster must reproduce that exactly.
        let base = SmallBankConfig {
            accounts: 128,
            ..SmallBankConfig::default()
        };
        let mut legacy_config = base;
        legacy_config.n_shards = 4;
        legacy_config.seed = legacy_config.seed.wrapping_add(42);
        let mut legacy = SmallBankWorkload::new(legacy_config);

        let mut boxed: Box<dyn Workload> = base.into();
        boxed.configure_for_cluster(4, 42);

        for _ in 0..500 {
            assert_eq!(
                SmallBankWorkload::next_transaction(&mut legacy, SimTime::ZERO),
                boxed.next_transaction(SimTime::ZERO)
            );
        }
    }

    #[test]
    fn every_workload_reports_a_stable_name_and_shard_count() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            SmallBankConfig::default().into(),
            ContractWorkloadConfig::default().into(),
            KvWorkloadConfig::default().into(),
        ];
        let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["smallbank", "contract", "kv-hot"]);
        for mut workload in workloads {
            workload.configure_for_cluster(8, 7);
            assert_eq!(workload.n_shards(), 8);
            assert!(!workload.initial_state().is_empty());
        }
    }

    #[test]
    fn trait_batches_respect_the_requested_size_and_tag_shards() {
        let mut workload: Box<dyn Workload> = KvWorkloadConfig::default().into();
        workload.configure_for_cluster(4, 1);
        let batch = Workload::batch(workload.as_mut(), 50, SimTime::ZERO);
        assert_eq!(batch.len(), 50);
        for tx in &batch {
            assert!(!tx.shards.is_empty(), "{tx} carries no shard tags");
            assert!(tx.shards.iter().all(|s| s.as_inner() < 4));
        }
    }

    #[test]
    fn configure_resets_the_stream_deterministically() {
        let mut a: Box<dyn Workload> = ContractWorkloadConfig::default().into();
        let mut b: Box<dyn Workload> = ContractWorkloadConfig::default().into();
        // Advance one stream before configuring: configure must reset it.
        let _ = a.batch(10, SimTime::ZERO);
        a.configure_for_cluster(4, 9);
        b.configure_for_cluster(4, 9);
        assert_eq!(a.batch(20, SimTime::ZERO), b.batch(20, SimTime::ZERO));
    }
}
