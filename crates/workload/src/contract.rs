//! A mixed interpreter-contract workload.
//!
//! The paper motivates Thunderbolt with Turing-complete contracts whose
//! access patterns are only known at run time. This workload exercises that
//! property directly: it mixes token transfers, counter updates and
//! *indirect* accesses (a pointer slot is read and the referenced slot is
//! updated), so no static analysis of the call parameters can predict the
//! write set. It is used by the `cross_shard_contention` example and the
//! extension benchmarks.

use crate::zipf::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tb_contracts::ProgramBuilder;
use tb_types::{ClientId, ContractCall, Key, SimTime, Transaction, TxId, Value};

/// Configuration of the contract workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContractWorkloadConfig {
    /// Number of token/counter slots.
    pub slots: u64,
    /// Zipfian skew over the slots.
    pub theta: f64,
    /// Fraction of calls that are indirect (pointer-chasing) updates.
    pub indirect_fraction: f64,
    /// Fraction of calls that are plain counter increments.
    pub counter_fraction: f64,
    /// Number of shards (for routing).
    pub n_shards: u32,
    /// Initial token balance per slot.
    pub initial_balance: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContractWorkloadConfig {
    fn default() -> Self {
        ContractWorkloadConfig {
            slots: 1_000,
            theta: 0.8,
            indirect_fraction: 0.2,
            counter_fraction: 0.2,
            n_shards: 4,
            initial_balance: 1_000,
            seed: 0xC0DE,
        }
    }
}

/// Generator of interpreter-program transactions.
#[derive(Clone, Debug)]
pub struct ContractWorkload {
    config: ContractWorkloadConfig,
    zipf: ZipfianGenerator,
    rng: StdRng,
    next_tx: u64,
    transfer_code: Vec<u8>,
    counter_code: Vec<u8>,
    indirect_code: Vec<u8>,
}

impl ContractWorkload {
    /// Creates a generator.
    pub fn new(config: ContractWorkloadConfig) -> Self {
        ContractWorkload {
            zipf: ZipfianGenerator::scrambled(config.slots, config.theta),
            rng: StdRng::seed_from_u64(config.seed),
            next_tx: 0,
            transfer_code: ProgramBuilder::token_transfer().into_bytes(),
            counter_code: ProgramBuilder::counter_add().into_bytes(),
            indirect_code: ProgramBuilder::indirect_touch().into_bytes(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ContractWorkloadConfig {
        &self.config
    }

    /// Initial state: every slot holds the initial balance and every pointer
    /// slot (`slots..2*slots`) points at a random slot.
    pub fn initial_state(&self) -> Vec<(Key, Value)> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xFFFF);
        let mut out = Vec::with_capacity(self.config.slots as usize * 2);
        for slot in 0..self.config.slots {
            out.push((Key::contract(slot), Value::int(self.config.initial_balance)));
        }
        for pointer in self.config.slots..self.config.slots * 2 {
            let target = rng.gen_range(0..self.config.slots);
            out.push((Key::contract(pointer), Value::int(target as i64)));
        }
        out
    }

    fn pick_slot(&mut self) -> u64 {
        self.zipf.next(&mut self.rng)
    }

    /// Generates the next contract call.
    pub fn next_call(&mut self) -> ContractCall {
        let roll: f64 = self.rng.gen();
        if roll < self.config.indirect_fraction {
            let pointer = self.config.slots + self.pick_slot();
            let delta = self.rng.gen_range(1..=10);
            ContractCall::Program {
                code: self.indirect_code.clone(),
                args: vec![pointer as i64, delta],
                declared_keys: vec![Key::contract(pointer)],
            }
        } else if roll < self.config.indirect_fraction + self.config.counter_fraction {
            let slot = self.pick_slot();
            ContractCall::Program {
                code: self.counter_code.clone(),
                args: vec![slot as i64, 1],
                declared_keys: vec![Key::contract(slot)],
            }
        } else {
            let from = self.pick_slot();
            let mut to = self.pick_slot();
            if to == from {
                to = (to + 1) % self.config.slots;
            }
            let amount = self.rng.gen_range(1..=10);
            ContractCall::Program {
                code: self.transfer_code.clone(),
                args: vec![from as i64, to as i64, amount],
                declared_keys: vec![Key::contract(from), Key::contract(to)],
            }
        }
    }

    /// Generates the next transaction.
    pub fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        let call = self.next_call();
        let id = TxId::new(self.next_tx);
        self.next_tx += 1;
        Transaction::new(
            id,
            ClientId::new((id.as_inner() % 16) as u32),
            call,
            self.config.n_shards,
            submitted_at,
        )
    }

    /// Generates a batch of transactions.
    pub fn batch(&mut self, size: usize, submitted_at: SimTime) -> Vec<Transaction> {
        (0..size)
            .map(|_| self.next_transaction(submitted_at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_are_respected() {
        let cfg = ContractWorkloadConfig {
            indirect_fraction: 0.5,
            counter_fraction: 0.25,
            ..ContractWorkloadConfig::default()
        };
        let mut w = ContractWorkload::new(cfg);
        let mut indirect = 0;
        let mut counter = 0;
        let mut transfer = 0;
        for _ in 0..2_000 {
            match w.next_call() {
                ContractCall::Program { args, .. } if args.len() == 2 => {
                    // counter_add and indirect_touch both take two args;
                    // distinguish by the pointer offset.
                    if args[0] as u64 >= cfg.slots {
                        indirect += 1;
                    } else {
                        counter += 1;
                    }
                }
                ContractCall::Program { args, .. } if args.len() == 3 => transfer += 1,
                other => panic!("unexpected call {other:?}"),
            }
        }
        assert!((indirect as f64 / 2_000.0 - 0.5).abs() < 0.06);
        assert!((counter as f64 / 2_000.0 - 0.25).abs() < 0.06);
        assert!((transfer as f64 / 2_000.0 - 0.25).abs() < 0.06);
    }

    #[test]
    fn initial_state_has_slots_and_pointers() {
        let cfg = ContractWorkloadConfig {
            slots: 10,
            ..ContractWorkloadConfig::default()
        };
        let w = ContractWorkload::new(cfg);
        let state = w.initial_state();
        assert_eq!(state.len(), 20);
        // Pointer slots point inside the slot range.
        for (k, v) in &state[10..] {
            assert!(k.row >= 10);
            assert!((0..10).contains(&v.as_int()));
        }
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let cfg = ContractWorkloadConfig::default();
        let mut a = ContractWorkload::new(cfg);
        let mut b = ContractWorkload::new(cfg);
        let ba = a.batch(50, SimTime::ZERO);
        let bb = b.batch(50, SimTime::ZERO);
        assert_eq!(ba, bb);
    }
}
