//! Local storage of one DAG instance.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use tb_types::{Committee, DagId, Digest, ReplicaId, Round, Vertex};

/// Errors raised when inserting vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The vertex belongs to a different DAG instance.
    WrongDag {
        /// DAG id the store manages.
        expected: DagId,
        /// DAG id carried by the vertex.
        got: DagId,
    },
    /// The vertex's round precedes the DAG's start round.
    BeforeStart {
        /// First round of this DAG.
        start: Round,
        /// Round carried by the vertex.
        got: Round,
    },
    /// A parent certificate is unknown; the caller must fetch and insert the
    /// causal history first (the validity property of Section 2).
    MissingParent {
        /// The missing parent digest.
        parent: Digest,
    },
    /// The author already has a vertex in this round (equivocation or a
    /// duplicate delivery); the insert is rejected.
    DuplicateAuthor {
        /// The authoring replica.
        author: ReplicaId,
        /// The round in question.
        round: Round,
    },
    /// The vertex certificate does not carry a valid quorum.
    InvalidCertificate,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::WrongDag { expected, got } => {
                write!(f, "vertex belongs to {got}, store manages {expected}")
            }
            DagError::BeforeStart { start, got } => {
                write!(f, "vertex round {got} precedes DAG start {start}")
            }
            DagError::MissingParent { parent } => {
                write!(f, "missing parent certificate {}", parent.short())
            }
            DagError::DuplicateAuthor { author, round } => {
                write!(f, "{author} already proposed in {round}")
            }
            DagError::InvalidCertificate => write!(f, "certificate lacks a quorum"),
        }
    }
}

impl std::error::Error for DagError {}

/// The local view of one DAG instance.
#[derive(Clone, Debug)]
pub struct DagStore {
    committee: Committee,
    dag: DagId,
    start_round: Round,
    vertices: HashMap<Digest, Vertex>,
    by_round: BTreeMap<Round, HashMap<ReplicaId, Digest>>,
}

impl DagStore {
    /// Creates an empty store for DAG `dag` starting at `start_round`.
    pub fn new(committee: Committee, dag: DagId, start_round: Round) -> Self {
        DagStore {
            committee,
            dag,
            start_round,
            vertices: HashMap::new(),
            by_round: BTreeMap::new(),
        }
    }

    /// The committee this DAG runs over.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// The DAG instance id.
    pub fn dag_id(&self) -> DagId {
        self.dag
    }

    /// The first round of this DAG instance.
    pub fn start_round(&self) -> Round {
        self.start_round
    }

    /// Number of vertices stored.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the store holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Inserts a certified vertex after validating it against the local view.
    pub fn insert(&mut self, vertex: Vertex) -> Result<Digest, DagError> {
        if vertex.dag() != self.dag {
            return Err(DagError::WrongDag {
                expected: self.dag,
                got: vertex.dag(),
            });
        }
        if vertex.round() < self.start_round {
            return Err(DagError::BeforeStart {
                start: self.start_round,
                got: vertex.round(),
            });
        }
        if !vertex.certificate.is_valid(&self.committee) {
            return Err(DagError::InvalidCertificate);
        }
        // Vertices in the first round of a DAG have no parents; all others
        // must reference certificates we already hold (validity property).
        if vertex.round() > self.start_round {
            for parent in vertex.parents() {
                if !self.vertices.contains_key(parent) {
                    return Err(DagError::MissingParent { parent: *parent });
                }
            }
        }
        let id = vertex.id();
        if self.vertices.contains_key(&id) {
            return Ok(id); // idempotent re-insert
        }
        let slot = self.by_round.entry(vertex.round()).or_default();
        if slot.contains_key(&vertex.author()) {
            return Err(DagError::DuplicateAuthor {
                author: vertex.author(),
                round: vertex.round(),
            });
        }
        slot.insert(vertex.author(), id);
        self.vertices.insert(id, vertex);
        Ok(id)
    }

    /// Looks a vertex up by digest.
    pub fn get(&self, id: &Digest) -> Option<&Vertex> {
        self.vertices.get(id)
    }

    /// True if the vertex is present.
    pub fn contains(&self, id: &Digest) -> bool {
        self.vertices.contains_key(id)
    }

    /// The vertex proposed by `author` in `round`, if any.
    pub fn by_author_round(&self, author: ReplicaId, round: Round) -> Option<&Vertex> {
        self.by_round
            .get(&round)
            .and_then(|slot| slot.get(&author))
            .and_then(|id| self.vertices.get(id))
    }

    /// All vertices of a round, ordered by author.
    pub fn at_round(&self, round: Round) -> Vec<&Vertex> {
        let Some(slot) = self.by_round.get(&round) else {
            return Vec::new();
        };
        let mut authors: Vec<_> = slot.keys().copied().collect();
        authors.sort_unstable();
        authors
            .into_iter()
            .filter_map(|a| self.vertices.get(&slot[&a]))
            .collect()
    }

    /// Digests of all vertices of a round (the certificates a proposer of the
    /// next round references as parents), ordered by author.
    pub fn certificates_at_round(&self, round: Round) -> Vec<Digest> {
        self.at_round(round).iter().map(|v| v.id()).collect()
    }

    /// Number of distinct authors with a vertex in `round`.
    pub fn authors_at_round(&self, round: Round) -> usize {
        self.by_round.get(&round).map_or(0, |slot| slot.len())
    }

    /// True when the round holds a `2f + 1` quorum of vertices, i.e. a
    /// proposer may advance to the next round.
    pub fn round_has_quorum(&self, round: Round) -> bool {
        self.authors_at_round(round) >= self.committee.quorum_threshold()
    }

    /// The highest round with at least one vertex.
    pub fn highest_round(&self) -> Round {
        self.by_round
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.start_round)
    }

    /// Number of vertices in `round` that reference `target` as a parent
    /// (the "support" used by the commit rule).
    pub fn support(&self, target: &Digest, round: Round) -> usize {
        self.at_round(round)
            .iter()
            .filter(|v| v.parents().contains(target))
            .count()
    }

    /// Every vertex reachable from `from` through parent references,
    /// including `from` itself. The result is sorted by `(round, author)`,
    /// which is the deterministic delivery order used at commit time.
    pub fn causal_history(&self, from: &Digest) -> Vec<Digest> {
        let mut seen: HashSet<Digest> = HashSet::new();
        let mut queue = VecDeque::new();
        if self.vertices.contains_key(from) {
            queue.push_back(*from);
            seen.insert(*from);
        }
        while let Some(current) = queue.pop_front() {
            let vertex = &self.vertices[&current];
            for parent in vertex.parents() {
                if self.vertices.contains_key(parent) && seen.insert(*parent) {
                    queue.push_back(*parent);
                }
            }
        }
        let mut result: Vec<Digest> = seen.into_iter().collect();
        result.sort_by_key(|d| {
            let v = &self.vertices[d];
            (v.round(), v.author())
        });
        result
    }

    /// True if `ancestor` lies in the causal history of `descendant`.
    pub fn is_ancestor(&self, ancestor: &Digest, descendant: &Digest) -> bool {
        if ancestor == descendant {
            return self.vertices.contains_key(ancestor);
        }
        let mut seen: HashSet<Digest> = HashSet::new();
        let mut queue = VecDeque::from([*descendant]);
        while let Some(current) = queue.pop_front() {
            let Some(vertex) = self.vertices.get(&current) else {
                continue;
            };
            for parent in vertex.parents() {
                if parent == ancestor {
                    return true;
                }
                if seen.insert(*parent) {
                    queue.push_back(*parent);
                }
            }
        }
        false
    }

    /// Iterates over all vertices in `(round, author)` order.
    pub fn iter(&self) -> impl Iterator<Item = &Vertex> {
        self.by_round.values().flat_map(move |slot| {
            let mut authors: Vec<_> = slot.keys().copied().collect();
            authors.sort_unstable();
            authors.into_iter().map(move |a| &self.vertices[&slot[&a]])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use tb_types::{BlockKind, Committee};

    fn committee() -> Committee {
        Committee::new(4)
    }

    #[test]
    fn insert_and_lookup_round_trip() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(3, |_, _| BlockKind::Normal);
        assert_eq!(store.len(), 12);
        assert!(!store.is_empty());
        assert_eq!(store.authors_at_round(Round::new(0)), 4);
        assert!(store.round_has_quorum(Round::new(2)));
        assert_eq!(store.highest_round(), Round::new(2));
        let v = store
            .by_author_round(ReplicaId::new(2), Round::new(1))
            .unwrap();
        assert_eq!(v.author(), ReplicaId::new(2));
        assert!(store.contains(&v.id()));
        assert_eq!(store.get(&v.id()).unwrap().round(), Round::new(1));
    }

    #[test]
    fn insert_rejects_wrong_dag_and_missing_parents() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(2, |_, _| BlockKind::Normal);
        let some_vertex = store.at_round(Round::new(1))[0].clone();

        let mut other = DagStore::new(committee(), DagId::new(1), Round::ZERO);
        assert!(matches!(
            other.insert(some_vertex.clone()),
            Err(DagError::WrongDag { .. })
        ));

        let mut fresh = DagStore::new(committee(), DagId::new(0), Round::ZERO);
        assert!(matches!(
            fresh.insert(some_vertex),
            Err(DagError::MissingParent { .. })
        ));
    }

    #[test]
    fn insert_rejects_duplicate_authors_but_is_idempotent_per_vertex() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(1, |_, _| BlockKind::Normal);
        let vertex = store.at_round(Round::new(0))[0].clone();
        let mut copy = DagStore::new(committee(), DagId::new(0), Round::ZERO);
        copy.insert(vertex.clone()).unwrap();
        // Same vertex again: fine.
        copy.insert(vertex.clone()).unwrap();
        // A different vertex by the same author in the same round: rejected.
        let mut dup = vertex.clone();
        dup.block.seq = tb_types::SeqNo::new(99);
        let header = tb_types::Header::new(
            dup.header.dag,
            dup.header.round,
            dup.header.author,
            tb_types::Hashable::digest(&dup.block),
            vec![],
            dup.header.created_at,
        );
        let cert = tb_types::Certificate::for_header(
            &header,
            vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
        );
        let dup = Vertex::new(header, dup.block, cert);
        assert!(matches!(
            copy.insert(dup),
            Err(DagError::DuplicateAuthor { .. })
        ));
    }

    #[test]
    fn support_counts_children_referencing_the_target() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(2, |_, _| BlockKind::Normal);
        let target = store
            .by_author_round(ReplicaId::new(0), Round::new(0))
            .unwrap()
            .id();
        // The builder links every vertex to every certificate of the previous
        // round, so support equals the number of round-1 vertices.
        assert_eq!(store.support(&target, Round::new(1)), 4);
        assert_eq!(store.support(&target, Round::new(5)), 0);
    }

    #[test]
    fn causal_history_is_complete_and_deterministically_ordered() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(3, |_, _| BlockKind::Normal);
        let tip = store
            .by_author_round(ReplicaId::new(1), Round::new(2))
            .unwrap()
            .id();
        let history = store.causal_history(&tip);
        // Full DAG up to round 1 plus the tip itself.
        assert_eq!(history.len(), 9);
        let rounds: Vec<u64> = history
            .iter()
            .map(|d| store.get(d).unwrap().round().as_u64())
            .collect();
        let mut sorted = rounds.clone();
        sorted.sort_unstable();
        assert_eq!(rounds, sorted, "history must be ordered by round");
        // Ancestor checks agree with the history.
        let ancestor = store
            .by_author_round(ReplicaId::new(3), Round::new(0))
            .unwrap()
            .id();
        assert!(store.is_ancestor(&ancestor, &tip));
        assert!(!store.is_ancestor(&tip, &ancestor));
        assert!(store.is_ancestor(&tip, &tip));
    }

    #[test]
    fn invalid_certificates_are_rejected() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(1, |_, _| BlockKind::Normal);
        let mut vertex = store.at_round(Round::new(0))[0].clone();
        vertex.certificate.signers.truncate(1);
        let mut fresh = DagStore::new(committee(), DagId::new(0), Round::ZERO);
        assert_eq!(fresh.insert(vertex), Err(DagError::InvalidCertificate));
    }

    #[test]
    fn iteration_is_round_then_author_ordered() {
        let mut builder = DagBuilder::new(committee(), DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(2, |_, _| BlockKind::Normal);
        let order: Vec<(u64, u32)> = store
            .iter()
            .map(|v| (v.round().as_u64(), v.author().as_inner()))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 8);
    }
}
