//! The Tusk commit rule (paper Section 2).
//!
//! Leaders are elected on odd rounds by round-robin. The leader vertex of
//! round `r` commits *directly* once the local DAG holds `2f + 1` vertices of
//! round `r + 1` and at least `f + 1` of them reference the leader. Leaders
//! that miss direct commitment can still be committed *indirectly*: when a
//! later leader commits, every undecided earlier leader found in its causal
//! history is committed first. Committing a leader delivers its whole
//! undelivered causal history in `(round, author)` order, so all honest
//! replicas deliver the same sequence.

use crate::store::DagStore;
use std::collections::HashSet;
use tb_types::{Committee, DagId, Digest, Round, Vertex};

/// One committed leader together with the undelivered part of its causal
/// history (the leader itself is the last element).
#[derive(Clone, Debug)]
pub struct CommittedSubDag {
    /// The committed leader vertex.
    pub leader: Vertex,
    /// The leader round that triggered the commit.
    pub leader_round: Round,
    /// Every newly delivered vertex, ordered by `(round, author)`.
    pub vertices: Vec<Vertex>,
}

impl CommittedSubDag {
    /// Total number of transactions across the delivered vertices.
    pub fn tx_count(&self) -> usize {
        self.vertices.iter().map(|v| v.block.tx_count()).sum()
    }
}

/// Tracks commit progress over one DAG instance.
#[derive(Clone, Debug)]
pub struct Committer {
    committee: Committee,
    dag: DagId,
    next_leader_round: Round,
    last_committed_leader_round: Option<Round>,
    delivered: HashSet<Digest>,
}

impl Committer {
    /// Creates a committer for DAG `dag` starting at `start_round`.
    pub fn new(committee: Committee, dag: DagId, start_round: Round) -> Self {
        let next_leader_round = if start_round.is_leader_round() {
            start_round
        } else {
            start_round.next()
        };
        Committer {
            committee,
            dag,
            next_leader_round,
            last_committed_leader_round: None,
            delivered: HashSet::new(),
        }
    }

    /// The next leader round that has not been decided yet.
    pub fn next_leader_round(&self) -> Round {
        self.next_leader_round
    }

    /// The most recent leader round that committed (directly or indirectly).
    pub fn last_committed_leader_round(&self) -> Option<Round> {
        self.last_committed_leader_round
    }

    /// Number of vertices delivered so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// True if the vertex has already been delivered.
    pub fn is_delivered(&self, id: &Digest) -> bool {
        self.delivered.contains(id)
    }

    /// Runs the commit rule against the current local DAG and returns every
    /// newly committed leader (in commit order) with its delivered history.
    pub fn try_commit(&mut self, store: &DagStore) -> Vec<CommittedSubDag> {
        let mut out = Vec::new();
        loop {
            let leader_round = self.next_leader_round;
            let support_round = leader_round.next();
            // The support round must hold a quorum before the leader can be
            // decided either way.
            if !store.round_has_quorum(support_round) {
                break;
            }
            let leader_author = self.committee.leader(self.dag, leader_round);
            let direct_leader = store
                .by_author_round(leader_author, leader_round)
                .filter(|v| {
                    store.support(&v.id(), support_round) >= self.committee.validity_threshold()
                })
                .cloned();

            if let Some(leader_vertex) = direct_leader {
                for sub_dag in self.commit_chain(store, leader_vertex, leader_round) {
                    out.push(sub_dag);
                }
                self.last_committed_leader_round = Some(leader_round);
            }
            // Decided (committed or skipped): move to the next leader round.
            self.next_leader_round = Round::new(leader_round.as_u64() + 2);
        }
        out
    }

    /// Commits `leader_vertex` plus every undecided earlier leader found in
    /// its causal history, oldest first.
    fn commit_chain(
        &mut self,
        store: &DagStore,
        leader_vertex: Vertex,
        leader_round: Round,
    ) -> Vec<CommittedSubDag> {
        // Walk back through the leader rounds that were skipped since the
        // last committed leader and pick up those that are ancestors of the
        // commit chain (indirect commitment).
        let mut chain = vec![(leader_round, leader_vertex.clone())];
        let mut current = leader_vertex.id();
        let lower_bound = self
            .last_committed_leader_round
            .map(|r| r.as_u64() + 2)
            .unwrap_or_else(|| self.first_leader_round(store).as_u64());
        let mut plr = leader_round.as_u64();
        while plr >= 2 && plr - 2 >= lower_bound {
            plr -= 2;
            let round = Round::new(plr);
            let author = self.committee.leader(self.dag, round);
            if let Some(prev_leader) = store.by_author_round(author, round) {
                if store.is_ancestor(&prev_leader.id(), &current) {
                    chain.push((round, prev_leader.clone()));
                    current = prev_leader.id();
                }
            }
        }
        chain.reverse();

        let mut out = Vec::new();
        for (round, leader) in chain {
            let mut vertices = Vec::new();
            for digest in store.causal_history(&leader.id()) {
                if self.delivered.insert(digest) {
                    vertices.push(
                        store
                            .get(&digest)
                            .expect("causal history only returns stored vertices")
                            .clone(),
                    );
                }
            }
            out.push(CommittedSubDag {
                leader,
                leader_round: round,
                vertices,
            });
        }
        out
    }

    fn first_leader_round(&self, store: &DagStore) -> Round {
        let start = store.start_round();
        if start.is_leader_round() {
            start
        } else {
            start.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use tb_types::{BlockKind, ReplicaId};

    fn committee() -> Committee {
        Committee::new(4)
    }

    fn full_dag(rounds: u64) -> DagStore {
        DagBuilder::new(committee(), DagId::new(0), Round::ZERO)
            .build_rounds(rounds, |_, _| BlockKind::Normal)
    }

    #[test]
    fn complete_dag_commits_every_leader_in_order() {
        let store = full_dag(8); // rounds 0..=7
        let mut committer = Committer::new(committee(), DagId::new(0), Round::ZERO);
        let committed = committer.try_commit(&store);
        // Leaders at rounds 1, 3, 5 commit (round 7 lacks a support round).
        let rounds: Vec<u64> = committed.iter().map(|c| c.leader_round.as_u64()).collect();
        assert_eq!(rounds, vec![1, 3, 5]);
        // Leader authors follow the round-robin schedule.
        let authors: Vec<u32> = committed
            .iter()
            .map(|c| c.leader.author().as_inner())
            .collect();
        assert_eq!(authors, vec![0, 1, 2]);
        // The causal history of the round-5 leader is delivered exactly once:
        // every vertex of rounds 0..=4 plus the leader itself (the three
        // other round-5 vertices are delivered by the next leader).
        let delivered: usize = committed.iter().map(|c| c.vertices.len()).sum();
        assert_eq!(delivered, 4 * 5 + 1);
        assert_eq!(committer.delivered_count(), 21);
        assert_eq!(committer.next_leader_round(), Round::new(7));
    }

    #[test]
    fn commit_is_incremental_and_idempotent() {
        let store = full_dag(8);
        let mut committer = Committer::new(committee(), DagId::new(0), Round::ZERO);
        let first = committer.try_commit(&store);
        assert!(!first.is_empty());
        // Running again on the same store commits nothing new.
        assert!(committer.try_commit(&store).is_empty());
    }

    #[test]
    fn incremental_feeding_matches_one_shot_ordering() {
        // Build the full DAG once, and replay it round by round into a second
        // committer; the delivered sequences must be identical.
        let full = full_dag(10);
        let mut one_shot = Committer::new(committee(), DagId::new(0), Round::ZERO);
        let reference: Vec<Digest> = one_shot
            .try_commit(&full)
            .into_iter()
            .flat_map(|c| c.vertices.into_iter().map(|v| v.id()))
            .collect();

        let mut incremental_store = DagStore::new(committee(), DagId::new(0), Round::ZERO);
        let mut incremental = Committer::new(committee(), DagId::new(0), Round::ZERO);
        let mut sequence = Vec::new();
        for round in 0..10 {
            for vertex in full.at_round(Round::new(round)) {
                incremental_store.insert(vertex.clone()).unwrap();
            }
            for sub_dag in incremental.try_commit(&incremental_store) {
                sequence.extend(sub_dag.vertices.iter().map(|v| v.id()));
            }
        }
        assert_eq!(sequence, reference);
    }

    #[test]
    fn leader_without_enough_support_is_skipped_then_committed_indirectly() {
        // Replica 0 leads round 1. Build a DAG where round 2 exists but only
        // one vertex references the leader (< f + 1 = 2): the leader cannot
        // commit directly. The leader of round 3 commits and pulls the round-1
        // leader in indirectly through its causal history.
        let committee = committee();
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let mut store = DagStore::new(committee, DagId::new(0), Round::ZERO);

        // Round 0: everyone proposes.
        for author in committee.replicas() {
            let v = builder.make_vertex(
                author,
                Round::new(0),
                BlockKind::Normal,
                Default::default(),
                vec![],
            );
            store.insert(v).unwrap();
        }
        let r0_certs = store.certificates_at_round(Round::new(0));
        // Round 1: everyone proposes (including the leader, replica 0).
        for author in committee.replicas() {
            let v = builder.make_vertex(
                author,
                Round::new(1),
                BlockKind::Normal,
                Default::default(),
                r0_certs.clone(),
            );
            store.insert(v).unwrap();
        }
        let leader1 = store
            .by_author_round(ReplicaId::new(0), Round::new(1))
            .unwrap()
            .id();
        let r1_certs = store.certificates_at_round(Round::new(1));
        // Round 2: only replica 1's vertex references the leader; the others
        // reference the three non-leader vertices.
        let without_leader: Vec<Digest> =
            r1_certs.iter().copied().filter(|d| *d != leader1).collect();
        for author in committee.replicas() {
            let parents = if author == ReplicaId::new(1) {
                r1_certs.clone()
            } else {
                without_leader.clone()
            };
            let v = builder.make_vertex(
                author,
                Round::new(2),
                BlockKind::Normal,
                Default::default(),
                parents,
            );
            store.insert(v).unwrap();
        }
        let mut committer = Committer::new(committee, DagId::new(0), Round::ZERO);
        assert!(
            committer.try_commit(&store).is_empty(),
            "leader 1 lacks f+1 support and round 3 does not exist yet"
        );
        assert_eq!(committer.next_leader_round(), Round::new(3));

        // Rounds 3 and 4: complete; the leader of round 3 (replica 1) commits
        // and, because replica 1's round-2 vertex references the round-1
        // leader, the round-1 leader is committed indirectly first.
        let store = builder
            .extend_rounds(store, 2, |_, _| true, |_, _| BlockKind::Normal)
            .unwrap();
        let committed = committer.try_commit(&store);
        let rounds: Vec<u64> = committed.iter().map(|c| c.leader_round.as_u64()).collect();
        assert_eq!(
            rounds,
            vec![1, 3],
            "round-1 leader commits indirectly first"
        );
        let total: usize = committed.iter().map(|c| c.vertices.len()).sum();
        assert_eq!(
            committer.delivered_count(),
            total,
            "no vertex is delivered twice"
        );
    }

    #[test]
    fn dags_starting_late_use_the_first_odd_round_as_leader_round() {
        let start = Round::new(6);
        let mut builder = DagBuilder::new(committee(), DagId::new(1), start);
        let store = builder.build_rounds(4, |_, _| BlockKind::Normal); // rounds 6..=9
        let mut committer = Committer::new(committee(), DagId::new(1), start);
        assert_eq!(committer.next_leader_round(), Round::new(7));
        let committed = committer.try_commit(&store);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].leader_round, Round::new(7));
        // The leader schedule accounts for the DAG id, so DAG 1's round-7
        // leader differs from DAG 0's.
        assert_eq!(
            committed[0].leader.author(),
            committee().leader(DagId::new(1), Round::new(7))
        );
        // The leader's causal history — all of round 6 plus the leader — is
        // delivered.
        assert_eq!(committed[0].vertices.len(), 5);
        assert_eq!(committed[0].tx_count(), 0);
    }

    #[test]
    fn silent_replica_does_not_block_commits() {
        // Replica 3 never proposes; the DAG still has 2f+1 = 3 vertices per
        // round, so leaders keep committing.
        let committee = committee();
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let store = builder
            .build_partial(
                6,
                |_, author| author != ReplicaId::new(3),
                |_, _| BlockKind::Normal,
            )
            .unwrap();
        let mut committer = Committer::new(committee, DagId::new(0), Round::ZERO);
        let committed = committer.try_commit(&store);
        let rounds: Vec<u64> = committed.iter().map(|c| c.leader_round.as_u64()).collect();
        assert_eq!(rounds, vec![1, 3]);
    }
}
