//! Construction helpers for DAGs.
//!
//! [`DagBuilder`] produces fully-certified DAGs round by round. It serves two
//! purposes: the protocol tests and property tests of the commit rule build
//! synthetic DAGs with it (complete DAGs, DAGs with silent replicas, DAGs
//! with Shift blocks), and the `thunderbolt` replica uses the same primitive
//! (`make_vertex`) to certify the vertices it assembles from network traffic.

use crate::store::{DagError, DagStore};
use tb_types::{
    Block, BlockKind, BlockPayload, Certificate, Committee, DagId, Digest, Hashable, Header,
    ReplicaId, Round, SeqNo, ShardAssignment, SimTime, Vertex,
};

/// Builds certified vertices and whole synthetic DAGs.
#[derive(Clone, Debug)]
pub struct DagBuilder {
    committee: Committee,
    dag: DagId,
    start_round: Round,
    seq: u64,
}

impl DagBuilder {
    /// Creates a builder for DAG `dag` starting at `start_round`.
    pub fn new(committee: Committee, dag: DagId, start_round: Round) -> Self {
        DagBuilder {
            committee,
            dag,
            start_round,
            seq: 0,
        }
    }

    /// The committee the builder signs certificates with.
    pub fn committee(&self) -> Committee {
        self.committee
    }

    /// Creates a certified vertex for `author` in `round` with the given
    /// block kind and parent certificates. The certificate is signed by the
    /// first `2f + 1` replicas (a full quorum).
    pub fn make_vertex(
        &mut self,
        author: ReplicaId,
        round: Round,
        kind: BlockKind,
        payload: BlockPayload,
        parents: Vec<Digest>,
    ) -> Vertex {
        let assignment = ShardAssignment::new(self.committee, self.dag);
        let shard = assignment.shard_of(author);
        self.seq += 1;
        let mut block = Block::normal(
            self.dag,
            round,
            author,
            shard,
            SeqNo::new(self.seq),
            payload,
            SimTime::ZERO,
        );
        block.kind = kind;
        let header = Header::new(
            self.dag,
            round,
            author,
            block.digest(),
            parents,
            SimTime::ZERO,
        );
        let signers: Vec<ReplicaId> = self
            .committee
            .replicas()
            .take(self.committee.quorum_threshold())
            .collect();
        let certificate = Certificate::for_header(&header, signers);
        Vertex::new(header, block, certificate)
    }

    /// Builds a DAG with `rounds` complete rounds (every replica proposes,
    /// every vertex references every certificate of the previous round). The
    /// block kind of each vertex is chosen by `kind_of(round, author)`.
    pub fn build_rounds(
        &mut self,
        rounds: u64,
        kind_of: impl Fn(Round, ReplicaId) -> BlockKind,
    ) -> DagStore {
        self.extend_rounds(
            DagStore::new(self.committee, self.dag, self.start_round),
            rounds,
            |_, _| true,
            kind_of,
        )
        .expect("complete DAGs always insert cleanly")
    }

    /// Builds a DAG where `participates(round, author)` controls which
    /// replicas propose in each round (silent replicas model crashed or
    /// censoring proposers). Vertices reference every certificate of the
    /// previous round.
    pub fn build_partial(
        &mut self,
        rounds: u64,
        participates: impl Fn(Round, ReplicaId) -> bool,
        kind_of: impl Fn(Round, ReplicaId) -> BlockKind,
    ) -> Result<DagStore, DagError> {
        self.extend_rounds(
            DagStore::new(self.committee, self.dag, self.start_round),
            rounds,
            participates,
            kind_of,
        )
    }

    /// Extends an existing store by `rounds` additional rounds.
    pub fn extend_rounds(
        &mut self,
        mut store: DagStore,
        rounds: u64,
        participates: impl Fn(Round, ReplicaId) -> bool,
        kind_of: impl Fn(Round, ReplicaId) -> BlockKind,
    ) -> Result<DagStore, DagError> {
        let first = if store.is_empty() {
            store.start_round()
        } else {
            store.highest_round().next()
        };
        for offset in 0..rounds {
            let round = Round::new(first.as_u64() + offset);
            let parents = if round == store.start_round() {
                Vec::new()
            } else {
                store.certificates_at_round(round.prev())
            };
            for author in self.committee.replicas() {
                if !participates(round, author) {
                    continue;
                }
                let vertex = self.make_vertex(
                    author,
                    round,
                    kind_of(round, author),
                    BlockPayload::empty(),
                    parents.clone(),
                );
                store.insert(vertex)?;
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_dag_has_one_vertex_per_replica_per_round() {
        let committee = Committee::new(4);
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(5, |_, _| BlockKind::Normal);
        assert_eq!(store.len(), 20);
        for round in 0..5 {
            assert_eq!(store.authors_at_round(Round::new(round)), 4);
        }
        // Every vertex beyond the first round references a full quorum.
        for v in store.iter() {
            if v.round() > Round::ZERO {
                assert!(v.parents().len() >= committee.quorum_threshold());
            }
        }
    }

    #[test]
    fn partial_dag_respects_participation() {
        let committee = Committee::new(4);
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let silent = ReplicaId::new(3);
        let store = builder
            .build_partial(
                4,
                |round, author| author != silent || round < Round::new(2),
                |_, _| BlockKind::Normal,
            )
            .unwrap();
        assert_eq!(store.authors_at_round(Round::new(1)), 4);
        assert_eq!(store.authors_at_round(Round::new(2)), 3);
        assert_eq!(store.authors_at_round(Round::new(3)), 3);
        assert!(store.round_has_quorum(Round::new(3)));
    }

    #[test]
    fn extend_continues_from_the_highest_round() {
        let committee = Committee::new(4);
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(2, |_, _| BlockKind::Normal);
        let store = builder
            .extend_rounds(store, 2, |_, _| true, |_, _| BlockKind::Normal)
            .unwrap();
        assert_eq!(store.highest_round(), Round::new(3));
        assert_eq!(store.len(), 16);
    }

    #[test]
    fn kind_callback_controls_block_kinds() {
        let committee = Committee::new(4);
        let mut builder = DagBuilder::new(committee, DagId::new(0), Round::ZERO);
        let store = builder.build_rounds(2, |round, author| {
            if round == Round::new(1) && author == ReplicaId::new(2) {
                BlockKind::Shift
            } else {
                BlockKind::Normal
            }
        });
        let shift = store
            .by_author_round(ReplicaId::new(2), Round::new(1))
            .unwrap();
        assert!(shift.block.is_shift());
        let normal = store
            .by_author_round(ReplicaId::new(0), Round::new(1))
            .unwrap();
        assert!(!normal.block.is_shift());
    }

    #[test]
    fn dags_starting_at_a_later_round_have_parentless_first_vertices() {
        let committee = Committee::new(4);
        let start = Round::new(6);
        let mut builder = DagBuilder::new(committee, DagId::new(2), start);
        let store = builder.build_rounds(2, |_, _| BlockKind::Normal);
        assert_eq!(store.start_round(), start);
        for v in store.at_round(start) {
            assert!(v.parents().is_empty());
        }
        for v in store.at_round(start.next()) {
            assert_eq!(v.parents().len(), 4);
        }
    }
}
