//! Narwhal/Tusk-style DAG substrate (paper Section 2).
//!
//! The protocol proceeds in rounds. Every round each replica proposes one
//! vertex (a block plus references to at least `2f + 1` certificates of the
//! previous round); once `2f + 1` replicas acknowledge it, the vertex is
//! certified and can be referenced by the next round. A leader vertex is
//! elected every two rounds; it commits once `2f + 1` vertices of the next
//! round exist locally and at least `f + 1` of them reference it. Committing
//! a leader delivers its entire undelivered causal history in a
//! deterministic order, which is identical on every honest replica.
//!
//! This crate contains the *local* DAG machinery — the store, the commit
//! rule and test builders. Message exchange (broadcasting headers, collecting
//! acknowledgements, fetching missing vertices) lives in the `thunderbolt`
//! crate, which drives these structures over the simulated network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod committer;
pub mod store;

pub use builder::DagBuilder;
pub use committer::{CommittedSubDag, Committer};
pub use store::{DagError, DagStore};
