//! Property tests for the WAL frame format.
//!
//! Mirrors `tests/wire_roundtrip.rs` at the repository root: random record
//! sequences must round-trip byte-identically through
//! [`encode_frame`] / [`decode_frames`], and the exact artifacts a crash
//! leaves behind — torn tails, flipped bytes — must be rejected cleanly
//! (decode the valid prefix, never panic, never trust bytes past the
//! damage). These are the inputs [`tb_storage::WalStore`] recovery feeds
//! through the same functions on every open.

use proptest::prelude::*;
use tb_storage::wal::{decode_frames, encode_frame, wal_header_bytes};
use tb_storage::{CommitMarker, WalRecord, WriteBatch};
use tb_types::{Key, KeySpace, Value};

// --- strategies over the WAL vocabulary ------------------------------------

fn arb_key() -> impl Strategy<Value = Key> {
    ((0usize..KeySpace::ALL.len()), any::<u64>())
        .prop_map(|(i, row)| Key::new(KeySpace::ALL[i], row))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u8..1).prop_map(|_| Value::None),
        any::<i64>().prop_map(Value::Int),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::bytes),
    ]
}

fn arb_batch() -> impl Strategy<Value = WriteBatch> {
    prop::collection::vec((arb_key(), arb_value()), 0..6)
        .prop_map(|writes| writes.into_iter().collect())
}

fn arb_marker() -> impl Strategy<Value = CommitMarker> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(dag, round, digest)| CommitMarker {
        dag,
        round,
        digest,
    })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        prop::collection::vec(arb_batch(), 0..4).prop_map(WalRecord::Batches),
        (arb_key(), arb_value()).prop_map(|(k, v)| WalRecord::Put(k, v)),
        arb_marker().prop_map(WalRecord::Commit),
    ]
}

/// Frames `records` back-to-back as [`tb_storage::WalStore`] would append
/// them, returning the buffer and the end offset of each frame.
fn concat_frames(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut ends = Vec::new();
    for record in records {
        buf.extend_from_slice(&encode_frame(record));
        ends.push(buf.len());
    }
    (buf, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any record sequence framed back-to-back decodes to the same records,
    /// consumes exactly the whole buffer, and re-encodes bit-for-bit.
    #[test]
    fn frames_round_trip_byte_identically(
        records in prop::collection::vec(arb_record(), 0..8),
    ) {
        let (buf, _) = concat_frames(&records);
        let (decoded, consumed) = decode_frames(&buf);
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(&decoded, &records);
        let (reencoded, _) = concat_frames(&decoded);
        prop_assert_eq!(reencoded, buf);
    }

    /// Cutting the buffer at any byte decodes exactly the complete-frame
    /// prefix: the torn tail a crash mid-append leaves behind is discarded,
    /// never mis-decoded.
    #[test]
    fn truncated_tails_decode_the_valid_prefix(
        records in prop::collection::vec(arb_record(), 1..8),
        cut_sel in any::<u64>(),
    ) {
        let (buf, ends) = concat_frames(&records);
        let cut = (cut_sel % (buf.len() as u64 + 1)) as usize;
        let complete = ends.iter().filter(|&&end| end <= cut).count();
        let valid_len = if complete == 0 { 0 } else { ends[complete - 1] };

        let (decoded, consumed) = decode_frames(&buf[..cut]);
        prop_assert_eq!(consumed, valid_len);
        prop_assert_eq!(&decoded[..], &records[..complete]);
    }

    /// Flipping any single byte stops decoding at the corrupted frame: every
    /// frame before it decodes intact, nothing at or after it is trusted.
    /// The CRC guards the payload; the length prefix is guarded because a
    /// wrong length makes the CRC check cover the wrong slice.
    #[test]
    fn corrupted_frames_reject_cleanly(
        records in prop::collection::vec(arb_record(), 1..8),
        flip_sel in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let (mut buf, ends) = concat_frames(&records);
        let pos = (flip_sel % buf.len() as u64) as usize;
        buf[pos] ^= mask;
        // Index of the frame the flipped byte lands in.
        let damaged = ends.iter().filter(|&&end| end <= pos).count();
        let frame_start = if damaged == 0 { 0 } else { ends[damaged - 1] };

        let (decoded, consumed) = decode_frames(&buf);
        prop_assert_eq!(&decoded[..], &records[..damaged]);
        prop_assert_eq!(consumed, frame_start);
    }

    /// `decode_frames` never panics on arbitrary bytes, consumption is
    /// bounded, and decoding is prefix-stable: re-decoding exactly the
    /// consumed prefix yields the same records.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let (decoded, consumed) = decode_frames(&bytes);
        prop_assert!(consumed <= bytes.len());
        let (redecoded, reconsumed) = decode_frames(&bytes[..consumed]);
        prop_assert_eq!(reconsumed, consumed);
        prop_assert_eq!(redecoded, decoded);
    }

    /// The file header is a fixed-width 14-byte stamp and never collides
    /// with a frame start for distinct generations.
    #[test]
    fn header_is_fixed_width_and_generation_distinct(
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assert_eq!(wal_header_bytes(a).len(), 14);
        if a != b {
            prop_assert_ne!(wal_header_bytes(a), wal_header_bytes(b));
        }
    }
}
