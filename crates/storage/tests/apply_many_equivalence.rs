//! Property test: the coalesced multi-batch apply is observably equivalent
//! to applying the batches one at a time, in order — same values, same
//! per-key versions, same [`StoreStats`].
//!
//! This is the invariant the pipelined commit path leans on: the applier
//! thread may drain any prefix of the queued batches in one
//! [`MemStore::apply_many`] call without changing what any later reader can
//! observe.

use proptest::prelude::*;
use tb_storage::{KvRead, MemStore, WriteBatch};
use tb_types::{Key, Value};

/// A small hot key pool so batches genuinely overlap on keys (the
/// interesting case for version accounting and last-write-wins).
fn key(raw: u64) -> Key {
    match raw % 3 {
        0 => Key::checking(raw / 3),
        1 => Key::savings(raw / 3),
        _ => Key::scratch(raw / 3),
    }
}

fn batches(
    max_batches: usize,
    max_writes: usize,
    key_pool: u64,
) -> impl Strategy<Value = Vec<Vec<(u64, i64)>>> {
    prop::collection::vec(
        prop::collection::vec((0..key_pool, -1_000..1_000i64), 0..max_writes),
        0..max_batches,
    )
}

fn build(batch_writes: &[(u64, i64)]) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for (raw, value) in batch_writes {
        batch.put(key(*raw), Value::int(*value));
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_many_equals_sequential_apply(raw_batches in batches(8, 24, 12)) {
        let sequential = MemStore::new();
        let coalesced = MemStore::new();
        // Seed both stores so versions start above zero for some keys.
        for store in [&sequential, &coalesced] {
            store.load((0..4).map(|i| (key(i), Value::int(0))));
        }

        let built: Vec<WriteBatch> = raw_batches.iter().map(|b| build(b)).collect();
        for batch in &built {
            sequential.apply_batch(batch);
        }
        coalesced.apply_many(built.iter());

        // Same values on every key either store has ever seen.
        let seq_snapshot = sequential.snapshot();
        let coal_snapshot = coalesced.snapshot();
        prop_assert_eq!(seq_snapshot.len(), coal_snapshot.len());
        for (k, versioned) in seq_snapshot.iter() {
            // Same value AND same version: a key written by `n` batches has
            // its version bumped exactly `n` times either way.
            prop_assert_eq!(versioned, &coalesced.get_versioned(k));
        }
        // Aggregate statistics agree (keys, total writes, integer sum).
        prop_assert_eq!(sequential.stats(), coalesced.stats());
    }

    #[test]
    fn apply_many_of_single_batches_equals_apply_batch(raw in prop::collection::vec((0..10u64, -100..100i64), 0..20)) {
        let one = MemStore::new();
        let many = MemStore::new();
        let batch = build(&raw);
        one.apply_batch(&batch);
        many.apply_many(std::iter::once(&batch));
        for (k, versioned) in one.snapshot().iter() {
            prop_assert_eq!(versioned, &many.get_versioned(k));
        }
        prop_assert_eq!(one.stats(), many.stats());
    }
}
