//! Property tests for [`WalStore`] crash recovery.
//!
//! Two properties the durable backend stakes its correctness on:
//!
//! * **Idempotence** — recovering a directory twice yields exactly the
//!   state recovering it once does, which in turn is exactly the state the
//!   store held before it was dropped (values, versions, commit marker).
//! * **Prefix-correctness** — truncating the WAL at *any* byte (the crash
//!   window) recovers precisely the state reached by replaying the valid
//!   frame prefix, with the torn tail cleanly discarded.
//!
//! Scripts are random sequences of commit-pipeline operations (coalesced
//! batch applies, cross-shard puts, commit boundaries) over a small key
//! range, so overwrites and version bumps are common; options vary across
//! the buffer-flush and compaction regimes, which must not change any
//! recovered state.

use proptest::prelude::*;
use tb_storage::wal::{decode_frames, wal_header_bytes, WAL_FILE};
use tb_storage::{
    CommitMarker, KvWrite, MemStore, Snapshot, Store, TempDir, WalOptions, WalRecord, WalStore,
    WriteBatch,
};
use tb_types::{Key, Value};

/// Flush/compaction regimes the recovered state must be invariant under:
/// everything buffered, flush-per-write, compact-often, compact-always.
const OPTIONS: [WalOptions; 4] = [
    WalOptions {
        compact_wal_bytes: 4 * 1024 * 1024,
        flush_buffered_writes: 1024,
    },
    WalOptions {
        compact_wal_bytes: 4 * 1024 * 1024,
        flush_buffered_writes: 1,
    },
    WalOptions {
        compact_wal_bytes: 512,
        flush_buffered_writes: 4,
    },
    WalOptions {
        compact_wal_bytes: 1,
        flush_buffered_writes: 1,
    },
];

/// One step of a write script, shaped like the commit pipeline's usage:
/// coalesced batches, an optional cross-shard put, an optional commit
/// boundary sealing everything so far.
#[derive(Clone, Debug)]
struct Step {
    batches: Vec<WriteBatch>,
    put: Option<(Key, Value)>,
    commit: bool,
}

// --- strategies -------------------------------------------------------------

fn arb_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        (0u64..12).prop_map(Key::checking),
        (0u64..12).prop_map(Key::savings),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    any::<i64>().prop_map(Value::int)
}

fn arb_batch() -> impl Strategy<Value = WriteBatch> {
    prop::collection::vec((arb_key(), arb_value()), 0..5)
        .prop_map(|writes| writes.into_iter().collect())
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        prop::collection::vec(arb_batch(), 0..3),
        (any::<bool>(), arb_key(), arb_value()),
        any::<bool>(),
    )
        .prop_map(|(batches, (has_put, key, value), commit)| Step {
            batches,
            put: if has_put { Some((key, value)) } else { None },
            commit,
        })
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(arb_step(), 1..10)
}

// --- driver and state comparison -------------------------------------------

/// Replays `script` against any backend exactly as the commit path would.
fn run_script<S: Store + KvWrite>(store: &S, script: &[Step]) {
    for (i, step) in script.iter().enumerate() {
        if !step.batches.is_empty() {
            store.apply_batches(&step.batches);
        }
        if let Some((key, value)) = &step.put {
            store.put(*key, value.clone());
        }
        if step.commit {
            let seq = i as u64;
            store.commit_marker(CommitMarker {
                dag: seq / 4,
                round: seq,
                digest: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1,
            });
        }
    }
}

/// Full observable state — values *and* version counters — in a canonical
/// order. Stricter than `Snapshot::diff_values`, which ignores versions.
fn canonical(snapshot: &Snapshot) -> Vec<(Key, Value, u64)> {
    let mut rows: Vec<_> = snapshot
        .iter()
        .map(|(key, versioned)| (*key, versioned.value.clone(), versioned.version))
        .collect();
    rows.sort_unstable_by_key(|(key, _, _)| *key);
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovering twice equals recovering once equals the pre-drop state,
    /// under every flush/compaction regime.
    #[test]
    fn recovery_is_idempotent(script in arb_script(), opts_sel in 0usize..OPTIONS.len()) {
        let opts = OPTIONS[opts_sel];
        let dir = TempDir::new("wal-prop-idem").expect("scoped temp dir");

        let store = WalStore::open(dir.path(), opts).expect("fresh open");
        run_script(&store, &script);
        let live_state = canonical(&store.snapshot());
        let live_marker = store.last_commit();
        drop(store);

        let first = WalStore::open(dir.path(), opts).expect("first recovery");
        let first_state = canonical(&first.snapshot());
        let first_marker = first.last_commit();
        let first_info = first.recovery();
        prop_assert_eq!(&first_state, &live_state);
        prop_assert_eq!(first_marker, live_marker);
        drop(first);

        let second = WalStore::open(dir.path(), opts).expect("second recovery");
        prop_assert_eq!(&canonical(&second.snapshot()), &first_state);
        prop_assert_eq!(second.last_commit(), first_marker);
        prop_assert_eq!(second.recovery(), first_info);
    }

    /// A WAL cut at any byte recovers exactly the replay of its valid frame
    /// prefix: same values, same versions, same commit marker; the torn
    /// tail is counted and discarded; and a second open of the truncated
    /// directory finds nothing left to repair.
    #[test]
    fn any_wal_prefix_recovers_the_corresponding_state(
        script in arb_script(),
        cut_sel in any::<u64>(),
    ) {
        // No compaction: the WAL holds the full history at generation 0, so
        // byte-truncating it simulates a crash at any point in that history.
        let opts = WalOptions { compact_wal_bytes: u64::MAX, flush_buffered_writes: 8 };
        let dir = TempDir::new("wal-prop-prefix").expect("scoped temp dir");
        let store = WalStore::open(dir.path(), opts).expect("fresh open");
        run_script(&store, &script);
        drop(store);

        let wal = std::fs::read(dir.path().join(WAL_FILE)).expect("read wal.log");
        let header_len = wal_header_bytes(0).len();
        prop_assert!(wal.len() >= header_len);
        let cut = (cut_sel % (wal.len() as u64 + 1)) as usize;

        // Independent replay of the decoded prefix = the expected state. A
        // cut inside the header means no usable WAL at all.
        let (records, valid) = if cut >= header_len {
            decode_frames(&wal[header_len..cut])
        } else {
            (Vec::new(), 0)
        };
        let shadow = MemStore::new();
        let mut shadow_marker = None;
        for record in &records {
            match record {
                WalRecord::Batches(batches) => shadow.apply_batches(batches),
                WalRecord::Put(key, value) => shadow.put(*key, value.clone()),
                WalRecord::Commit(marker) => shadow_marker = Some(*marker),
            }
        }
        let expected_truncated = if cut >= header_len {
            (cut - header_len - valid) as u64
        } else {
            cut as u64
        };

        let crash_dir = TempDir::new("wal-prop-crash").expect("scoped temp dir");
        std::fs::write(crash_dir.path().join(WAL_FILE), &wal[..cut]).expect("plant crash file");
        let recovered = WalStore::open(crash_dir.path(), opts).expect("recover prefix");
        let info = recovered.recovery();
        prop_assert!(!info.snapshot_loaded);
        prop_assert_eq!(info.replayed_records, records.len() as u64);
        prop_assert_eq!(info.truncated_bytes, expected_truncated);
        prop_assert_eq!(recovered.last_commit(), shadow_marker);
        prop_assert_eq!(canonical(&recovered.snapshot()), canonical(&shadow.snapshot()));
        drop(recovered);

        // The first open already cut the torn tail; the second must find a
        // clean log and land on the identical state.
        let again = WalStore::open(crash_dir.path(), opts).expect("recover again");
        prop_assert_eq!(again.recovery().truncated_bytes, 0);
        prop_assert_eq!(again.last_commit(), shadow_marker);
        prop_assert_eq!(canonical(&again.snapshot()), canonical(&shadow.snapshot()));
    }
}
