//! Atomic write batches.
//!
//! The commit path of a replica applies a whole block's worth of validated
//! write sets at once; a [`WriteBatch`] collects those writes (last write per
//! key wins) so the store can apply them atomically.

use std::collections::HashMap;
use tb_types::{AccessRecord, Key, Value, WriteSet};

/// A set of writes applied atomically. Within a batch, later writes to the
/// same key overwrite earlier ones.
///
/// The batch keeps a key → slot index so deduplication stays O(1) per write;
/// commit-path batches carry hundreds of writes and are built on the hot
/// path.
#[derive(Clone, Debug, Default)]
pub struct WriteBatch {
    writes: Vec<(Key, Value)>,
    index: HashMap<Key, usize>,
}

impl PartialEq for WriteBatch {
    fn eq(&self, other: &Self) -> bool {
        self.writes == other.writes
    }
}

impl Eq for WriteBatch {}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Creates a batch with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WriteBatch {
            writes: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Adds a write, overwriting any earlier write to the same key.
    pub fn put(&mut self, key: Key, value: Value) {
        match self.index.get(&key) {
            Some(&slot) => self.writes[slot].1 = value,
            None => {
                self.index.insert(key, self.writes.len());
                self.writes.push((key, value));
            }
        }
    }

    /// Adds every entry of a transaction's write set.
    pub fn extend_from_write_set(&mut self, write_set: &WriteSet) {
        for AccessRecord { key, value } in write_set {
            self.put(*key, value.clone());
        }
    }

    /// Number of distinct keys written.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True if the batch contains no writes.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Iterates over the writes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Key, Value)> {
        self.writes.iter()
    }

    /// Consumes the batch and returns the writes.
    pub fn into_writes(self) -> Vec<(Key, Value)> {
        self.writes
    }
}

impl FromIterator<(Key, Value)> for WriteBatch {
    fn from_iter<T: IntoIterator<Item = (Key, Value)>>(iter: T) -> Self {
        let mut batch = WriteBatch::new();
        for (k, v) in iter {
            batch.put(k, v);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_write_per_key_wins() {
        let mut b = WriteBatch::new();
        b.put(Key::scratch(1), Value::int(1));
        b.put(Key::scratch(2), Value::int(2));
        b.put(Key::scratch(1), Value::int(3));
        assert_eq!(b.len(), 2);
        let writes = b.into_writes();
        assert!(writes.contains(&(Key::scratch(1), Value::int(3))));
        assert!(writes.contains(&(Key::scratch(2), Value::int(2))));
    }

    #[test]
    fn extend_from_write_set_copies_all_records() {
        let ws = vec![
            AccessRecord::new(Key::scratch(1), Value::int(10)),
            AccessRecord::new(Key::scratch(2), Value::int(20)),
        ];
        let mut b = WriteBatch::with_capacity(2);
        b.extend_from_write_set(&ws);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let b: WriteBatch = vec![
            (Key::scratch(1), Value::int(1)),
            (Key::scratch(1), Value::int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().next().unwrap().1, Value::int(2));
    }
}
