//! Versioned key-value storage: in-memory stripes plus a durable
//! WAL-backed backend.
//!
//! The paper stores account balances in LevelDB; this reproduction keeps a
//! versioned store with two interchangeable backends behind the [`Store`]
//! trait (see DESIGN.md, "Substitutions", and docs/STORAGE.md):
//!
//! * [`MemStore`] — striped, concurrently readable, volatile. The version
//!   counter per key is what the OCC baseline validates against; atomic
//!   write batches and point-in-time snapshots are what the Thunderbolt
//!   commit path applies validated preplay results through.
//! * [`WalStore`] — the same store fronted by a CRC-guarded write-ahead
//!   log with B^ε-style batch buffering, snapshot compaction and crash
//!   recovery ([`WalStore::open`] replays snapshot + WAL tail back to the
//!   exact pre-crash state and commit digest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod mem;
pub mod snapshot;
pub mod store;
pub mod tempdir;
pub mod traits;
pub mod wal;

pub use batch::WriteBatch;
pub use mem::{MemStore, StoreStats};
pub use snapshot::Snapshot;
pub use store::{CommitMarker, Store};
pub use tempdir::TempDir;
pub use traits::{KvRead, KvWrite, Versioned};
pub use wal::{RecoveryInfo, WalOptions, WalRecord, WalStore};
