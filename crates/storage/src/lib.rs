//! Versioned in-memory key-value store.
//!
//! The paper stores account balances in LevelDB; this reproduction
//! substitutes an in-memory, concurrently readable store (see DESIGN.md,
//! "Substitutions"). The store keeps a *version counter per key*, which the
//! OCC baseline relies on for validation, and supports atomic write batches
//! and point-in-time snapshots, which the Thunderbolt commit path uses to
//! apply validated preplay results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod mem;
pub mod snapshot;
pub mod traits;

pub use batch::WriteBatch;
pub use mem::{MemStore, StoreStats};
pub use snapshot::Snapshot;
pub use traits::{KvRead, KvWrite, Versioned};
